"""cgroup-like allocation front end with audit trail.

:class:`Allocator` wraps a :class:`~repro.platform_.server.Server` and is
the only object the schedulers mutate.  It adds:

* a *utilisation cap* — the scheduler-level budget (95 % in the paper's
  Fig 9) kept below the hard hardware capacity;
* an audit log of every grant/retune/release, which the benchmarks use
  to reconstruct allocation timelines;
* conservation checking (the property the tests assert: the sum of
  ceilings never exceeds the cap on any dimension at any time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.platform_.resources import ResourceVector
from repro.platform_.server import CapacityError, Placement, Server
from repro.util.validation import check_fraction

__all__ = ["AllocationError", "AllocationEvent", "Allocator"]


class AllocationError(RuntimeError):
    """An allocation request that cannot be honoured under the cap."""


@dataclass(frozen=True)
class AllocationEvent:
    """One entry of the audit trail."""

    time: float
    action: str  # "place" | "retune" | "release"
    session_id: str
    gpu_index: int
    allocation: ResourceVector


class Allocator:
    """Capped allocation manager over one server.

    Parameters
    ----------
    server:
        The managed server.
    utilization_cap:
        Fraction of hardware capacity the allocator will hand out
        (default 0.95, the paper's Fig-9 upper limit).
    """

    def __init__(self, server: Server, *, utilization_cap: float = 0.95):
        check_fraction("utilization_cap", utilization_cap, inclusive=False)
        self.server = server
        self.utilization_cap = float(utilization_cap)
        self.events: List[AllocationEvent] = []

    # ------------------------------------------------------------------
    def capped_capacity(self, gpu_index: int) -> ResourceVector:
        """Capacity × cap, as seen by a session on ``gpu_index``."""
        return self.server.capacity_vector(gpu_index) * self.utilization_cap

    def capped_available(self, gpu_index: int) -> ResourceVector:
        """Remaining budget under the cap for a new session on ``gpu_index``."""
        used = self.server.capacity_vector(gpu_index) - self.server.available(gpu_index)
        return (self.capped_capacity(gpu_index) - used).clip(lo=0.0)

    def can_place(self, allocation: ResourceVector, gpu_index: int) -> bool:
        """Admission test under the cap."""
        return allocation.fits_within(self.capped_available(gpu_index))

    # ------------------------------------------------------------------
    def place(
        self,
        session_id: str,
        allocation: ResourceVector,
        *,
        gpu_index: Optional[int] = None,
        time: float = 0.0,
    ) -> Placement:
        """Admit a session; picks the least-loaded GPU when none is given.

        Raises
        ------
        AllocationError
            When the allocation does not fit under the cap on any
            admissible GPU.
        """
        candidates = (
            [gpu_index] if gpu_index is not None else self.gpu_order()
        )
        for gi in candidates:
            if self.can_place(allocation, gi):
                placement = self.server.place(session_id, gi, allocation)
                self.events.append(
                    AllocationEvent(time, "place", session_id, gi, allocation)
                )
                return placement
        raise AllocationError(
            f"cannot place {session_id!r} with {allocation} under "
            f"{self.utilization_cap:.0%} cap"
        )

    def retune(
        self, session_id: str, allocation: ResourceVector, *, time: float = 0.0
    ) -> None:
        """Change a hosted session's ceiling, enforcing the cap.

        Raises
        ------
        AllocationError
            When the new ceiling would push any dimension over the cap.
        """
        placement = self.server.placements.get(session_id)
        if placement is None:
            raise KeyError(f"session {session_id!r} is not placed")
        others_budget = self.capped_available(placement.gpu_index)
        budget = (others_budget + placement.allocation).clip(lo=0.0)
        if not allocation.fits_within(budget):
            raise AllocationError(
                f"retune of {session_id!r} to {allocation} exceeds the "
                f"{self.utilization_cap:.0%} cap (budget {budget})"
            )
        try:
            self.server.set_allocation(session_id, allocation)
        except CapacityError as exc:  # pragma: no cover - cap < capacity
            raise AllocationError(str(exc)) from exc
        self.events.append(
            AllocationEvent(time, "retune", session_id, placement.gpu_index, allocation)
        )

    def retune_clamped(
        self, session_id: str, allocation: ResourceVector, *, time: float = 0.0
    ) -> ResourceVector:
        """Retune, clamping the request into the available budget.

        Returns the allocation actually granted.  This is what the
        regulator uses when it *shrinks* a session to resolve a spike —
        shrinking must never fail.
        """
        placement = self.server.placements.get(session_id)
        if placement is None:
            raise KeyError(f"session {session_id!r} is not placed")
        budget = (
            self.capped_available(placement.gpu_index) + placement.allocation
        ).clip(lo=0.0)
        granted = allocation.minimum(budget).clip(lo=0.0)
        self.server.set_allocation(session_id, granted)
        self.events.append(
            AllocationEvent(time, "retune", session_id, placement.gpu_index, granted)
        )
        return granted

    def release(self, session_id: str, *, time: float = 0.0) -> None:
        """Remove a session and free its reservation."""
        placement = self.server.remove(session_id)
        self.events.append(
            AllocationEvent(
                time, "release", session_id, placement.gpu_index, ResourceVector.zeros()
            )
        )

    # ------------------------------------------------------------------
    def gpu_order(self) -> List[int]:
        """GPUs by descending remaining core capacity."""
        slack = [
            (self.server.available(i).gpu, i) for i in range(self.server.n_gpus)
        ]
        slack.sort(reverse=True)
        return [i for _, i in slack]

    def allocation_of(self, session_id: str) -> ResourceVector:
        """Current ceiling of a hosted session."""
        placement = self.server.placements.get(session_id)
        if placement is None:
            raise KeyError(f"session {session_id!r} is not placed")
        return placement.allocation
