"""Platform heterogeneity profiles.

Paper §IV-D argues CoCG ports across platforms: "the number of stages and
the logical relationship between the stages will not change … the only
thing that will change is the amount of resources consumed."  We model a
platform as a per-dimension demand scaling relative to the reference
testbed (i7-7700 + GTX 2080): a weaker GPU inflates the ``gpu`` demand
fraction, a beefier CPU deflates ``cpu``, and so on.

The invariance claim becomes a testable property: profiling the *same
game* on two platforms must yield the same cluster count and stage graph,
with only the cluster centroids rescaled
(:mod:`benchmarks.test_ablation_platform_invariance`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.platform_.resources import ResourceVector

if TYPE_CHECKING:
    import numpy as np
from repro.util.validation import check_positive

__all__ = ["PlatformProfile", "REFERENCE_PLATFORM", "WEAK_GPU_PLATFORM", "BIG_SERVER_PLATFORM"]


@dataclass(frozen=True)
class PlatformProfile:
    """Demand scaling of a platform relative to the reference testbed.

    A factor > 1 means the platform is *weaker* on that dimension (the
    same game consumes a larger fraction of it).

    Parameters
    ----------
    name:
        Human-readable platform name.
    cpu_factor, gpu_factor, gpu_mem_factor, ram_factor:
        Positive demand multipliers.
    """

    name: str
    cpu_factor: float = 1.0
    gpu_factor: float = 1.0
    gpu_mem_factor: float = 1.0
    ram_factor: float = 1.0

    def __post_init__(self) -> None:
        for field_name in ("cpu_factor", "gpu_factor", "gpu_mem_factor", "ram_factor"):
            check_positive(field_name, getattr(self, field_name))

    @property
    def factors(self) -> ResourceVector:
        """The four multipliers as a vector."""
        return ResourceVector(
            cpu=self.cpu_factor,
            gpu=self.gpu_factor,
            gpu_mem=self.gpu_mem_factor,
            ram=self.ram_factor,
        )

    def scale_demand(self, demand: ResourceVector) -> ResourceVector:
        """Demand of a game on this platform, clipped at 100 %."""
        return demand.scale(self.factors).clip(0.0, 100.0)

    def scale_array(self, demands: "np.ndarray") -> "np.ndarray":
        """Vectorized :meth:`scale_demand` over an ``(n, 4)`` array."""
        import numpy as np

        out = np.asarray(demands, dtype=float) * self.factors.array[None, :]
        return np.clip(out, 0.0, 100.0)


#: The paper's testbed: 4-core i7-7700, 8 GB RAM, 2× GTX 2080.
REFERENCE_PLATFORM = PlatformProfile("i7-7700+gtx2080")

#: A platform with a weaker GPU (e.g. a GTX 1660-class device).
WEAK_GPU_PLATFORM = PlatformProfile(
    "weak-gpu", gpu_factor=1.4, gpu_mem_factor=1.25
)

#: A larger server with more cores and memory (§IV-D scaling discussion).
BIG_SERVER_PLATFORM = PlatformProfile(
    "big-server", cpu_factor=0.5, ram_factor=0.5, gpu_factor=0.9
)
