"""Heterogeneous platform substrate.

Models the paper's testbed — a multi-core CPU host with several discrete
GPUs, cgroup-style per-game resource ceilings, and FPS-based QoS — as a
deterministic simulation substrate:

* :mod:`~repro.platform_.resources` — the 4-dimensional resource vector
  (CPU, GPU, GPU memory, RAM) everything is measured in.
* :mod:`~repro.platform_.server` — a server with CPU/RAM capacity and
  per-GPU capacity; games are placed on exactly one GPU (paper §IV-C).
* :mod:`~repro.platform_.allocator` — the cgroup-like allocation
  interface with conservation checks.
* :mod:`~repro.platform_.qos` — the FPS model (undersupply ⇒ frame
  drops; 30/60 frame locks) and QoS-violation accounting.
* :mod:`~repro.platform_.profile` — platform scaling profiles for the
  heterogeneity/migration experiments (§IV-D).
"""

from repro.platform_.resources import (
    CPU,
    DIMENSIONS,
    GPU,
    GPU_MEM,
    N_DIMS,
    RAM,
    ResourceVector,
)
from repro.platform_.server import GPUDevice, Placement, Server
from repro.platform_.allocator import Allocator, AllocationError
from repro.platform_.qos import FpsModel, QoSTracker, QoSReport
from repro.platform_.profile import (
    BIG_SERVER_PLATFORM,
    PlatformProfile,
    REFERENCE_PLATFORM,
    WEAK_GPU_PLATFORM,
)

__all__ = [
    "DIMENSIONS",
    "N_DIMS",
    "CPU",
    "GPU",
    "GPU_MEM",
    "RAM",
    "ResourceVector",
    "Server",
    "GPUDevice",
    "Placement",
    "Allocator",
    "AllocationError",
    "FpsModel",
    "QoSTracker",
    "QoSReport",
    "PlatformProfile",
    "REFERENCE_PLATFORM",
    "WEAK_GPU_PLATFORM",
    "BIG_SERVER_PLATFORM",
]
