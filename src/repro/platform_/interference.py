"""Cross-session performance interference.

Capacity partitioning (cgroups) does not fully isolate co-located games:
they still share caches, memory bandwidth and the GPU's internal fabric.
The paper's related work is explicit that this is what GAugur/Bubble-Up/
SMiTe model, and that "performance degradation depends only on the
number of co-located games" is an oversimplification CoCG must beat.

:class:`InterferenceModel` provides the substrate: given every
co-located session's usage, each session's *effective demand* inflates
by a factor that grows with the **others'** pressure on the shared
memory subsystem (a weighted blend of their CPU and GPU-memory usage).
The default intensity is mild (a few percent at realistic loads), and
the model can be disabled entirely; the interference ablation bench
quantifies its effect on every strategy.

The functional form is the linear contention model the co-location
literature uses below saturation::

    slowdown_i = 1 + intensity · min(pressure_{-i} / saturation, 1)
    pressure_{-i} = Σ_{j≠i} (w_cpu·cpu_j + w_mem·gpu_mem_j) / 100
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping


from repro.platform_.resources import ResourceVector
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["InterferenceModel"]


@dataclass(frozen=True)
class InterferenceModel:
    """Linear shared-resource contention.

    Parameters
    ----------
    intensity:
        Maximum demand inflation (0.08 = up to +8 % at saturation).
        Zero disables interference.
    cpu_weight, mem_weight:
        How strongly a neighbour's CPU / GPU-memory usage presses on the
        shared subsystem.
    saturation:
        Neighbour pressure (in units of "fully busy sessions") at which
        the inflation saturates.
    """

    intensity: float = 0.08
    cpu_weight: float = 0.6
    mem_weight: float = 0.4
    saturation: float = 1.5

    def __post_init__(self) -> None:
        check_nonnegative("intensity", self.intensity)
        check_nonnegative("cpu_weight", self.cpu_weight)
        check_nonnegative("mem_weight", self.mem_weight)
        check_positive("saturation", self.saturation)
        if self.cpu_weight + self.mem_weight <= 0:
            raise ValueError("at least one weight must be positive")

    # ------------------------------------------------------------------
    def pressure_of(self, usage: ResourceVector) -> float:
        """One session's pressure on the shared subsystem, in [0, ~1]."""
        return (
            self.cpu_weight * usage.cpu + self.mem_weight * usage.gpu_mem
        ) / (100.0 * (self.cpu_weight + self.mem_weight))

    def slowdowns(
        self, usages: Mapping[str, ResourceVector]
    ) -> Dict[str, float]:
        """Per-session demand-inflation factors (≥ 1).

        A session alone on the server is never slowed.  Factors depend
        only on the *other* sessions' usage, so shrinking a victim does
        not (spuriously) shrink its own penalty.
        """
        if self.intensity == 0.0 or len(usages) <= 1:
            return {sid: 1.0 for sid in usages}
        pressures = {sid: self.pressure_of(u) for sid, u in usages.items()}
        total = sum(pressures.values())
        out = {}
        for sid in usages:
            others = total - pressures[sid]
            level = min(others / self.saturation, 1.0)
            out[sid] = 1.0 + self.intensity * level
        return out

    def inflate(
        self, demand: ResourceVector, slowdown: float
    ) -> ResourceVector:
        """Apply a slowdown factor to a demand vector (clipped at 100)."""
        if slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {slowdown}")
        return (demand * slowdown).clip(0.0, 100.0)

    @staticmethod
    def disabled() -> "InterferenceModel":
        """A model that never interferes (the default substrate)."""
        return InterferenceModel(intensity=0.0)
