"""FPS model and QoS accounting.

The paper measures cloud-game QoS in FPS (§V-C2): 30 FPS is the floor an
average player tolerates, 60 FPS is ideal, and some titles lock their
frame rate to 30/60.  When a game's resource ceiling falls below its
demand, frames drop — the FPS model turns (demand, allocation) into a
frame rate:

    fps = nominal_fps · min_i(allocation_i / demand_i, 1)^γ

clipped at the title's frame lock.  γ (default 1.5) captures that
rendering pipelines degrade super-linearly once starved: a 20 % resource
deficit costs more than 20 % of frames (frame pacing, pipeline stalls).

:class:`QoSTracker` accumulates per-second FPS samples for many sessions
and produces the paper's metrics: QoS-violation time (fps < 30),
performance-loss fraction (the < 5 % criterion of §IV-D), and
fraction-of-best FPS (the y-axis of Fig 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.obs.naming import QOS_DEGRADED_SECONDS
from repro.obs.observer import Observer
from repro.platform_.resources import ResourceVector
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["FpsModel", "QoSReport", "QoSTracker"]


@dataclass
class FpsModel:
    """Maps (demand, allocation) to frames per second.

    Parameters
    ----------
    gamma:
        Starvation exponent (≥ 1); 1 makes FPS proportional to the
        binding satisfaction ratio.
    qos_floor_fps:
        FPS below which a second counts as a QoS violation (paper: 30).
    ideal_fps:
        The "ideal performance" mark (paper: 60); only used in reports.
    """

    gamma: float = 1.5
    qos_floor_fps: float = 30.0
    ideal_fps: float = 60.0

    def __post_init__(self) -> None:
        if self.gamma < 1.0:
            raise ValueError(f"gamma must be >= 1, got {self.gamma}")
        check_positive("qos_floor_fps", self.qos_floor_fps)
        check_positive("ideal_fps", self.ideal_fps)

    def satisfaction(
        self, demand: ResourceVector, allocation: ResourceVector
    ) -> float:
        """Binding supply ratio ``min_i(alloc_i/demand_i)`` clipped to [0, 1].

        Dimensions with zero demand never bind.
        """
        d = demand.array
        a = allocation.array
        active = d > 1e-9
        if not active.any():
            return 1.0
        ratios = a[active] / d[active]
        return float(np.clip(ratios.min(), 0.0, 1.0))

    def fps(
        self,
        nominal_fps: float,
        demand: ResourceVector,
        allocation: ResourceVector,
        *,
        frame_lock: Optional[float] = None,
    ) -> float:
        """Achieved FPS for one second of play.

        Parameters
        ----------
        nominal_fps:
            FPS the stage reaches with all demanded resources granted.
        frame_lock:
            Manufacturer frame cap (30/60) or ``None`` for uncapped.
        """
        check_positive("nominal_fps", nominal_fps)
        s = self.satisfaction(demand, allocation)
        fps = nominal_fps * s**self.gamma
        if frame_lock is not None:
            fps = min(fps, float(frame_lock))
        return float(fps)

    def best_fps(self, nominal_fps: float, *, frame_lock: Optional[float] = None) -> float:
        """FPS with fully satisfied demand (the Fig-13 'best performance')."""
        if frame_lock is not None:
            return float(min(nominal_fps, frame_lock))
        return float(nominal_fps)


@dataclass
class QoSReport:
    """Aggregated QoS metrics for one session.

    ``degraded_seconds`` counts seconds the scheduler spent in degraded
    (open-breaker, reactive-allocation) mode for this session — zero in
    a fault-free run.
    """

    session_id: str
    seconds: int
    mean_fps: float
    violation_seconds: int
    violation_fraction: float
    fraction_of_best: float
    min_fps: float
    degraded_seconds: int = 0

    def meets_paper_tolerance(self, tolerance: float = 0.05) -> bool:
        """The §IV-D criterion: degradation for < 5 % of the total time."""
        return self.violation_fraction < tolerance


class QoSTracker:
    """Accumulates per-second FPS samples per session.

    The tracker also stores, per sample, the *best achievable* FPS of the
    stage the session was in, so fraction-of-best (Fig 13) is computed
    against the right per-stage ceiling rather than a global 60.
    """

    def __init__(self, model: Optional[FpsModel] = None):
        self.model = model if model is not None else FpsModel()
        self._fps: Dict[str, List[float]] = {}
        self._best: Dict[str, List[float]] = {}
        self._degraded: Dict[str, int] = {}
        self._c_degraded = None

    def attach_observer(self, obs: Observer, *, node: str = "") -> None:
        """Mirror degraded-seconds into ``qos_degraded_seconds_total``.

        The per-session dict stays authoritative (it feeds
        :meth:`report`); the registry child — one per fleet node — adds
        the fleet-wide view the Prometheus export needs.
        """
        self._c_degraded = obs.counter(
            QOS_DEGRADED_SECONDS,
            "Session-seconds spent under degraded (reactive) control.",
            ("node",),
        ).labels(node=node)

    def note_degraded(self, session_id: str, seconds: int = 1) -> None:
        """Count ``seconds`` of degraded-mode operation for a session."""
        check_nonnegative("seconds", seconds)
        self._degraded[session_id] = (
            self._degraded.get(session_id, 0) + int(seconds)
        )
        if self._c_degraded is not None:
            self._c_degraded.inc(float(seconds))

    def degraded_seconds(self, session_id: str) -> int:
        """Seconds the session spent under degraded (reactive) control."""
        return self._degraded.get(session_id, 0)

    def total_degraded_seconds(self) -> int:
        """Degraded-mode seconds summed over every session."""
        return sum(self._degraded.values())

    def record(self, session_id: str, fps: float, best_fps: float) -> None:
        """Record one second of play."""
        check_nonnegative("fps", fps)
        check_positive("best_fps", best_fps)
        self._fps.setdefault(session_id, []).append(float(fps))
        self._best.setdefault(session_id, []).append(float(best_fps))

    def record_second(
        self,
        session_id: str,
        nominal_fps: float,
        demand: ResourceVector,
        allocation: ResourceVector,
        *,
        frame_lock: Optional[float] = None,
    ) -> float:
        """Evaluate the FPS model for one second and record it."""
        fps = self.model.fps(nominal_fps, demand, allocation, frame_lock=frame_lock)
        self.record(
            session_id, fps, self.model.best_fps(nominal_fps, frame_lock=frame_lock)
        )
        return fps

    # ------------------------------------------------------------------
    @property
    def session_ids(self) -> List[str]:
        """Sessions with at least one FPS sample."""
        return list(self._fps)

    def fps_series(self, session_id: str) -> np.ndarray:
        """Recorded per-second FPS for one session."""
        return np.asarray(self._fps.get(session_id, ()), dtype=float)

    def report(self, session_id: str) -> QoSReport:
        """Aggregate one session's samples into a :class:`QoSReport`."""
        fps = self.fps_series(session_id)
        if fps.size == 0:
            raise KeyError(f"no samples recorded for session {session_id!r}")
        best = np.asarray(self._best[session_id], dtype=float)
        violations = int(np.sum(fps < self.model.qos_floor_fps))
        return QoSReport(
            session_id=session_id,
            seconds=int(fps.size),
            mean_fps=float(fps.mean()),
            violation_seconds=violations,
            violation_fraction=float(violations / fps.size),
            fraction_of_best=float(np.mean(fps / best)),
            min_fps=float(fps.min()),
            degraded_seconds=self._degraded.get(session_id, 0),
        )

    def overall_fraction_of_best(self) -> float:
        """Time-weighted fraction-of-best across every session (Fig 13)."""
        num = 0.0
        den = 0
        for sid in self._fps:
            fps = np.asarray(self._fps[sid])
            best = np.asarray(self._best[sid])
            num += float(np.sum(fps / best))
            den += fps.size
        if den == 0:
            raise RuntimeError("no samples recorded")
        return num / den
