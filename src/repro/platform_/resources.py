"""The multi-dimensional resource vector.

Everything in the library — demand samples, allocations, capacities,
telemetry frames — is expressed over the same four dimensions the paper
measures (CPU utilisation via cgroups; GPU and GPU-memory utilisation via
GPU-Z; plus host RAM):

===========  =====================================================
dimension    meaning
===========  =====================================================
``cpu``      host CPU utilisation, percent of the machine (0–100)
``gpu``      GPU-core utilisation of the hosting GPU (0–100)
``gpu_mem``  GPU-memory utilisation of the hosting GPU (0–100)
``ram``      host RAM utilisation, percent of the machine (0–100)
===========  =====================================================

:class:`ResourceVector` is a small value type over a ``(4,)`` float
array.  Hot paths operate on raw arrays; the class exists for API
clarity at module boundaries and is cheap to convert both ways.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

import numpy as np

__all__ = [
    "DIMENSIONS",
    "N_DIMS",
    "CPU",
    "GPU",
    "GPU_MEM",
    "RAM",
    "ResourceVector",
]

DIMENSIONS: tuple[str, ...] = ("cpu", "gpu", "gpu_mem", "ram")
N_DIMS: int = len(DIMENSIONS)
CPU, GPU, GPU_MEM, RAM = range(N_DIMS)

VectorLike = Union["ResourceVector", np.ndarray, Iterable[float], Mapping[str, float]]


class ResourceVector:
    """An immutable point in resource space.

    Construct from keyword components, a mapping, an iterable of 4
    floats, or another vector::

        ResourceVector(cpu=35, gpu=60)           # unspecified dims are 0
        ResourceVector.from_array(np.array([35, 60, 40, 20]))

    Supports ``+``, ``-``, scalar ``*``/``/``, element-wise ``max``/
    ``min``, dominance comparison (:meth:`fits_within`) and conversion to
    a plain array (:attr:`array`).
    """

    __slots__ = ("_data",)

    def __init__(self, *, cpu: float = 0.0, gpu: float = 0.0,
                 gpu_mem: float = 0.0, ram: float = 0.0):
        self._data = np.array([cpu, gpu, gpu_mem, ram], dtype=float)
        self._data.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_array(values: Iterable[float]) -> "ResourceVector":
        """Build from any length-4 iterable/array."""
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                         dtype=float).reshape(-1)
        if arr.shape != (N_DIMS,):
            raise ValueError(f"expected {N_DIMS} components, got shape {arr.shape}")
        out = ResourceVector()
        data = arr.copy()
        data.setflags(write=False)
        out._data = data
        return out

    @staticmethod
    def coerce(value: VectorLike) -> "ResourceVector":
        """Accept a vector, mapping, or iterable and return a vector."""
        if isinstance(value, ResourceVector):
            return value
        if isinstance(value, Mapping):
            unknown = set(value) - set(DIMENSIONS)
            if unknown:
                raise ValueError(f"unknown resource dimensions: {sorted(unknown)}")
            return ResourceVector(**{k: float(v) for k, v in value.items()})
        return ResourceVector.from_array(value)

    @staticmethod
    def zeros() -> "ResourceVector":
        """The origin."""
        return ResourceVector()

    @staticmethod
    def full(value: float) -> "ResourceVector":
        """All dimensions set to ``value`` (e.g. ``full(100)`` = capacity)."""
        return ResourceVector.from_array(np.full(N_DIMS, float(value)))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def array(self) -> np.ndarray:
        """Read-only backing array of shape ``(4,)``."""
        return self._data

    @property
    def cpu(self) -> float:
        """Host CPU component."""
        return float(self._data[CPU])

    @property
    def gpu(self) -> float:
        """GPU-core component."""
        return float(self._data[GPU])

    @property
    def gpu_mem(self) -> float:
        """GPU-memory component."""
        return float(self._data[GPU_MEM])

    @property
    def ram(self) -> float:
        """Host RAM component."""
        return float(self._data[RAM])

    def __getitem__(self, dim: Union[int, str]) -> float:
        if isinstance(dim, str):
            dim = DIMENSIONS.index(dim)
        return float(self._data[dim])

    def as_dict(self) -> dict[str, float]:
        """Mapping view ``{dimension: value}``."""
        return dict(zip(DIMENSIONS, self._data.tolist()))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __add__(self, other: VectorLike) -> "ResourceVector":
        return ResourceVector.from_array(self._data + ResourceVector.coerce(other)._data)

    def __sub__(self, other: VectorLike) -> "ResourceVector":
        return ResourceVector.from_array(self._data - ResourceVector.coerce(other)._data)

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector.from_array(self._data * float(scalar))

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "ResourceVector":
        return ResourceVector.from_array(self._data / float(scalar))

    def maximum(self, other: VectorLike) -> "ResourceVector":
        """Element-wise max (the 'peak' combinator)."""
        return ResourceVector.from_array(
            np.maximum(self._data, ResourceVector.coerce(other)._data)
        )

    def minimum(self, other: VectorLike) -> "ResourceVector":
        """Element-wise min."""
        return ResourceVector.from_array(
            np.minimum(self._data, ResourceVector.coerce(other)._data)
        )

    def clip(self, lo: float = 0.0, hi: float = np.inf) -> "ResourceVector":
        """Clamp every component into ``[lo, hi]``."""
        return ResourceVector.from_array(np.clip(self._data, lo, hi))

    def scale(self, factors: VectorLike) -> "ResourceVector":
        """Element-wise multiply (platform heterogeneity scaling)."""
        return ResourceVector.from_array(
            self._data * ResourceVector.coerce(factors)._data
        )

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------
    def fits_within(self, capacity: VectorLike, *, slack: float = 1e-9) -> bool:
        """True when every component is ≤ the capacity's (dominance)."""
        cap = ResourceVector.coerce(capacity)._data
        return bool(np.all(self._data <= cap + slack))

    def dominates(self, other: VectorLike, *, slack: float = 1e-9) -> bool:
        """True when every component is ≥ the other's."""
        o = ResourceVector.coerce(other)._data
        return bool(np.all(self._data + slack >= o))

    def is_nonnegative(self) -> bool:
        """True when no component is negative."""
        return bool(np.all(self._data >= -1e-9))

    def max_component(self) -> float:
        """Largest component (the binding dimension under uniform caps)."""
        return float(self._data.max())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourceVector):
            return NotImplemented
        return bool(np.allclose(self._data, other._data))

    def __hash__(self) -> int:
        return hash(tuple(np.round(self._data, 9).tolist()))

    def __repr__(self) -> str:
        parts = ", ".join(f"{d}={v:.1f}" for d, v in zip(DIMENSIONS, self._data))
        return f"ResourceVector({parts})"
