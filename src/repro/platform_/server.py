"""Server model: CPU/RAM host capacity plus discrete GPUs.

The paper's testbed is a 4-core i7 with two GTX-2080 GPUs; each game is
deployed on exactly one GPU (§IV-C: "each game is deployed on a single
GPU device rather than across multiple GPUs").  The server therefore
tracks host-wide CPU/RAM and per-GPU GPU/GPU-memory allocations
separately — co-location pressure on the CPU is global, on the GPU it is
per-device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.platform_.resources import CPU, GPU, ResourceVector
from repro.util.validation import check_positive

__all__ = ["GPUDevice", "Placement", "Server", "CapacityError"]


class CapacityError(ValueError):
    """Raised when an operation would exceed server capacity."""


@dataclass
class GPUDevice:
    """One discrete GPU with its own core and memory capacity (percent)."""

    gpu_capacity: float = 100.0
    gpu_mem_capacity: float = 100.0
    name: str = "gpu"

    def __post_init__(self) -> None:
        check_positive("gpu_capacity", self.gpu_capacity)
        check_positive("gpu_mem_capacity", self.gpu_mem_capacity)


@dataclass
class Placement:
    """A session hosted on a server: which GPU it is pinned to and the
    cgroup-like ceiling currently granted to it."""

    session_id: str
    gpu_index: int
    allocation: ResourceVector


class Server:
    """A cloud-game backend server.

    Parameters
    ----------
    server_id:
        Unique name.
    cpu_capacity, ram_capacity:
        Host-wide capacities in percent (default 100).
    gpus:
        GPU devices; default two identical 100 %/100 % devices (matching
        the paper's dual-GTX-2080 host).

    Notes
    -----
    * Placement is *admission*: :meth:`place` reserves an allocation and
      raises :class:`CapacityError` when the reservation does not fit.
    * :meth:`set_allocation` retunes a hosted session's ceiling (what the
      scheduler does every 5-second control tick).
    * ``Server`` does not model *usage* — that is telemetry, produced by
      the simulation from sessions' demand and their ceilings.
    """

    def __init__(
        self,
        server_id: str,
        *,
        cpu_capacity: float = 100.0,
        ram_capacity: float = 100.0,
        gpus: Optional[Iterable[GPUDevice]] = None,
    ):
        check_positive("cpu_capacity", cpu_capacity)
        check_positive("ram_capacity", ram_capacity)
        self.server_id = str(server_id)
        self.cpu_capacity = float(cpu_capacity)
        self.ram_capacity = float(ram_capacity)
        self.gpus: List[GPUDevice] = list(gpus) if gpus is not None else [
            GPUDevice(name="gpu0"),
            GPUDevice(name="gpu1"),
        ]
        if not self.gpus:
            raise ValueError("a server needs at least one GPU")
        self._placements: Dict[str, Placement] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_gpus(self) -> int:
        """Number of GPU devices."""
        return len(self.gpus)

    @property
    def placements(self) -> Dict[str, Placement]:
        """Read-only view of hosted sessions."""
        return dict(self._placements)

    @property
    def session_ids(self) -> List[str]:
        """Hosted session ids."""
        return list(self._placements)

    def capacity_vector(self, gpu_index: int) -> ResourceVector:
        """Capacity as seen by a session pinned to ``gpu_index``."""
        gpu = self._gpu(gpu_index)
        return ResourceVector(
            cpu=self.cpu_capacity,
            gpu=gpu.gpu_capacity,
            gpu_mem=gpu.gpu_mem_capacity,
            ram=self.ram_capacity,
        )

    def _gpu(self, gpu_index: int) -> GPUDevice:
        if not (0 <= gpu_index < len(self.gpus)):
            raise IndexError(
                f"gpu_index {gpu_index} out of range for {len(self.gpus)} GPUs"
            )
        return self.gpus[gpu_index]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def allocated_host(self) -> np.ndarray:
        """Summed (cpu, ram) allocation over all sessions."""
        cpu = sum(p.allocation.cpu for p in self._placements.values())
        ram = sum(p.allocation.ram for p in self._placements.values())
        return np.array([cpu, ram])

    def allocated_gpu(self, gpu_index: int) -> np.ndarray:
        """Summed (gpu, gpu_mem) allocation on one device."""
        self._gpu(gpu_index)
        g = sum(
            p.allocation.gpu
            for p in self._placements.values()
            if p.gpu_index == gpu_index
        )
        m = sum(
            p.allocation.gpu_mem
            for p in self._placements.values()
            if p.gpu_index == gpu_index
        )
        return np.array([g, m])

    def available(self, gpu_index: int) -> ResourceVector:
        """Remaining capacity for a new session pinned to ``gpu_index``."""
        host = self.allocated_host()
        dev = self.allocated_gpu(gpu_index)
        gpu = self._gpu(gpu_index)
        return ResourceVector(
            cpu=self.cpu_capacity - host[0],
            gpu=gpu.gpu_capacity - dev[0],
            gpu_mem=gpu.gpu_mem_capacity - dev[1],
            ram=self.ram_capacity - host[1],
        )

    def headroom_fraction(self) -> float:
        """Smallest relative slack across host dims and all GPU dims."""
        fracs = [
            1.0 - self.allocated_host()[0] / self.cpu_capacity,
            1.0 - self.allocated_host()[1] / self.ram_capacity,
        ]
        for i, gpu in enumerate(self.gpus):
            dev = self.allocated_gpu(i)
            fracs.append(1.0 - dev[0] / gpu.gpu_capacity)
            fracs.append(1.0 - dev[1] / gpu.gpu_mem_capacity)
        return float(min(fracs))

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def fits(self, allocation: ResourceVector, gpu_index: int) -> bool:
        """Whether a new allocation on ``gpu_index`` would fit."""
        return allocation.fits_within(self.available(gpu_index))

    def place(
        self, session_id: str, gpu_index: int, allocation: ResourceVector
    ) -> Placement:
        """Admit a session with an initial allocation.

        Raises
        ------
        CapacityError
            If the allocation does not fit on the host or the device.
        ValueError
            If the session is already placed or the allocation is negative.
        """
        if session_id in self._placements:
            raise ValueError(f"session {session_id!r} is already placed")
        if not allocation.is_nonnegative():
            raise ValueError(f"allocation must be non-negative, got {allocation}")
        if not self.fits(allocation, gpu_index):
            raise CapacityError(
                f"allocation {allocation} does not fit on {self.server_id}/gpu{gpu_index} "
                f"(available {self.available(gpu_index)})"
            )
        placement = Placement(session_id, int(gpu_index), allocation)
        self._placements[session_id] = placement
        return placement

    def set_allocation(self, session_id: str, allocation: ResourceVector) -> None:
        """Retune a hosted session's ceiling (cgroup update).

        The new allocation must keep the server within capacity.
        """
        placement = self._require(session_id)
        if not allocation.is_nonnegative():
            raise ValueError(f"allocation must be non-negative, got {allocation}")
        old = placement.allocation
        placement.allocation = allocation
        if (
            self.allocated_host()[0] > self.cpu_capacity + 1e-9
            or self.allocated_host()[1] > self.ram_capacity + 1e-9
            or any(
                self.allocated_gpu(i)[0] > g.gpu_capacity + 1e-9
                or self.allocated_gpu(i)[1] > g.gpu_mem_capacity + 1e-9
                for i, g in enumerate(self.gpus)
            )
        ):
            placement.allocation = old
            raise CapacityError(
                f"allocation {allocation} for {session_id!r} exceeds capacity"
            )

    def remove(self, session_id: str) -> Placement:
        """Release a session's reservation."""
        placement = self._require(session_id)
        del self._placements[session_id]
        return placement

    def _require(self, session_id: str) -> Placement:
        try:
            return self._placements[session_id]
        except KeyError:
            raise KeyError(f"session {session_id!r} is not placed on {self.server_id}") from None

    def least_loaded_gpu(self) -> int:
        """GPU index with the most remaining core capacity."""
        slack = [
            g.gpu_capacity - self.allocated_gpu(i)[0] for i, g in enumerate(self.gpus)
        ]
        return int(np.argmax(slack))

    def __repr__(self) -> str:
        return (
            f"Server({self.server_id!r}, sessions={len(self._placements)}, "
            f"gpus={len(self.gpus)})"
        )
