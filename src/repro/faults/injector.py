"""Replays a :class:`~repro.faults.plan.FaultPlan` into a live fleet.

The injector is armed once against a :class:`ClusterScheduler` and a
:class:`SimulationEngine`; every fault becomes an engine event at
priority :data:`FAULT_PRIORITY` (more urgent than control/dispatch/tick,
so a crash at ``t`` is visible to everything else that runs at ``t``).
Telemetry perturbations are installed up front — their ``[start, end)``
window gates activation — with per-node streams derived from the plan
seed, so replaying the same plan perturbs byte-identical samples.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.obs.naming import FAULTS_INJECTED, STREAM_FAULTS
from repro.obs.observer import Observer
from repro.sim.engine import SimulationEngine
from repro.sim.telemetry import TelemetryPerturbation
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # import cycle: cluster.experiment imports this module
    from repro.cluster.fleet import ClusterScheduler, FleetNode
    from repro.core.predictor import StagePredictor

__all__ = ["FAULT_PRIORITY", "FaultInjector"]

#: Engine priority of fault events — fires before same-time control,
#: dispatch and tick events.
FAULT_PRIORITY = -100


class FaultInjector:
    """Schedules a plan's faults as simulation events.

    Parameters
    ----------
    plan:
        The declarative fault schedule.
    cluster:
        The fleet under attack.
    engine:
        The event loop driving the run.
    obs:
        Optional shared :class:`~repro.obs.Observer`.  Each fired fault
        lands in ``faults_injected_total{kind}`` and becomes a span on
        the ``faults`` stream — a ``[start, recover)`` window where the
        spec declares one (node crash with ``recover_after``, telemetry
        perturbations with a finite ``end``), a point span otherwise.
    """

    def __init__(
        self,
        plan: FaultPlan,
        cluster: "ClusterScheduler",
        engine: SimulationEngine,
        *,
        obs: Optional[Observer] = None,
    ):
        self.plan = plan
        self.cluster = cluster
        self.engine = engine
        self.obs = obs
        self.armed = False
        self.applied: List[str] = []

    def _observe(
        self, kind: str, time: float, end: Optional[float] = None
    ) -> None:
        """Count + trace one fired fault (no-op when unobserved)."""
        if self.obs is None:
            return
        self.obs.tick(time)
        self.obs.counter(
            FAULTS_INJECTED, "Faults fired into the run by kind.", ("kind",)
        ).labels(kind=kind).inc(time=time)
        if end is not None and not math.isfinite(end):
            end = None
        self.obs.record_span(
            f"fault.{kind}", time, end, stream=STREAM_FAULTS, kind=kind
        )

    # ------------------------------------------------------------------
    def _match_nodes(self, spec: FaultSpec) -> List["FleetNode"]:
        return [
            node for node in self.cluster.nodes
            if spec.matches_node(node.node_id)
        ]

    def _match_predictors(self, spec: FaultSpec) -> List["StagePredictor"]:
        found: List["StagePredictor"] = []
        for node in self._match_nodes(spec):
            for game, profile in sorted(node.profiles.items()):
                if not spec.matches_game(game):
                    continue
                for backend, predictor in sorted(profile.predictors.items()):
                    if spec.matches_backend(backend):
                        found.append(predictor)
        return found

    def _note(self, time: float, detail: str) -> None:
        self.applied.append(f"t={time:.0f}s {detail}")

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Schedule every fault; call once, before the run starts."""
        if self.armed:
            raise RuntimeError("injector is already armed")
        self.armed = True
        for index, spec in enumerate(self.plan.scheduled()):
            self._arm_one(index, spec)

    def _arm_one(self, index: int, spec: FaultSpec) -> None:
        kind = spec.kind
        if kind is FaultKind.NODE_CRASH:
            self._arm_node_crash(spec)
        elif kind is FaultKind.NODE_RECOVER:
            self._arm_node_transition(spec, "recover")
        elif kind is FaultKind.NODE_DRAIN:
            self._arm_node_transition(spec, "drain")
        elif kind is FaultKind.SESSION_KILL:
            self._arm_session_kill(spec)
        elif kind in (FaultKind.TELEMETRY_DROPOUT, FaultKind.TELEMETRY_NOISE):
            self._arm_telemetry(index, spec)
        elif kind is FaultKind.PREDICTOR_FAIL:
            self._arm_predictor(spec, failing=True)
            if spec.recover_after is not None:
                self._arm_predictor(
                    spec, failing=False, at=spec.time + spec.recover_after
                )
        elif kind is FaultKind.PREDICTOR_RECOVER:
            self._arm_predictor(spec, failing=False)
        elif kind in (FaultKind.PROVISION_FAIL, FaultKind.PROVISION_STALL):
            self._arm_provision_window(spec)
        elif kind is FaultKind.SPOT_RECLAIM:
            self._arm_spot_reclaim(index, spec)
        elif kind is FaultKind.WARM_POOL_EXHAUST:
            self._arm_warm_pool_exhaust(spec)
        else:  # pragma: no cover - the enum is closed
            raise ValueError(f"unhandled fault kind {kind!r}")

    # ------------------------------------------------------------------
    def _arm_node_crash(self, spec: FaultSpec) -> None:
        def fire(engine: SimulationEngine) -> None:
            self._observe(
                "node_crash",
                engine.now,
                None if spec.recover_after is None
                else engine.now + spec.recover_after,
            )
            for node in self._match_nodes(spec):
                killed = self.cluster.crash_node(
                    node.node_id, engine.now, requeue=spec.requeue
                )
                self._note(
                    engine.now,
                    f"node-crash {node.node_id} "
                    f"({len(killed)} sessions killed, requeue={spec.requeue})",
                )

        self.engine.at(spec.time, fire, priority=FAULT_PRIORITY)
        if spec.recover_after is not None:
            recovery = FaultSpec(
                FaultKind.NODE_RECOVER,
                spec.time + spec.recover_after,
                node=spec.node,
            )
            self._arm_node_transition(recovery, "recover")

    def _arm_node_transition(self, spec: FaultSpec, action: str) -> None:
        def fire(engine: SimulationEngine) -> None:
            self._observe(f"node_{action}", engine.now)
            for node in self._match_nodes(spec):
                if action == "recover":
                    self.cluster.recover_node(node.node_id, engine.now)
                else:
                    self.cluster.drain_node(node.node_id, engine.now)
                self._note(engine.now, f"node-{action} {node.node_id}")

        self.engine.at(spec.time, fire, priority=FAULT_PRIORITY)

    def _arm_session_kill(self, spec: FaultSpec) -> None:
        def fire(engine: SimulationEngine) -> None:
            self._observe("session_kill", engine.now)
            sid = self.cluster.kill_session(
                engine.now,
                node=spec.node,
                session=spec.session,
                requeue=spec.requeue,
            )
            self._note(
                engine.now,
                f"session-kill {sid or '<no match>'} (requeue={spec.requeue})",
            )

        self.engine.at(spec.time, fire, priority=FAULT_PRIORITY)

    def _arm_telemetry(self, index: int, spec: FaultSpec) -> None:
        kind = (
            "dropout" if spec.kind is FaultKind.TELEMETRY_DROPOUT else "noise"
        )
        stream = self.plan.stream_seed(index, spec)
        targets = self._match_nodes(spec)
        for node in targets:
            node.telemetry.add_perturbation(TelemetryPerturbation(
                kind=kind,
                start=spec.time,
                end=spec.end,
                rate=spec.rate,
                std=spec.std,
                spike_prob=spec.spike_prob,
                spike_scale=spec.spike_scale,
                session=spec.session,
                seed=derive_seed(stream, node.node_id),
            ))

        def fire(engine: SimulationEngine) -> None:
            self._observe(f"telemetry_{kind}", engine.now, spec.end)
            for node in targets:
                node.telemetry.record_fault_event(
                    engine.now, f"telemetry-{kind}",
                    f"until t={spec.end:.0f}s (rate={spec.rate}, std={spec.std})",
                )
            self._note(engine.now, f"telemetry-{kind} on {len(targets)} nodes")

        self.engine.at(spec.time, fire, priority=FAULT_PRIORITY)

    def _arm_provision_window(self, spec: FaultSpec) -> None:
        stalling = spec.kind is FaultKind.PROVISION_STALL
        kind = "provision_stall" if stalling else "provision_fail"

        def fire(engine: SimulationEngine) -> None:
            self._observe(kind, engine.now, spec.end)
            provisioner = self.cluster.provisioner
            if provisioner is None:
                self._note(
                    engine.now,
                    f"{spec.kind.value} <no provisioner attached; no-op>",
                )
                return
            if stalling:
                provisioner.inject_provision_stall(
                    spec.time, spec.end, spec.stall
                )
                detail = f"stall +{spec.stall:.0f}s"
            else:
                provisioner.inject_provision_fail(spec.time, spec.end)
                detail = "attempts fail"
            self._note(
                engine.now,
                f"{spec.kind.value} until t={spec.end:.0f}s ({detail})",
            )

        self.engine.at(spec.time, fire, priority=FAULT_PRIORITY)

    def _arm_spot_reclaim(self, index: int, spec: FaultSpec) -> None:
        def fire(engine: SimulationEngine) -> None:
            self._observe(
                "spot_reclaim", engine.now, engine.now + spec.notice
            )
            for node in self._match_nodes(spec):
                provisioner = self.cluster.provisioner
                if provisioner is not None:
                    served = provisioner.reclaim(
                        node.node_id, engine.now, notice=spec.notice,
                        requeue=spec.requeue, fault_index=index,
                    )
                else:
                    served = self.cluster.begin_reclaim(
                        node.node_id, engine.now, notice=spec.notice,
                        fault_index=index,
                    )
                    if served:
                        engine.at(
                            engine.now + spec.notice,
                            lambda e, nid=node.node_id: (
                                self.cluster.finish_reclaim(
                                    nid, e.now, requeue=spec.requeue,
                                    fault_index=index,
                                )
                            ),
                            priority=FAULT_PRIORITY,
                        )
                self._note(
                    engine.now,
                    f"spot-reclaim {node.node_id} "
                    + (
                        f"(notice={spec.notice:.0f}s, requeue={spec.requeue})"
                        if served else "<not reclaimable>"
                    ),
                )

        self.engine.at(spec.time, fire, priority=FAULT_PRIORITY)

    def _arm_warm_pool_exhaust(self, spec: FaultSpec) -> None:
        def fire(engine: SimulationEngine) -> None:
            self._observe("warm_pool_exhaust", engine.now, spec.end)
            provisioner = self.cluster.provisioner
            if provisioner is None:
                self._note(
                    engine.now,
                    "warm-pool-exhaust <no provisioner attached; no-op>",
                )
                return
            taken = provisioner.exhaust_warm_pool(
                engine.now, duration=spec.duration
            )
            self._note(
                engine.now,
                f"warm-pool-exhaust ({taken} standbys withdrawn, "
                f"refills suppressed until t={spec.end:.0f}s)",
            )

        self.engine.at(spec.time, fire, priority=FAULT_PRIORITY)

    def _arm_predictor(
        self, spec: FaultSpec, *, failing: bool, at: Optional[float] = None
    ) -> None:
        when = spec.time if at is None else at
        action = "predictor-fail" if failing else "predictor-recover"

        def fire(engine: SimulationEngine) -> None:
            self._observe(action.replace("-", "_"), engine.now)
            hit = self._match_predictors(spec)
            for predictor in hit:
                predictor.inject_failure(failing)
            for node in self._match_nodes(spec):
                node.telemetry.record_fault_event(
                    engine.now, action,
                    f"game={spec.game} backend={spec.backend}",
                )
            self._note(engine.now, f"{action} ({len(hit)} backends)")

        self.engine.at(when, fire, priority=FAULT_PRIORITY)
