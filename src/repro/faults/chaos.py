"""Chaos harness: the same fleet run with and without a fault plan.

:func:`run_chaos` executes two :class:`FleetExperiment` runs from
identical seeds — one fault-free, one under the plan — and packages the
QoS/throughput deltas.  This is what ``cocg chaos`` and the CI chaos
smoke job drive; :func:`default_plan` is the canonical demo schedule
(one node crash mid-run with recovery, low-rate telemetry dropout, a
predictor-backend outage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence

from repro.cluster.experiment import FleetExperiment, FleetResult
from repro.cluster.fleet import ClusterScheduler
from repro.cluster.provisioner import Provisioner
from repro.faults.plan import FaultPlan
from repro.games.spec import GameSpec
from repro.obs.observer import Observer
from repro.util.rng import Seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.recorder import TraceRecorder

__all__ = ["ChaosReport", "default_plan", "reclaim_storm_plan", "run_chaos"]


def default_plan(
    horizon: int, *, seed: int = 0, crash_node: str = "n1"
) -> FaultPlan:
    """The demo schedule: crash + recovery, 1 % dropout, model outage."""
    crash_at = max(1.0, horizon / 3.0)
    return (
        FaultPlan(seed=seed)
        .node_crash(crash_at, crash_node, recover_after=horizon / 6.0)
        .telemetry_dropout(0.0, duration=float(horizon), rate=0.01)
        .predictor_failure(
            max(1.0, horizon / 4.0), recover_after=horizon / 4.0
        )
    )


def reclaim_storm_plan(
    horizon: int,
    *,
    seed: int = 0,
    nodes: Sequence[str] = ("n1", "n2"),
    notice: float = 45.0,
) -> FaultPlan:
    """A reclamation storm: staggered spot reclaims under capacity stress.

    Spot reclaims hit the given nodes one after another through the
    middle of the run while a provision-fail window delays the first
    replacements and the warm pool is exhausted once — the scenario the
    session-accountability invariant is asserted under (zero unaccounted
    sessions; see ``docs/FAULTS.md``).  Needs a
    :class:`~repro.cluster.provisioner.Provisioner` to recover capacity;
    without one the reclaimed nodes just stay down.
    """
    plan = FaultPlan(seed=seed)
    first = max(1.0, horizon / 4.0)
    step = max(1.0, horizon / (2.0 * max(1, len(nodes))))
    plan.provision_fail(first, duration=max(30.0, horizon / 8.0))
    for i, node in enumerate(nodes):
        plan.spot_reclaim(first + i * step, node, notice=notice)
    plan.warm_pool_exhaust(
        max(1.0, first - 10.0), duration=max(30.0, horizon / 10.0)
    )
    return plan


@dataclass
class ChaosReport:
    """Side-by-side outcome of the fault-free and faulted runs."""

    baseline: FleetResult
    faulted: FleetResult
    plan: FaultPlan

    @property
    def violation_delta(self) -> float:
        """Extra QoS-violation fraction caused by the faults."""
        return (
            self.faulted.violation_fraction - self.baseline.violation_fraction
        )

    @property
    def completed_delta(self) -> int:
        """Completed runs lost (negative = lost) to the faults."""
        return sum(self.faulted.completed_runs.values()) - sum(
            self.baseline.completed_runs.values()
        )

    def summary_lines(self) -> List[str]:
        """Human-readable report (one string per output line)."""
        base, chaos = self.baseline, self.faulted
        lines = [
            f"fault plan: {len(self.plan)} faults (seed {self.plan.seed})",
            "",
            f"{'':24s}{'fault-free':>12s}{'faulted':>12s}",
            (
                f"{'completed runs':24s}"
                f"{sum(base.completed_runs.values()):>12d}"
                f"{sum(chaos.completed_runs.values()):>12d}"
            ),
            (
                f"{'throughput (Eq-2)':24s}"
                f"{base.throughput:>12.3f}{chaos.throughput:>12.3f}"
            ),
            (
                f"{'QoS violation frac':24s}"
                f"{base.violation_fraction:>12.4f}"
                f"{chaos.violation_fraction:>12.4f}"
            ),
            (
                f"{'fraction of best FPS':24s}"
                f"{base.fraction_of_best:>12.3f}{chaos.fraction_of_best:>12.3f}"
            ),
            (
                f"{'degraded seconds':24s}"
                f"{base.degraded_seconds:>12d}{chaos.degraded_seconds:>12d}"
            ),
            (
                f"{'dead letters':24s}"
                f"{len(base.dead_letters):>12d}{len(chaos.dead_letters):>12d}"
            ),
            (
                f"{'requeues/evictions':24s}"
                f"{base.requeues:>9d}/{base.evictions:<2d}"
                f"{chaos.requeues:>9d}/{chaos.evictions:<2d}"
            ),
            "",
            f"QoS-violation delta: {self.violation_delta:+.4f}",
            f"completed-runs delta: {self.completed_delta:+d}",
        ]
        if chaos.provisioner_stats:
            stats = chaos.provisioner_stats
            lines.append("")
            lines.append(
                "provisioner: "
                f"{stats.get('provisioned', 0)} provisioned, "
                f"{stats.get('warm_promoted', 0)} promoted, "
                f"{stats.get('retried', 0)} retried, "
                f"{stats.get('failed', 0)} failed, "
                f"{stats.get('timed_out', 0)} timed out, "
                f"{stats.get('reclaimed', 0)} reclaimed"
            )
        if chaos.session_accounting:
            acct = chaos.session_accounting
            lines.append(
                "session accounting: "
                f"{acct.get('dispatched', 0)} dispatched = "
                f"{acct.get('completed', 0)} completed + "
                f"{acct.get('running', 0)} running + "
                f"{acct.get('evicted', 0)} evicted "
                f"(unaccounted: {chaos.unaccounted_sessions})"
            )
        if chaos.fault_events:
            lines.append("")
            lines.append("faults applied:")
            lines.extend(f"  {event}" for event in chaos.fault_events)
        return lines


def run_chaos(
    make_cluster: Callable[[], ClusterScheduler],
    specs: Sequence[GameSpec],
    *,
    plan: FaultPlan,
    horizon: int = 600,
    rate_per_minute: float = 2.0,
    seed: Seed = 0,
    detect_interval: int = 5,
    make_provisioner: Optional[
        Callable[[ClusterScheduler], Provisioner]
    ] = None,
    obs: Optional[Observer] = None,
    trace: Optional["TraceRecorder"] = None,
) -> ChaosReport:
    """Run fault-free and faulted experiments from identical seeds.

    ``make_cluster`` must build a *fresh* cluster per call — nodes and
    strategies are stateful, so the two runs cannot share one.
    ``make_provisioner``, when given, builds a fresh capacity plane over
    each run's cluster (both runs get one, so the provisioning faults
    are the only difference between them).  An ``obs`` observer or a
    ``trace`` recorder, when given, is wired into the *faulted* run only
    (the baseline stays unobserved so the pair shares nothing) —
    replaying the trace reproduces the faulted run's digest.
    """

    def run(fault_plan, run_obs=None, run_trace=None):
        cluster = make_cluster()
        provisioner = (
            make_provisioner(cluster) if make_provisioner is not None else None
        )
        return FleetExperiment(
            cluster,
            specs,
            horizon=horizon,
            rate_per_minute=rate_per_minute,
            seed=seed,
            detect_interval=detect_interval,
            fault_plan=fault_plan,
            provisioner=provisioner,
            obs=run_obs,
            trace=run_trace,
        ).run()

    baseline = run(None)
    faulted = run(plan, obs, trace)
    return ChaosReport(baseline=baseline, faulted=faulted, plan=plan)
