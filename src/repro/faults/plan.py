"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a seed-carrying schedule of faults — node
crashes and recoveries, single-session kills, telemetry dropout and
noise, predictor-backend failures — that a
:class:`~repro.faults.injector.FaultInjector` turns into
:class:`~repro.sim.engine.SimulationEngine` events.  The plan itself is
pure data: no wall clock, no hidden randomness.  Every stochastic fault
(e.g. a 1 % telemetry dropout) draws from a generator derived with
:func:`repro.util.rng.derive_seed` from the plan seed and the fault's
index, so the same ``(seed, plan)`` pair always perturbs the very same
samples — the property the chaos CI job asserts byte-for-byte.

The builder methods (:meth:`FaultPlan.node_crash`,
:meth:`FaultPlan.telemetry_dropout`, …) return ``self`` so plans read as
a fluent schedule::

    plan = (
        FaultPlan(seed=7)
        .node_crash(120.0, "node-1", recover_after=180.0)
        .telemetry_dropout(0.0, duration=600.0, rate=0.01)
        .predictor_failure(200.0, game="contra", recover_after=150.0)
    )
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.util.rng import derive_seed
from repro.util.validation import check_fraction, check_nonnegative

__all__ = ["FaultKind", "FaultSpec", "FaultPlan", "validate_plan_payload"]


class FaultKind(Enum):
    """The fault taxonomy (see ``docs/FAULTS.md``)."""

    NODE_CRASH = "node-crash"
    NODE_RECOVER = "node-recover"
    NODE_DRAIN = "node-drain"
    SESSION_KILL = "session-kill"
    TELEMETRY_DROPOUT = "telemetry-dropout"
    TELEMETRY_NOISE = "telemetry-noise"
    PREDICTOR_FAIL = "predictor-fail"
    PREDICTOR_RECOVER = "predictor-recover"
    PROVISION_FAIL = "provision-fail"
    PROVISION_STALL = "provision-stall"
    SPOT_RECLAIM = "spot-reclaim"
    WARM_POOL_EXHAUST = "warm-pool-exhaust"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Targeting fields default to ``"*"`` (match everything).  ``node``,
    ``game`` and ``backend`` match exactly; ``session`` matches by
    prefix, which pairs naturally with the ``<game>-r<id>@<node>``
    session-id convention.

    Parameters
    ----------
    kind:
        What goes wrong.
    time:
        Simulation time (seconds) at which the fault fires.
    node / session / game / backend:
        Targeting patterns (see above).
    duration:
        Length of windowed faults (dropout/noise); ``inf`` = open-ended.
    rate:
        Per-sample dropout probability in [0, 1].
    std:
        Extra Gaussian noise std (percentage points) for noise faults.
    spike_prob / spike_scale:
        Per-sample probability and magnitude of a telemetry spike.
    recover_after:
        For crashes/predictor failures: schedule the matching recovery
        this many seconds later (``None`` = no auto-recovery).
    requeue:
        For kills/crashes/reclaims: whether displaced requests re-enter
        the cluster queue (a crash) or vanish/dead-letter.
    notice:
        Spot-reclamation notice window (seconds the node keeps its
        sessions after the reclaim fires).
    stall:
        Extra seconds a provision attempt hangs inside a
        ``provision-stall`` window.
    """

    kind: FaultKind
    time: float
    node: str = "*"
    session: str = "*"
    game: str = "*"
    backend: str = "*"
    duration: float = math.inf
    rate: float = 1.0
    std: float = 0.0
    spike_prob: float = 0.0
    spike_scale: float = 25.0
    recover_after: Optional[float] = None
    requeue: bool = True
    notice: float = 120.0
    stall: float = 30.0

    #: Optional payload keys, in :meth:`to_dict` order (everything but
    #: ``kind``/``time``).  One tuple serves serialization, strict
    #: deserialization and :func:`validate_plan_payload`.
    OPTIONAL_FIELDS = (
        "node", "session", "game", "backend", "duration", "rate",
        "std", "spike_prob", "spike_scale", "recover_after", "requeue",
        "notice", "stall",
    )

    def __post_init__(self) -> None:
        check_nonnegative("time", self.time)
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        check_fraction("rate", self.rate)
        check_nonnegative("std", self.std)
        check_fraction("spike_prob", self.spike_prob)
        check_nonnegative("spike_scale", self.spike_scale)
        if self.recover_after is not None and self.recover_after <= 0:
            raise ValueError(
                f"recover_after must be > 0, got {self.recover_after}"
            )
        check_nonnegative("notice", self.notice)
        check_nonnegative("stall", self.stall)

    @property
    def end(self) -> float:
        """End of a windowed fault (``time + duration``)."""
        return self.time + self.duration

    def matches_node(self, node_id: str) -> bool:
        """Whether the spec targets ``node_id``."""
        return self.node == "*" or self.node == node_id

    def matches_session(self, session_id: str) -> bool:
        """Whether the spec targets ``session_id`` (prefix match)."""
        return self.session == "*" or session_id.startswith(self.session)

    def matches_game(self, game: str) -> bool:
        """Whether the spec targets ``game``."""
        return self.game == "*" or self.game == game

    def matches_backend(self, backend: str) -> bool:
        """Whether the spec targets ``backend``."""
        return self.backend == "*" or self.backend == backend

    def to_dict(self) -> Dict:
        """JSON-serializable form (defaults elided — byte-stable)."""
        out: Dict = {"kind": self.kind.value, "time": self.time}
        defaults = FaultSpec(kind=self.kind, time=self.time)
        for name in self.OPTIONAL_FIELDS:
            value = getattr(self, name)
            if value != getattr(defaults, name):
                out[name] = value
        return out

    @staticmethod
    def from_dict(data: Dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`.

        Strict: an unknown key raises :class:`ValueError` naming it
        (and a bad ``kind`` raises with the known kinds), so a typo'd
        plan fails at parse time, not deep inside a run.
        """
        payload = dict(data)
        if "kind" not in payload:
            raise ValueError(f"fault spec has no 'kind': {data!r}")
        if "time" not in payload:
            raise ValueError(f"fault spec has no 'time': {data!r}")
        raw_kind = payload.pop("kind")
        try:
            kind = FaultKind(raw_kind)
        except ValueError:
            known = ", ".join(k.value for k in FaultKind)
            raise ValueError(
                f"unknown fault kind {raw_kind!r}; known kinds: {known}"
            ) from None
        time = float(payload.pop("time"))
        unknown = sorted(set(payload) - set(FaultSpec.OPTIONAL_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown fault field(s) {unknown} for kind "
                f"{kind.value!r}; known fields: "
                f"{', '.join(FaultSpec.OPTIONAL_FIELDS)}"
            )
        return FaultSpec(kind=kind, time=time, **payload)


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of faults.

    Parameters
    ----------
    seed:
        Root of every stochastic fault's random stream (dropout, noise
        spikes).  Two runs with the same plan and seed perturb
        byte-identical samples.
    faults:
        The scheduled faults; kept in insertion order, replayed in
        ``(time, kind)`` order.
    """

    seed: int = 0
    faults: List[FaultSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Fluent builders
    # ------------------------------------------------------------------
    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append one pre-built :class:`FaultSpec`."""
        self.faults.append(spec)
        return self

    def node_crash(
        self,
        time: float,
        node: str,
        *,
        recover_after: Optional[float] = None,
        requeue: bool = True,
    ) -> "FaultPlan":
        """Node dies: capacity is gone, hosted sessions are killed.

        Displaced requests re-enter the cluster retry queue unless
        ``requeue=False``.  ``recover_after`` schedules the node's
        return to ``up`` that many seconds later.
        """
        return self.add(FaultSpec(
            FaultKind.NODE_CRASH, time, node=node,
            recover_after=recover_after, requeue=requeue,
        ))

    def node_recover(self, time: float, node: str) -> "FaultPlan":
        """Bring a crashed/draining node back to ``up``."""
        return self.add(FaultSpec(FaultKind.NODE_RECOVER, time, node=node))

    def node_drain(self, time: float, node: str) -> "FaultPlan":
        """Set a node ``draining``: keeps its sessions, admits nothing."""
        return self.add(FaultSpec(FaultKind.NODE_DRAIN, time, node=node))

    def session_kill(
        self,
        time: float,
        *,
        node: str = "*",
        session: str = "*",
        requeue: bool = True,
    ) -> "FaultPlan":
        """Kill one running session (deterministically the first match).

        ``requeue=True`` models a crash (the player relaunches);
        ``requeue=False`` an abandon (the player walks away).
        """
        return self.add(FaultSpec(
            FaultKind.SESSION_KILL, time, node=node, session=session,
            requeue=requeue,
        ))

    def telemetry_dropout(
        self,
        time: float,
        *,
        duration: float = math.inf,
        rate: float = 1.0,
        node: str = "*",
        session: str = "*",
    ) -> "FaultPlan":
        """Drop each matching telemetry sample with probability ``rate``."""
        return self.add(FaultSpec(
            FaultKind.TELEMETRY_DROPOUT, time, node=node, session=session,
            duration=duration, rate=rate,
        ))

    def telemetry_noise(
        self,
        time: float,
        *,
        duration: float = math.inf,
        std: float = 3.0,
        spike_prob: float = 0.0,
        spike_scale: float = 25.0,
        node: str = "*",
        session: str = "*",
    ) -> "FaultPlan":
        """Add Gaussian noise (and optional spikes) to observed samples."""
        return self.add(FaultSpec(
            FaultKind.TELEMETRY_NOISE, time, node=node, session=session,
            duration=duration, std=std, spike_prob=spike_prob,
            spike_scale=spike_scale,
        ))

    def predictor_failure(
        self,
        time: float,
        *,
        node: str = "*",
        game: str = "*",
        backend: str = "*",
        recover_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Break matching predictor backends (``predict_next`` raises)."""
        return self.add(FaultSpec(
            FaultKind.PREDICTOR_FAIL, time, node=node, game=game,
            backend=backend, recover_after=recover_after,
        ))

    def predictor_recover(
        self,
        time: float,
        *,
        node: str = "*",
        game: str = "*",
        backend: str = "*",
    ) -> "FaultPlan":
        """Heal matching predictor backends."""
        return self.add(FaultSpec(
            FaultKind.PREDICTOR_RECOVER, time, node=node, game=game,
            backend=backend,
        ))

    def provision_fail(
        self, time: float, *, duration: float = 60.0
    ) -> "FaultPlan":
        """Provision attempts completing in the window fail (then retry
        with capped exponential backoff, up to the provisioner's
        ``max_retries``)."""
        return self.add(FaultSpec(
            FaultKind.PROVISION_FAIL, time, duration=duration,
        ))

    def provision_stall(
        self, time: float, *, duration: float = 60.0, stall: float = 30.0
    ) -> "FaultPlan":
        """Provision attempts completing in the window hang ``stall``
        extra seconds (the per-request timeout still applies)."""
        return self.add(FaultSpec(
            FaultKind.PROVISION_STALL, time, duration=duration, stall=stall,
        ))

    def spot_reclaim(
        self,
        time: float,
        node: str,
        *,
        notice: float = 120.0,
        requeue: bool = True,
    ) -> "FaultPlan":
        """Spot-reclaim a node: ``notice`` seconds out of dispatch with
        sessions running, then capacity loss with graceful drain —
        survivors requeue (``requeue=True``) or dead-letter with the
        explicit ``"reclaim"`` reason.  Never a silent loss."""
        return self.add(FaultSpec(
            FaultKind.SPOT_RECLAIM, time, node=node, notice=notice,
            requeue=requeue,
        ))

    def warm_pool_exhaust(
        self, time: float, *, duration: float = 120.0
    ) -> "FaultPlan":
        """The platform withdraws every ready standby and refuses warm
        refills for ``duration`` seconds (a capacity crunch)."""
        return self.add(FaultSpec(
            FaultKind.WARM_POOL_EXHAUST, time, duration=duration,
        ))

    # ------------------------------------------------------------------
    def scheduled(self) -> Tuple[FaultSpec, ...]:
        """The faults in deterministic replay order (time, then kind)."""
        return tuple(sorted(
            self.faults, key=lambda f: (f.time, f.kind.value)
        ))

    def stream_seed(self, index: int, spec: FaultSpec) -> int:
        """Derived seed for the ``index``-th fault's random stream."""
        return derive_seed(self.seed, "fault", str(index), spec.kind.value)

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy with every fault time shifted by ``offset`` seconds."""
        return FaultPlan(
            seed=self.seed,
            faults=[replace(f, time=f.time + offset) for f in self.faults],
        )

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form of the whole plan."""
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @staticmethod
    def from_dict(data: Dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return FaultPlan(
            seed=int(data.get("seed", 0)),
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", [])],
        )


def validate_plan_payload(data: object) -> List[str]:
    """Check a decoded fault-plan payload without running anything.

    Returns every problem found (empty = valid), each prefixed with its
    location (``faults[3]: …``), so ``cocg chaos --validate`` can report
    a typo'd plan in one pass instead of failing deep inside a run on
    the first bad entry.
    """
    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"plan must be a JSON object, got {type(data).__name__}"]
    unknown_top = sorted(set(data) - {"seed", "faults"})
    if unknown_top:
        errors.append(
            f"unknown top-level key(s) {unknown_top}; expected 'seed', 'faults'"
        )
    seed = data.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        errors.append(f"seed must be an integer, got {seed!r}")
    faults = data.get("faults", [])
    if not isinstance(faults, list):
        return errors + [
            f"faults must be a list, got {type(faults).__name__}"
        ]
    for i, entry in enumerate(faults):
        if not isinstance(entry, dict):
            errors.append(
                f"faults[{i}]: must be an object, got {type(entry).__name__}"
            )
            continue
        try:
            FaultSpec.from_dict(entry)
        except (ValueError, TypeError) as exc:
            errors.append(f"faults[{i}]: {exc}")
    return errors
