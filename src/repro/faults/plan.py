"""Declarative, deterministic fault plans.

A :class:`FaultPlan` is a seed-carrying schedule of faults — node
crashes and recoveries, single-session kills, telemetry dropout and
noise, predictor-backend failures — that a
:class:`~repro.faults.injector.FaultInjector` turns into
:class:`~repro.sim.engine.SimulationEngine` events.  The plan itself is
pure data: no wall clock, no hidden randomness.  Every stochastic fault
(e.g. a 1 % telemetry dropout) draws from a generator derived with
:func:`repro.util.rng.derive_seed` from the plan seed and the fault's
index, so the same ``(seed, plan)`` pair always perturbs the very same
samples — the property the chaos CI job asserts byte-for-byte.

The builder methods (:meth:`FaultPlan.node_crash`,
:meth:`FaultPlan.telemetry_dropout`, …) return ``self`` so plans read as
a fluent schedule::

    plan = (
        FaultPlan(seed=7)
        .node_crash(120.0, "node-1", recover_after=180.0)
        .telemetry_dropout(0.0, duration=600.0, rate=0.01)
        .predictor_failure(200.0, game="contra", recover_after=150.0)
    )
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.util.rng import derive_seed
from repro.util.validation import check_fraction, check_nonnegative

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(Enum):
    """The fault taxonomy (see ``docs/FAULTS.md``)."""

    NODE_CRASH = "node-crash"
    NODE_RECOVER = "node-recover"
    NODE_DRAIN = "node-drain"
    SESSION_KILL = "session-kill"
    TELEMETRY_DROPOUT = "telemetry-dropout"
    TELEMETRY_NOISE = "telemetry-noise"
    PREDICTOR_FAIL = "predictor-fail"
    PREDICTOR_RECOVER = "predictor-recover"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Targeting fields default to ``"*"`` (match everything).  ``node``,
    ``game`` and ``backend`` match exactly; ``session`` matches by
    prefix, which pairs naturally with the ``<game>-r<id>@<node>``
    session-id convention.

    Parameters
    ----------
    kind:
        What goes wrong.
    time:
        Simulation time (seconds) at which the fault fires.
    node / session / game / backend:
        Targeting patterns (see above).
    duration:
        Length of windowed faults (dropout/noise); ``inf`` = open-ended.
    rate:
        Per-sample dropout probability in [0, 1].
    std:
        Extra Gaussian noise std (percentage points) for noise faults.
    spike_prob / spike_scale:
        Per-sample probability and magnitude of a telemetry spike.
    recover_after:
        For crashes/predictor failures: schedule the matching recovery
        this many seconds later (``None`` = no auto-recovery).
    requeue:
        For kills/crashes: whether displaced requests re-enter the
        cluster queue (a crash) or vanish (a player abandon).
    """

    kind: FaultKind
    time: float
    node: str = "*"
    session: str = "*"
    game: str = "*"
    backend: str = "*"
    duration: float = math.inf
    rate: float = 1.0
    std: float = 0.0
    spike_prob: float = 0.0
    spike_scale: float = 25.0
    recover_after: Optional[float] = None
    requeue: bool = True

    def __post_init__(self) -> None:
        check_nonnegative("time", self.time)
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        check_fraction("rate", self.rate)
        check_nonnegative("std", self.std)
        check_fraction("spike_prob", self.spike_prob)
        check_nonnegative("spike_scale", self.spike_scale)
        if self.recover_after is not None and self.recover_after <= 0:
            raise ValueError(
                f"recover_after must be > 0, got {self.recover_after}"
            )

    @property
    def end(self) -> float:
        """End of a windowed fault (``time + duration``)."""
        return self.time + self.duration

    def matches_node(self, node_id: str) -> bool:
        """Whether the spec targets ``node_id``."""
        return self.node == "*" or self.node == node_id

    def matches_session(self, session_id: str) -> bool:
        """Whether the spec targets ``session_id`` (prefix match)."""
        return self.session == "*" or session_id.startswith(self.session)

    def matches_game(self, game: str) -> bool:
        """Whether the spec targets ``game``."""
        return self.game == "*" or self.game == game

    def matches_backend(self, backend: str) -> bool:
        """Whether the spec targets ``backend``."""
        return self.backend == "*" or self.backend == backend

    def to_dict(self) -> Dict:
        """JSON-serializable form."""
        out: Dict = {"kind": self.kind.value, "time": self.time}
        defaults = FaultSpec(kind=self.kind, time=self.time)
        for name in (
            "node", "session", "game", "backend", "duration", "rate",
            "std", "spike_prob", "spike_scale", "recover_after", "requeue",
        ):
            value = getattr(self, name)
            if value != getattr(defaults, name):
                out[name] = value
        return out

    @staticmethod
    def from_dict(data: Dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        payload = dict(data)
        kind = FaultKind(payload.pop("kind"))
        time = float(payload.pop("time"))
        return FaultSpec(kind=kind, time=time, **payload)


@dataclass
class FaultPlan:
    """An ordered, seeded schedule of faults.

    Parameters
    ----------
    seed:
        Root of every stochastic fault's random stream (dropout, noise
        spikes).  Two runs with the same plan and seed perturb
        byte-identical samples.
    faults:
        The scheduled faults; kept in insertion order, replayed in
        ``(time, kind)`` order.
    """

    seed: int = 0
    faults: List[FaultSpec] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Fluent builders
    # ------------------------------------------------------------------
    def add(self, spec: FaultSpec) -> "FaultPlan":
        """Append one pre-built :class:`FaultSpec`."""
        self.faults.append(spec)
        return self

    def node_crash(
        self,
        time: float,
        node: str,
        *,
        recover_after: Optional[float] = None,
        requeue: bool = True,
    ) -> "FaultPlan":
        """Node dies: capacity is gone, hosted sessions are killed.

        Displaced requests re-enter the cluster retry queue unless
        ``requeue=False``.  ``recover_after`` schedules the node's
        return to ``up`` that many seconds later.
        """
        return self.add(FaultSpec(
            FaultKind.NODE_CRASH, time, node=node,
            recover_after=recover_after, requeue=requeue,
        ))

    def node_recover(self, time: float, node: str) -> "FaultPlan":
        """Bring a crashed/draining node back to ``up``."""
        return self.add(FaultSpec(FaultKind.NODE_RECOVER, time, node=node))

    def node_drain(self, time: float, node: str) -> "FaultPlan":
        """Set a node ``draining``: keeps its sessions, admits nothing."""
        return self.add(FaultSpec(FaultKind.NODE_DRAIN, time, node=node))

    def session_kill(
        self,
        time: float,
        *,
        node: str = "*",
        session: str = "*",
        requeue: bool = True,
    ) -> "FaultPlan":
        """Kill one running session (deterministically the first match).

        ``requeue=True`` models a crash (the player relaunches);
        ``requeue=False`` an abandon (the player walks away).
        """
        return self.add(FaultSpec(
            FaultKind.SESSION_KILL, time, node=node, session=session,
            requeue=requeue,
        ))

    def telemetry_dropout(
        self,
        time: float,
        *,
        duration: float = math.inf,
        rate: float = 1.0,
        node: str = "*",
        session: str = "*",
    ) -> "FaultPlan":
        """Drop each matching telemetry sample with probability ``rate``."""
        return self.add(FaultSpec(
            FaultKind.TELEMETRY_DROPOUT, time, node=node, session=session,
            duration=duration, rate=rate,
        ))

    def telemetry_noise(
        self,
        time: float,
        *,
        duration: float = math.inf,
        std: float = 3.0,
        spike_prob: float = 0.0,
        spike_scale: float = 25.0,
        node: str = "*",
        session: str = "*",
    ) -> "FaultPlan":
        """Add Gaussian noise (and optional spikes) to observed samples."""
        return self.add(FaultSpec(
            FaultKind.TELEMETRY_NOISE, time, node=node, session=session,
            duration=duration, std=std, spike_prob=spike_prob,
            spike_scale=spike_scale,
        ))

    def predictor_failure(
        self,
        time: float,
        *,
        node: str = "*",
        game: str = "*",
        backend: str = "*",
        recover_after: Optional[float] = None,
    ) -> "FaultPlan":
        """Break matching predictor backends (``predict_next`` raises)."""
        return self.add(FaultSpec(
            FaultKind.PREDICTOR_FAIL, time, node=node, game=game,
            backend=backend, recover_after=recover_after,
        ))

    def predictor_recover(
        self,
        time: float,
        *,
        node: str = "*",
        game: str = "*",
        backend: str = "*",
    ) -> "FaultPlan":
        """Heal matching predictor backends."""
        return self.add(FaultSpec(
            FaultKind.PREDICTOR_RECOVER, time, node=node, game=game,
            backend=backend,
        ))

    # ------------------------------------------------------------------
    def scheduled(self) -> Tuple[FaultSpec, ...]:
        """The faults in deterministic replay order (time, then kind)."""
        return tuple(sorted(
            self.faults, key=lambda f: (f.time, f.kind.value)
        ))

    def stream_seed(self, index: int, spec: FaultSpec) -> int:
        """Derived seed for the ``index``-th fault's random stream."""
        return derive_seed(self.seed, "fault", str(index), spec.kind.value)

    def shifted(self, offset: float) -> "FaultPlan":
        """A copy with every fault time shifted by ``offset`` seconds."""
        return FaultPlan(
            seed=self.seed,
            faults=[replace(f, time=f.time + offset) for f in self.faults],
        )

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form of the whole plan."""
        return {"seed": self.seed, "faults": [f.to_dict() for f in self.faults]}

    @staticmethod
    def from_dict(data: Dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return FaultPlan(
            seed=int(data.get("seed", 0)),
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", [])],
        )
