"""Fault injection and graceful degradation (see ``docs/FAULTS.md``).

The package splits into leaves and heavy modules:

* :mod:`repro.faults.plan` is a leaf, and :mod:`repro.faults.health`
  re-exports the breaker that now lives in :mod:`repro.core.health`
  (the scheduler owns it; CG017 keeps the layering acyclic);
* :mod:`repro.faults.injector` / :mod:`repro.faults.chaos` import the
  cluster layer, which imports the scheduler — so they are exposed
  lazily here to keep the import graph acyclic.
"""

from __future__ import annotations

from repro.faults.health import BreakerState, PredictorHealth
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, validate_plan_payload

__all__ = [  # lint: disable=CG004
    "BreakerState",
    "PredictorHealth",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "validate_plan_payload",
    "FAULT_PRIORITY",
    "FaultInjector",
    "ChaosReport",
    "default_plan",
    "reclaim_storm_plan",
    "run_chaos",
]

_LAZY = {
    "FAULT_PRIORITY": "repro.faults.injector",
    "FaultInjector": "repro.faults.injector",
    "ChaosReport": "repro.faults.chaos",
    "default_plan": "repro.faults.chaos",
    "reclaim_storm_plan": "repro.faults.chaos",
    "run_chaos": "repro.faults.chaos",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(__all__)
