"""Compatibility shim: the breaker moved to :mod:`repro.core.health`.

The scheduler (``core``, layer 4) owns the breaker it consults every
tick; keeping the class in ``faults`` (layer 6) was a layering back-edge
(CG017).  Import from :mod:`repro.core.health` — or keep importing from
here; ``faults`` sits above ``core``, so the re-export is DAG-legal.
"""

from __future__ import annotations

from repro.core.health import BreakerState, PredictorHealth

__all__ = ["BreakerState", "PredictorHealth"]
