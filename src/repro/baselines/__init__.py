"""Scheduling strategies: CoCG and the paper's comparison points.

All strategies implement :class:`~repro.baselines.base.SchedulingStrategy`
so the experiment driver can swap them:

* :class:`~repro.baselines.cocg.CoCGStrategy` — the paper's system
  (§IV): fine-grained stage prediction + complementary scheduling.
* :class:`~repro.baselines.reactive.ReactiveStrategy` — the paper's
  "improved version": stage-aware but reactive, no prediction; ceilings
  follow observed usage with a margin.
* :class:`~repro.baselines.gaugur.GAugurStrategy` — GAugur-like
  profiling baseline (HPDC'19): offline pairwise co-location test plus a
  *fixed* per-game limit for the whole run.
* :class:`~repro.baselines.vbp.VBPStrategy` — vector bin packing: a game
  "can run normally at 90 % of its maximum consumption"; placed only
  when the remaining resources exceed its peak.
* :class:`~repro.baselines.maxstatic.MaxStaticStrategy` — the modest
  baseline: every game reserved at its whole-run maximum.
"""

from repro.baselines.base import SchedulingStrategy
from repro.baselines.cocg import CoCGStrategy
from repro.baselines.gaugur import GAugurStrategy
from repro.baselines.maxstatic import MaxStaticStrategy
from repro.baselines.reactive import ReactiveStrategy
from repro.baselines.vbp import VBPStrategy

__all__ = [
    "SchedulingStrategy",
    "CoCGStrategy",
    "ReactiveStrategy",
    "GAugurStrategy",
    "VBPStrategy",
    "MaxStaticStrategy",
]
