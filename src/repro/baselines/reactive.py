"""The paper's "improved version": stage-aware but purely reactive.

"The second scheme perceives that each game has different resource
consumption stages at runtime but does not predict the next stage at the
time of scheduling, and only redeploys the resource usage based on the
current operation" (§V-A).

Every detection tick, the ceiling follows the last observed usage window
with a multiplicative margin.  The scheme saves resources during quiet
stages, but every stage *transition* starves the game for up to one
detection interval (demand jumps before the ceiling follows), and
admission can only reason about the present.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.baselines.base import SchedulingStrategy
from repro.core.allocation import AllocationPlanner
from repro.games.session import GameSession
from repro.platform_.allocator import AllocationError
from repro.platform_.resources import ResourceVector
from repro.sim.telemetry import TelemetryRecorder
from repro.util.validation import check_nonnegative

__all__ = ["ReactiveStrategy"]


class ReactiveStrategy(SchedulingStrategy):
    """Usage-following ceilings, no prediction.

    Parameters
    ----------
    margin:
        Multiplicative headroom over observed usage (default 0.15).
    floor:
        Minimum ceiling in percent per dimension, so a fully idle window
        cannot strangle the session.
    """

    name = "reactive"

    def __init__(self, *, margin: float = 0.15, floor: float = 8.0):
        super().__init__()
        check_nonnegative("margin", margin)
        check_nonnegative("floor", floor)
        self.margin = float(margin)
        self.floor = float(floor)
        self._hosted: Dict[str, GameSession] = {}

    # ------------------------------------------------------------------
    def try_admit(self, session: GameSession, *, time: float) -> bool:
        """Myopic admission: the entry footprint must fit *right now*."""
        allocator = self._require_attached()
        profile = self.profile_of(session)
        planner = AllocationPlanner(profile.library, accuracy=1.0)
        entry = planner.for_loading()
        # Admission looks only at the present: current reservations plus
        # the newcomer's entry footprint must fit.
        gpu_index = allocator.gpu_order()[0]
        if not allocator.can_place(entry, gpu_index):
            self.rejections += 1
            return False
        try:
            allocator.place(session.session_id, entry, gpu_index=gpu_index, time=time)
        except AllocationError:
            self.rejections += 1
            return False
        self._hosted[session.session_id] = session
        self.admissions += 1
        return True

    def release(self, session_id: str, *, time: float) -> None:
        """Release a finished session."""
        self._hosted.pop(session_id, None)
        self._require_attached().release(session_id, time=time)

    def control(self, time: float, telemetry: TelemetryRecorder) -> None:
        """Follow each session's observed usage with a margin."""
        allocator = self._require_attached()
        for sid in list(self._hosted):
            window = telemetry.observed_window(sid, self.detect_interval)
            if window is None:
                continue
            target = np.maximum(window * (1.0 + self.margin), self.floor)
            allocator.retune_clamped(
                sid, ResourceVector.from_array(np.clip(target, 0, 100)), time=time
            )
