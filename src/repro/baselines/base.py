"""The strategy interface the experiment driver schedules through.

A strategy owns admission (may this game join the server?), allocation
(what ceiling does each hosted session get right now?), and the periodic
control reaction to telemetry.  It mutates the server exclusively through
the :class:`~repro.platform_.allocator.Allocator` it is attached to, so
capacity conservation is enforced uniformly across strategies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

from repro.core.pipeline import GameProfile
from repro.games.session import GameSession
from repro.platform_.allocator import Allocator
from repro.platform_.resources import ResourceVector
from repro.sim.telemetry import TelemetryRecorder

__all__ = ["SchedulingStrategy"]


class SchedulingStrategy(ABC):
    """Base class for scheduling strategies.

    Lifecycle: :meth:`attach` once, then per simulated run —
    :meth:`try_admit` when a request is pending, :meth:`control` every
    detection interval, :meth:`release` on completion.
    """

    #: Human-readable strategy name (used in benchmark tables).
    name: str = "strategy"

    def __init__(self) -> None:
        self.allocator: Optional[Allocator] = None
        self.profiles: Dict[str, GameProfile] = {}
        self.admissions = 0
        self.rejections = 0

    # ------------------------------------------------------------------
    def attach(self, allocator: Allocator, profiles: Dict[str, GameProfile]) -> None:
        """Bind to a server and the offline game profiles."""
        self.allocator = allocator
        self.profiles = dict(profiles)

    def _require_attached(self) -> Allocator:
        if self.allocator is None:
            raise RuntimeError(f"{type(self).__name__} is not attached to a server")
        return self.allocator

    def profile_of(self, session: GameSession) -> GameProfile:
        """The offline profile of a session's game."""
        try:
            return self.profiles[session.spec.name]
        except KeyError:
            raise KeyError(
                f"no profile for game {session.spec.name!r}; "
                f"have {sorted(self.profiles)}"
            ) from None

    # ------------------------------------------------------------------
    @abstractmethod
    def try_admit(self, session: GameSession, *, time: float) -> bool:
        """Admission test; on success the session must be placed."""

    @abstractmethod
    def release(self, session_id: str, *, time: float) -> None:
        """Free a finished session's reservation."""

    def control(self, time: float, telemetry: TelemetryRecorder) -> None:
        """Periodic reaction to telemetry (static strategies do nothing)."""

    def allocation_of(self, session_id: str) -> ResourceVector:
        """Current ceiling of a hosted session."""
        return self._require_attached().allocation_of(session_id)

    def degraded_sessions(self) -> Sequence[str]:
        """Sessions running in degraded (fault-fallback) mode.

        Static strategies have no degraded mode; CoCG reports sessions
        whose predictor circuit breaker is open.
        """
        return ()

    def order_requests(self, pending: list) -> list:
        """Order pending requests before admission attempts.

        The default is the driver's fair rotation; CoCG overrides this
        with the regulator's §IV-C2 length-aware policy (prefer short
        games when headroom is tight).
        """
        return pending

    @property
    def detect_interval(self) -> int:
        """Seconds between :meth:`control` invocations."""
        return 5
