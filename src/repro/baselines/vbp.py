"""Vector bin packing (paper §V-B2).

"VBP assumes that the game can run normally at 90 % of its maximum
resource consumption.  At the same time, an application can be assigned
to a server only when the server's remaining resources are higher than
the peak of the application."  The reservation is therefore fixed at
0.9 × peak, and admission tests the *full* peak against the remaining
(uncapped) hardware resources — the classic conservative vector packing
rule.
"""

from __future__ import annotations

from repro.baselines.base import SchedulingStrategy
from repro.core.allocation import AllocationPlanner
from repro.games.session import GameSession
from repro.platform_.allocator import AllocationError
from repro.util.validation import check_fraction

__all__ = ["VBPStrategy"]


class VBPStrategy(SchedulingStrategy):
    """Fixed 0.9×peak reservation with peak-fit admission.

    Parameters
    ----------
    run_fraction:
        The "can run normally at" fraction (paper: 0.9).
    """

    name = "vbp"

    def __init__(self, *, run_fraction: float = 0.9):
        super().__init__()
        check_fraction("run_fraction", run_fraction, inclusive=False)
        self.run_fraction = float(run_fraction)

    def try_admit(self, session: GameSession, *, time: float) -> bool:
        """Admit iff the full peak fits the remaining hardware; reserve
        0.9×peak."""
        allocator = self._require_attached()
        profile = self.profile_of(session)
        planner = AllocationPlanner(profile.library, accuracy=1.0)
        peak = planner.peak_plan()
        # Admission: the full peak must fit in the remaining hardware.
        gpu_index = allocator.gpu_order()[0]
        if not peak.fits_within(allocator.server.available(gpu_index)):
            self.rejections += 1
            return False
        try:
            allocator.place(
                session.session_id, peak * self.run_fraction, time=time
            )
        except AllocationError:
            self.rejections += 1
            return False
        self.admissions += 1
        return True

    def release(self, session_id: str, *, time: float) -> None:
        """Free the fixed reservation."""
        self._require_attached().release(session_id, time=time)
