"""The modest baseline: whole-run maximum reservation.

"The modest way is to default that each cloud game consumes the same
resources from the start of the operation to the end of the application
and allocate them based on this" (§V-A).  Every game is reserved at its
profiled peak for its entire run; admission succeeds only when that peak
fits in what is left.
"""

from __future__ import annotations

from repro.baselines.base import SchedulingStrategy
from repro.core.allocation import AllocationPlanner
from repro.games.session import GameSession
from repro.platform_.allocator import AllocationError

__all__ = ["MaxStaticStrategy"]


class MaxStaticStrategy(SchedulingStrategy):
    """Reserve the whole-game peak, never retune."""

    name = "max-static"

    def try_admit(self, session: GameSession, *, time: float) -> bool:
        """Admit iff the whole-game peak fits under the cap."""
        allocator = self._require_attached()
        profile = self.profile_of(session)
        planner = AllocationPlanner(profile.library, accuracy=1.0)
        peak = planner.peak_plan()
        try:
            allocator.place(session.session_id, peak, time=time)
        except AllocationError:
            self.rejections += 1
            return False
        self.admissions += 1
        return True

    def release(self, session_id: str, *, time: float) -> None:
        """Free the peak reservation."""
        self._require_attached().release(session_id, time=time)
