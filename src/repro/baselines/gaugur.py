"""GAugur-like baseline (Li et al., HPDC'19; paper §V-B2).

GAugur profiles games offline, predicts whether two games can be
co-located, and "assigns a fixed resource limit to each game through
machine learning algorithms".  Our reproduction keeps both behaviours:

* the **fixed limit** interpolates between the game's mean and peak
  demand (``mean + α·(peak − mean)``) — the per-game budget its model
  deems sufficient *on average*;
* the **co-location test** admits a game only when the fixed limits of
  every hosted game sum within the budget.

Because the limit never adapts to the current stage, peak stages run
starved (the Fig-13 effect: ≈ 43 % of best FPS) while quiet stages waste
their reservation — precisely the game-grained inefficiency CoCG
removes.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import SchedulingStrategy
from repro.core.pipeline import GameProfile
from repro.games.session import GameSession
from repro.platform_.allocator import AllocationError
from repro.platform_.resources import ResourceVector
from repro.util.validation import check_fraction

__all__ = ["GAugurStrategy"]


class GAugurStrategy(SchedulingStrategy):
    """Fixed ML-profiled limits with pairwise co-location prediction.

    Parameters
    ----------
    alpha:
        Position of the fixed limit between mean (0) and peak (1)
        demand.  0.5 matches GAugur's reported average-sufficiency
        operating point.
    max_share:
        Optional clamp of the fixed limit to this fraction of the
        budget.  This is GAugur's *overcommitted* operating mode — when
        the operator forces co-location (the paper's Fig-13 protocol
        "covered all 4 games as much as possible"), GAugur divides the
        budget into fixed shares; peak stages then run starved, which is
        exactly the ≈43 %-of-best FPS the paper measures.
    """

    name = "gaugur"

    def __init__(self, *, alpha: float = 0.5, max_share: float | None = None):
        super().__init__()
        check_fraction("alpha", alpha)
        if max_share is not None:
            check_fraction("max_share", max_share, inclusive=False)
        self.alpha = float(alpha)
        self.max_share = max_share

    # ------------------------------------------------------------------
    def fixed_limit(self, profile: GameProfile) -> ResourceVector:
        """The per-game budget GAugur's model assigns for the whole run."""
        lib = profile.library
        types = lib.execution_types or lib.stage_types
        weights = np.array([lib.stats(t).total_frames for t in types], dtype=float)
        means = np.stack([lib.stats(t).mean for t in types])
        weights = weights / max(weights.sum(), 1e-9)
        mean = (weights[:, None] * means).sum(axis=0)
        peak = lib.max_peak().array
        limit = mean + self.alpha * (peak - mean)
        if self.max_share is not None and self.allocator is not None:
            budget = self.allocator.capped_capacity(0).array
            limit = np.minimum(limit, self.max_share * budget)
        return ResourceVector.from_array(limit).clip(0.0, 100.0)

    def try_admit(self, session: GameSession, *, time: float) -> bool:
        """Admit iff the fixed limits of every hosted game still fit."""
        allocator = self._require_attached()
        profile = self.profile_of(session)
        limit = self.fixed_limit(profile)
        try:
            allocator.place(session.session_id, limit, time=time)
        except AllocationError:
            self.rejections += 1
            return False
        self.admissions += 1
        return True

    def release(self, session_id: str, *, time: float) -> None:
        """Free the fixed limit."""
        self._require_attached().release(session_id, time=time)
