"""CoCG as a pluggable strategy (thin adapter over the core scheduler)."""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.baselines.base import SchedulingStrategy
from repro.core.pipeline import GameProfile
from repro.core.scheduler import CoCGConfig, CoCGScheduler
from repro.games.session import GameSession
from repro.platform_.resources import ResourceVector
from repro.platform_.allocator import Allocator
from repro.sim.telemetry import TelemetryRecorder

__all__ = ["CoCGStrategy"]


class CoCGStrategy(SchedulingStrategy):
    """The paper's system behind the common strategy interface.

    Parameters
    ----------
    config:
        Scheduler configuration (defaults = the paper's settings).
    """

    name = "cocg"

    def __init__(self, *, config: Optional[CoCGConfig] = None):
        super().__init__()
        self.config = config
        self.scheduler: Optional[CoCGScheduler] = None

    def attach(self, allocator: Allocator, profiles: Dict[str, GameProfile]) -> None:
        """Bind to a server and build the underlying CoCG scheduler."""
        super().attach(allocator, profiles)
        self.scheduler = CoCGScheduler(allocator, config=self.config)

    def _require_scheduler(self) -> CoCGScheduler:
        if self.scheduler is None:
            raise RuntimeError("CoCGStrategy is not attached")
        return self.scheduler

    # ------------------------------------------------------------------
    def try_admit(self, session: GameSession, *, time: float) -> bool:
        """Algorithm-1 admission through the core scheduler."""
        scheduler = self._require_scheduler()
        decision = scheduler.try_admit(
            session, self.profile_of(session), time=time
        )
        if decision.admitted:
            self.admissions += 1
        else:
            self.rejections += 1
        return decision.admitted

    def release(self, session_id: str, *, time: float) -> None:
        """Release a finished session."""
        self._require_scheduler().release(session_id, time=time)

    def control(self, time: float, telemetry: TelemetryRecorder) -> None:
        """Run the 5-second CoCG control cycle."""
        self._require_scheduler().control(time, telemetry)

    def degraded_sessions(self) -> Sequence[str]:
        """Sessions whose predictor circuit breaker is open."""
        return self._require_scheduler().degraded_sessions()

    def order_requests(self, pending: list) -> list:
        """§IV-C2 "distinguish game length": prefer a short game when the
        server is near a long game's peak window, a long game otherwise."""
        scheduler = self._require_scheduler()
        current = ResourceVector.zeros()
        for placement in scheduler.allocator.server.placements.values():
            current = current + placement.allocation
        ordered = list(pending)
        idx = scheduler.regulator.pick_request(
            ordered, current, long_term_of=lambda r: r.long_term
        )
        if idx is None or idx == 0:
            return ordered
        return [ordered[idx]] + ordered[:idx] + ordered[idx + 1 :]

    @property
    def detect_interval(self) -> int:
        """The configured detection period."""
        cfg = self.config if self.config is not None else CoCGConfig()
        return cfg.detect_interval
