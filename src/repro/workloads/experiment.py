"""The co-location experiment driver (paper §V-B).

Runs one scheduling strategy over one server for a fixed horizon:

* every second, each hosted session advances one tick under its current
  ceiling; telemetry and FPS are recorded;
* every detection interval, the strategy's control loop runs and pending
  requests are offered for admission;
* completed runs are counted toward Eq-2 throughput.

The driver is strategy-agnostic — CoCG and every baseline run under
identical conditions (same request stream seed, same player randomness,
same telemetry noise).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.baselines.base import SchedulingStrategy
from repro.core.pipeline import GameProfile
from repro.games.session import GameSession
from repro.platform_.allocator import Allocator
from repro.platform_.interference import InterferenceModel
from repro.platform_.qos import FpsModel, QoSTracker
from repro.platform_.server import GPUDevice, Server
from repro.sim.telemetry import TelemetryRecorder
from repro.util.rng import Seed, derive_seed
from repro.workloads.metrics import throughput_eq2
from repro.workloads.requests import ContinuousBacklog

__all__ = ["ExperimentResult", "ColocationExperiment"]


@dataclass
class ExperimentResult:
    """Everything a bench needs from one experiment run.

    Attributes
    ----------
    strategy:
        Strategy name.
    horizon:
        Simulated seconds.
    completed_runs:
        ``N_i`` per game.
    throughput:
        Eq-2 value.
    fraction_of_best:
        Time-weighted mean FPS / best-possible FPS per game (Fig 13).
    violation_fraction:
        Fraction of played seconds below the QoS floor, per game.
    total_usage:
        ``(horizon, 4)`` summed true usage (Fig 9 trace).
    peak_total_usage:
        Per-dimension peak of the summed usage.
    admissions, rejections:
        Admission statistics.
    colocated_seconds:
        Seconds with ≥ 2 sessions hosted simultaneously.
    over_cap_seconds:
        Seconds where summed usage exceeded the cap on any dimension.
    """

    strategy: str
    horizon: int
    completed_runs: Dict[str, int]
    throughput: float
    fraction_of_best: Dict[str, float]
    violation_fraction: Dict[str, float]
    total_usage: np.ndarray
    peak_total_usage: np.ndarray
    admissions: int
    rejections: int
    colocated_seconds: int
    over_cap_seconds: int
    telemetry: TelemetryRecorder = field(repr=False, default=None)
    qos: QoSTracker = field(repr=False, default=None)


class ColocationExperiment:
    """One strategy × one server × one request stream.

    Parameters
    ----------
    profiles:
        Offline game profiles (shared across strategies for fairness).
    strategy:
        The scheduling strategy under test.
    horizon:
        Simulated seconds (paper: 2 hours = 7200).
    seed:
        Master seed: session randomness and telemetry noise derive from
        it, so two strategies at the same seed face identical workloads.
    server:
        Server model; default one GPU (the paper pins co-located pairs
        to a device) at 100 % capacity per dimension.
    utilization_cap:
        The allocator budget (paper: 95 %).
    max_concurrent:
        Concurrent runs allowed per game.
    fps_model:
        QoS model (default γ = 1.5, floor 30 FPS).
    interference:
        Optional shared-resource contention model; when given, each
        session's demand is inflated by its co-runners' pressure before
        FPS/telemetry accounting (GAugur-style interference substrate).
    """

    def __init__(
        self,
        profiles: Dict[str, GameProfile],
        strategy: SchedulingStrategy,
        *,
        horizon: int = 7200,
        seed: Seed = 0,
        server: Optional[Server] = None,
        utilization_cap: float = 0.95,
        max_concurrent: int = 1,
        fps_model: Optional[FpsModel] = None,
        interference: Optional[InterferenceModel] = None,
    ):
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.profiles = dict(profiles)
        self.strategy = strategy
        self.horizon = int(horizon)
        self._base_seed = seed if isinstance(seed, int) or seed is None else 0
        self.server = (
            server
            if server is not None
            else Server("server-0", gpus=[GPUDevice(name="gpu0")])
        )
        self.allocator = Allocator(self.server, utilization_cap=utilization_cap)
        self.telemetry = TelemetryRecorder(
            seed=derive_seed(self._base_seed, "telemetry")
        )
        self.qos = QoSTracker(fps_model)
        self.backlog = ContinuousBacklog(
            [p.spec for p in self.profiles.values()],
            seed=derive_seed(self._base_seed, "requests"),
            max_concurrent=max_concurrent,
        )
        self.interference = interference
        self._sessions: Dict[str, GameSession] = {}
        self._session_seeds = 0

    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Execute the experiment and aggregate the results."""
        strategy = self.strategy
        strategy.attach(self.allocator, self.profiles)
        interval = strategy.detect_interval
        cap = self.allocator.capped_capacity(0).array

        completed: Dict[str, int] = {name: 0 for name in self.profiles}
        total_usage = np.zeros((self.horizon, 4))
        colocated_seconds = 0
        over_cap_seconds = 0

        self._offer_requests(0.0)
        for t in range(self.horizon):
            # 1. Advance every hosted session one second.
            advanced = []
            for sid in list(self._sessions):
                session = self._sessions[sid]
                allocation = strategy.allocation_of(sid)
                tick = session.advance(allocation)
                advanced.append((sid, session, tick, allocation))
            # Shared-resource interference inflates each session's
            # effective demand by its co-runners' pressure.
            if self.interference is not None and len(advanced) > 1:
                usages = {
                    sid: tick.usage(alloc)
                    for sid, _s, tick, alloc in advanced
                }
                slowdowns = self.interference.slowdowns(usages)
            else:
                slowdowns = None
            for sid, session, tick, allocation in advanced:
                demand = tick.demand
                if slowdowns is not None:
                    demand = self.interference.inflate(demand, slowdowns[sid])
                self.telemetry.record(t, sid, demand, allocation)
                self.qos.record_second(
                    sid,
                    tick.nominal_fps,
                    demand,
                    allocation,
                    frame_lock=tick.frame_lock,
                )
                total_usage[t] += demand.minimum(allocation).array
                if tick.finished:
                    completed[session.spec.name] += 1
                    strategy.release(sid, time=t)
                    self.backlog.finished(session.spec.name)
                    del self._sessions[sid]
            if len(self._sessions) >= 2:
                colocated_seconds += 1
            if np.any(total_usage[t] > cap + 1e-6):
                over_cap_seconds += 1

            # 2. Control + admission every detection interval.
            if (t + 1) % interval == 0:
                strategy.control(t + 1, self.telemetry)
                self._offer_requests(float(t + 1))

        return self._aggregate(
            completed, total_usage, colocated_seconds, over_cap_seconds
        )

    # ------------------------------------------------------------------
    def _offer_requests(self, time: float) -> None:
        pending = self.backlog.pending(time)
        # Rotate the offer order so no game is systematically starved of
        # admission attempts when several compete for the same slot; the
        # strategy may then reorder (CoCG's length-aware §IV-C2 policy).
        self._offer_rotation = getattr(self, "_offer_rotation", 0) + 1
        k = self._offer_rotation % max(len(pending), 1)
        for request in self.strategy.order_requests(pending[k:] + pending[:k]):
            self._session_seeds += 1
            session = request.make_session(
                derive_seed(self._base_seed, "session", str(self._session_seeds))
            )
            if self.strategy.try_admit(session, time=time):
                self._sessions[session.session_id] = session
                self.backlog.started(request)

    def _aggregate(
        self,
        completed: Dict[str, int],
        total_usage: np.ndarray,
        colocated_seconds: int,
        over_cap_seconds: int,
    ) -> ExperimentResult:
        durations = {
            name: profile.spec.expected_duration()
            for name, profile in self.profiles.items()
        }
        fraction_of_best: Dict[str, float] = {}
        violation: Dict[str, float] = {}
        for name in self.profiles:
            fob_num = fob_den = 0.0
            vio_num = vio_den = 0
            for sid in self.qos.session_ids:
                if not sid.startswith(f"{name}-r"):
                    continue
                report = self.qos.report(sid)
                fob_num += report.fraction_of_best * report.seconds
                fob_den += report.seconds
                vio_num += report.violation_seconds
                vio_den += report.seconds
            fraction_of_best[name] = fob_num / fob_den if fob_den else float("nan")
            violation[name] = vio_num / vio_den if vio_den else float("nan")

        return ExperimentResult(
            strategy=self.strategy.name,
            horizon=self.horizon,
            completed_runs=completed,
            throughput=throughput_eq2(completed, durations),
            fraction_of_best=fraction_of_best,
            violation_fraction=violation,
            total_usage=total_usage,
            peak_total_usage=total_usage.max(axis=0),
            admissions=self.strategy.admissions,
            rejections=self.strategy.rejections,
            colocated_seconds=colocated_seconds,
            over_cap_seconds=over_cap_seconds,
            telemetry=self.telemetry,
            qos=self.qos,
        )
