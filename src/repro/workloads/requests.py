"""Game request streams.

The §V-B2 protocol: "During these two hours, the selected game will
continuously run requests until the distributor passes the request and
starts running" — i.e. each evaluated game always has one pending
request; a fresh one appears the moment the previous run completes.
:class:`ContinuousBacklog` models that; :class:`PoissonArrivals` provides
an open-loop alternative for the multi-game examples.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.games.player import PlayerModel
from repro.games.session import GameSession
from repro.games.spec import GameSpec
from repro.util.rng import Seed, as_rng, derive_seed

__all__ = ["GameRequest", "ContinuousBacklog", "PoissonArrivals"]


@dataclass
class GameRequest:
    """One pending launch request.

    The platform knows which game (and mode/script — the player clicked
    it) is requested; everything else about the playthrough is the
    player's.
    """

    spec: GameSpec
    script: Optional[str]
    player: PlayerModel
    arrival: float
    request_id: int

    def make_session(self, seed: Seed) -> GameSession:
        """Instantiate the session this request launches."""
        return GameSession(
            self.spec,
            self.script,
            player=self.player,
            seed=seed,
            session_id=f"{self.spec.name}-r{self.request_id}",
        )

    @property
    def long_term(self) -> bool:
        """The game's coarse length class (§IV-C2)."""
        return self.spec.long_term


class ContinuousBacklog:
    """One always-pending request per game, per concurrent slot.

    Parameters
    ----------
    specs:
        The games under test.
    seed:
        Randomness for script choice and players.
    max_concurrent:
        Concurrent runs allowed per game (paper pair experiments: 1).
    id_base:
        First request id this stream issues.  Streams that may be
        merged (one per regional shard) must be given disjoint bases —
        request ids seed sessions and name them, so two shards both
        issuing id 0 would collide in the merged digest.
    """

    def __init__(
        self,
        specs: Sequence[GameSpec],
        *,
        seed: Seed = 0,
        max_concurrent: int = 1,
        id_base: int = 0,
    ):
        if not specs:
            raise ValueError("specs must be non-empty")
        if max_concurrent < 1:
            raise ValueError(f"max_concurrent must be >= 1, got {max_concurrent}")
        if id_base < 0:
            raise ValueError(f"id_base must be >= 0, got {id_base}")
        self.specs = list(specs)
        self.max_concurrent = int(max_concurrent)
        self._base = seed if isinstance(seed, int) or seed is None else 0
        # Per-stream id counter: request ids are a pure function of this
        # stream's call history, never of process-global state, so two
        # identical runs in one process replay identical ids (and hence
        # identical session ids, seeds, and telemetry digests).
        self._next_id = itertools.count(int(id_base))
        self._running: Dict[str, int] = {s.name: 0 for s in self.specs}
        self._players: Dict[str, PlayerModel] = {
            s.name: PlayerModel(f"live-{s.name}", s.category, seed=0) for s in self.specs
        }
        self._counters: Dict[str, int] = {s.name: 0 for s in self.specs}

    # ------------------------------------------------------------------
    def pending(self, time: float) -> List[GameRequest]:
        """Requests eligible to start now (slots not exhausted)."""
        out: List[GameRequest] = []
        for spec in self.specs:
            free = self.max_concurrent - self._running[spec.name]
            for slot in range(free):
                n = self._counters[spec.name] + slot
                rng = as_rng(derive_seed(self._base, "req", spec.name, str(n)))
                script = spec.scripts[int(rng.integers(len(spec.scripts)))].name
                out.append(
                    GameRequest(
                        spec=spec,
                        script=script,
                        player=self._players[spec.name],
                        arrival=time,
                        request_id=next(self._next_id),
                    )
                )
        return out

    def started(self, request: GameRequest) -> None:
        """A request was admitted."""
        self._running[request.spec.name] += 1
        self._counters[request.spec.name] += 1

    def finished(self, spec_name: str) -> None:
        """A run of the game completed."""
        if self._running.get(spec_name, 0) <= 0:
            raise RuntimeError(f"no running session of {spec_name!r} to finish")
        self._running[spec_name] -= 1


class PoissonArrivals:
    """Open-loop Poisson request arrivals over a game mix.

    Parameters
    ----------
    specs:
        Games to draw from (uniformly).
    rate_per_minute:
        Expected arrivals per minute.
    seed:
        Stream seed.
    horizon:
        Total seconds to generate.
    id_base:
        First request id (and player-name suffix) of the stream.
        Regional shards generating their own load pass disjoint bases
        so merged streams keep globally unique ids.
    """

    def __init__(
        self,
        specs: Sequence[GameSpec],
        *,
        rate_per_minute: float = 1.0,
        seed: Seed = 0,
        horizon: float = 7200.0,
        id_base: int = 0,
    ):
        if not specs:
            raise ValueError("specs must be non-empty")
        if rate_per_minute <= 0:
            raise ValueError(f"rate_per_minute must be > 0, got {rate_per_minute}")
        if id_base < 0:
            raise ValueError(f"id_base must be >= 0, got {id_base}")
        rng = as_rng(seed)
        self.requests: List[GameRequest] = []
        t = 0.0
        i = int(id_base)
        while True:
            t += rng.exponential(60.0 / rate_per_minute)
            if t >= horizon:
                break
            spec = specs[int(rng.integers(len(specs)))]
            script = spec.scripts[int(rng.integers(len(spec.scripts)))].name
            player = PlayerModel(f"arr-{spec.name}-{i}", spec.category, seed=0)
            # Stream-local ids (id_base..id_base+n-1): identical
            # construction args give identical ids no matter what ran
            # earlier in the process.
            self.requests.append(GameRequest(spec, script, player, t, i))
            i += 1

    def due(self, t0: float, t1: float) -> List[GameRequest]:
        """Requests arriving in ``[t0, t1)``."""
        return [r for r in self.requests if t0 <= r.arrival < t1]
