"""Throughput and summary metrics (paper Eq 2)."""

from __future__ import annotations

from typing import Mapping

__all__ = ["throughput_eq2"]


def throughput_eq2(
    completed_runs: Mapping[str, int], durations: Mapping[str, float]
) -> float:
    """Eq 2: ``T = Σ_i N_i · S_i``.

    Parameters
    ----------
    completed_runs:
        ``N_i`` — completed runs per game over the experiment window.
    durations:
        ``S_i`` — the nominal duration of one run of each game, in
        seconds (the fixed per-game value of the paper).

    Returns
    -------
    float
        Useful game-seconds delivered.
    """
    total = 0.0
    for game, n in completed_runs.items():
        if n < 0:
            raise ValueError(f"negative run count for {game!r}")
        if game not in durations:
            raise KeyError(f"no duration for game {game!r}")
        total += n * float(durations[game])
    return total
