"""Experiment workloads and the co-location driver.

* :mod:`~repro.workloads.requests` — game request streams: the paper's
  continuous-backlog protocol ("the selected game will continuously run
  requests until the distributor passes") plus Poisson arrivals.
* :mod:`~repro.workloads.experiment` — the 2-hour co-location
  experiment driver that runs any strategy over a server and produces
  the throughput/QoS numbers of Figs 9–13.
* :mod:`~repro.workloads.metrics` — Eq-2 throughput and summary tables.
"""

from repro.workloads.requests import ContinuousBacklog, GameRequest, PoissonArrivals
from repro.workloads.experiment import ColocationExperiment, ExperimentResult
from repro.workloads.metrics import throughput_eq2

__all__ = [
    "GameRequest",
    "ContinuousBacklog",
    "PoissonArrivals",
    "ColocationExperiment",
    "ExperimentResult",
    "throughput_eq2",
]
