"""Consistent-hash ring over regional shards.

The ring is the routing substrate of :class:`~repro.fleet.SessionRouter`:
each region owns ``~replicas * weight`` virtual points on a 64-bit
circle, and a key lands on the region owning the first point clockwise
of the key's own point.  Points come from SHA-256, never from Python's
``hash()`` — the builtin is salted per process (``PYTHONHASHSEED``), so
a ring built on it would route the same player differently across
machines and replays.

Two properties the property tests in ``tests/test_fleet.py`` pin:

* **balance** — with equal weights, each of N regions receives ~1/N of
  a uniform key population (within a generous tolerance);
* **stability** — adding or removing one region moves only the keys
  adjacent to that region's points: at most ~K/N of K keys, never a
  global reshuffle.  Rings are immutable; :meth:`HashRing.with_region`
  and :meth:`HashRing.without_region` derive the neighbouring topology.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Mapping, Tuple

__all__ = ["HashRing", "ring_point"]

#: Virtual points per unit of weight (the classic consistent-hashing
#: replica count; higher = smoother balance, slower construction).
DEFAULT_REPLICAS = 64


def ring_point(data: str) -> int:
    """A stable 64-bit ring position for ``data``.

    First 8 bytes of SHA-256, big-endian — identical on every platform,
    Python version, and process (unlike ``hash()``).
    """
    digest = hashlib.sha256(data.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """An immutable weighted consistent-hash ring.

    Parameters
    ----------
    weights:
        Region name -> relative weight (> 0).  A weight of 2.0 gives a
        region twice the vnode count — and so roughly twice the keys —
        of a weight-1.0 region.
    replicas:
        Vnodes per unit weight.
    """

    def __init__(
        self,
        weights: Mapping[str, float],
        *,
        replicas: int = DEFAULT_REPLICAS,
    ):
        if not weights:
            raise ValueError("ring needs at least one region")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        for name in sorted(weights):
            if not name or not name.replace("-", "_").isidentifier():
                raise ValueError(
                    f"region name must be identifier-like (dashes ok), "
                    f"got {name!r}"
                )
            if not weights[name] > 0:
                raise ValueError(
                    f"region {name!r} weight must be > 0, "
                    f"got {weights[name]!r}"
                )
        self._weights = {name: float(weights[name])
                         for name in sorted(weights)}
        self._replicas = int(replicas)
        points: List[Tuple[int, str]] = []
        for name in sorted(self._weights):
            vnodes = max(1, round(self._replicas * self._weights[name]))
            for k in range(vnodes):
                points.append((ring_point(f"{name}#{k}"), name))
        # Ties (two vnodes at one point) are astronomically rare but the
        # ring must still be a function of its inputs alone: break them
        # by region name.
        points.sort()
        self._points = points
        self._keys = [p for p, _ in points]

    # ------------------------------------------------------------------
    @property
    def regions(self) -> Tuple[str, ...]:
        """Region names, sorted."""
        return tuple(self._weights)

    @property
    def weights(self) -> Mapping[str, float]:
        """Region -> weight (sorted, read-only copy)."""
        return dict(self._weights)

    def __len__(self) -> int:
        return len(self._weights)

    def route(self, key: str) -> str:
        """The region owning ``key`` (first vnode clockwise of it)."""
        h = ring_point(key)
        idx = bisect.bisect_right(self._keys, h) % len(self._keys)
        return self._points[idx][1]

    # ------------------------------------------------------------------
    def with_region(self, name: str, weight: float = 1.0) -> "HashRing":
        """A new ring with ``name`` joined (bounded key movement)."""
        if name in self._weights:
            raise ValueError(f"region {name!r} already on the ring")
        joined = dict(self._weights)
        joined[name] = float(weight)
        return HashRing(joined, replicas=self._replicas)

    def without_region(self, name: str) -> "HashRing":
        """A new ring with ``name`` left (its keys spread to survivors)."""
        if name not in self._weights:
            raise ValueError(f"region {name!r} not on the ring")
        if len(self._weights) == 1:
            raise ValueError("cannot remove the last region")
        rest = {n: w for n, w in self._weights.items() if n != name}
        return HashRing(rest, replicas=self._replicas)
