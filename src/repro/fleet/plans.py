"""Region-scoped fault plans.

Regional shards name their nodes ``<region>/node-<i>`` (see
:func:`~repro.trace.harness.build_cluster`), so a fault plan scoped to
one region is just a plan whose node targets carry that prefix.  The
one genuinely new failure mode a fleet-of-fleets adds over a single
fleet is *losing a whole region at once* — :func:`region_outage_plan`
builds that as simultaneous crashes of every node in the region, which
the chaos suite then expects the surviving regions to ride out
untouched (shard isolation: their digests must not change).
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan

__all__ = ["region_outage_plan", "region_node_id"]


def region_node_id(region: str, index: int) -> str:
    """The canonical node id of node ``index`` in ``region``."""
    return f"{region}/node-{index}"


def region_outage_plan(
    region: str,
    node_count: int,
    at: float,
    *,
    seed: int = 0,
    recover_after: Optional[float] = None,
    requeue: bool = True,
) -> FaultPlan:
    """A whole-region outage: every node crashes at ``at``.

    ``recover_after`` brings the region back that many seconds later
    (all nodes at once — a region failover, not a rolling restart);
    ``requeue=False`` drops displaced requests instead of re-queueing
    them on the region's own retry queue.
    """
    if not region:
        raise ValueError("region must be non-empty")
    if node_count < 1:
        raise ValueError(f"node_count must be >= 1, got {node_count}")
    plan = FaultPlan(seed=seed)
    for i in range(node_count):
        plan = plan.node_crash(
            at,
            region_node_id(region, i),
            recover_after=recover_after,
            requeue=requeue,
        )
    return plan
