"""Fleet-of-fleets: regional shards behind a consistent-hash router.

The top layer of the stack: a :class:`FleetOfFleets` owns N regional
shards — each a fully independent partition with its own event stream,
cluster, provisioner, and :func:`~repro.util.rng.region_seed`-spaced
randomness — fronted by a :class:`SessionRouter` that consistent-hashes
players onto regions over a :class:`HashRing`.  Regional streams
execute independently and meet only in the ``@shard_merge_point``
aggregator, which folds them into one canonical cross-shard digest; at
N=1 the whole construction reduces byte-for-byte to the classic single
:class:`~repro.cluster.experiment.FleetExperiment`.  Startup
certification (:func:`certify_runtime`) refuses to run a fleet whose
``shardplan.json`` certificate no longer matches the registered entry
points.  See ``docs/FLEET.md``.
"""

from repro.fleet.certify import (
    certify_runtime,
    load_certificate,
    runtime_entry_points,
)
from repro.fleet.controller import (
    FleetOfFleets,
    FleetOfFleetsResult,
    RegionOutcome,
    RegionShard,
    RegionSpec,
)
from repro.fleet.plans import region_node_id, region_outage_plan
from repro.fleet.ring import HashRing, ring_point
from repro.fleet.router import RoutedArrivals, SessionRouter

__all__ = [
    "HashRing",
    "ring_point",
    "SessionRouter",
    "RoutedArrivals",
    "RegionSpec",
    "RegionShard",
    "RegionOutcome",
    "FleetOfFleets",
    "FleetOfFleetsResult",
    "region_outage_plan",
    "region_node_id",
    "certify_runtime",
    "load_certificate",
    "runtime_entry_points",
]
