"""Session routing: one global arrival stream -> per-region streams.

The :class:`SessionRouter` fronts a fleet-of-fleets: every incoming
:class:`~repro.workloads.requests.GameRequest` is assigned to exactly
one regional shard by consistent-hashing its player id on a
:class:`~repro.fleet.ring.HashRing`.  Hashing the *player* (not the
request) keeps a player's sessions on one region — the cloud-gaming
locality property the paper's co-location profiles assume — while the
ring keeps assignment stable under region join/leave.

Routing is a pure function of (ring topology, player id): the split of
a stream is byte-reproducible, and with a single region it is the
identity — the whole stream, original order — which is what reduces an
N=1 fleet-of-fleets to the classic single fleet.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.fleet.ring import DEFAULT_REPLICAS, HashRing
from repro.workloads.requests import GameRequest

__all__ = ["SessionRouter", "RoutedArrivals"]


def _player_key(request: GameRequest) -> str:
    return request.player.player_id


class RoutedArrivals:
    """One region's slice of a routed arrival stream.

    Quacks like :class:`~repro.workloads.requests.PoissonArrivals`
    (``requests`` + ``due``) so it drops straight into
    :class:`~repro.cluster.experiment.FleetExperiment`'s ``arrivals=``
    handle.  Requests keep their global ids and arrival times; only
    membership changed.
    """

    def __init__(self, requests: Sequence[GameRequest]):
        self.requests: List[GameRequest] = list(requests)

    def __len__(self) -> int:
        return len(self.requests)

    def due(self, t0: float, t1: float) -> List[GameRequest]:
        """Requests arriving in ``[t0, t1)``."""
        return [r for r in self.requests if t0 <= r.arrival < t1]


class SessionRouter:
    """Consistent-hash request routing over named regions.

    Parameters
    ----------
    weights:
        Region name -> capacity weight (vnode share on the ring).
    replicas:
        Ring vnodes per unit weight.
    key:
        Routing key extractor; default is the request's player id.
    """

    def __init__(
        self,
        weights: Mapping[str, float],
        *,
        replicas: int = DEFAULT_REPLICAS,
        key: Optional[Callable[[GameRequest], str]] = None,
    ):
        self.ring = HashRing(weights, replicas=replicas)
        self._key = key if key is not None else _player_key

    @property
    def regions(self) -> tuple:
        """Region names, sorted."""
        return self.ring.regions

    def region_of(self, request: GameRequest) -> str:
        """The region one request routes to."""
        return self.ring.route(self._key(request))

    def split(
        self, requests: Sequence[GameRequest]
    ) -> Dict[str, RoutedArrivals]:
        """Partition a stream into per-region sub-streams.

        Every region appears in the result (possibly empty); each
        sub-stream preserves the source order, so per-region arrival
        sequences are deterministic given the ring.
        """
        buckets: Dict[str, List[GameRequest]] = {
            name: [] for name in self.ring.regions
        }
        for request in requests:
            buckets[self.region_of(request)].append(request)
        return {
            name: RoutedArrivals(buckets[name])
            for name in self.ring.regions
        }
