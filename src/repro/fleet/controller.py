"""The fleet-of-fleets controller: N regional shards, one result.

Topology (see ``docs/FLEET.md``)::

    arrivals ──> SessionRouter ──┬──> RegionShard "east"  ─┐
                 (consistent     ├──> RegionShard "west"  ─┼──> merge()
                  hash ring)     └──> RegionShard "south" ─┘      │
                                                                  v
                                                     FleetOfFleetsResult

Each :class:`RegionShard` is a *fully independent* partition: its own
:class:`~repro.sim.engine.SimulationEngine` event stream, its own
cluster (nodes prefixed ``<region>/``), its own provisioner and
gateway-free admission path, and RNG namespaced through
:func:`~repro.util.rng.region_seed` — nothing is shared but the trained
profiles (a pure function of the base config).  Shards therefore
execute in any order with identical results;
:func:`~repro.sim.engine.run_partitioned` runs them sequentially in
sorted-name order today and holds that seam.

Reduction guarantee: with a single region the controller builds the
*classic* fleet — unprefixed node ids, un-namespaced seed, the router's
split is the identity — so the merged digest equals the plain
:class:`~repro.cluster.experiment.FleetExperiment` digest byte for
byte.  With N regions the merged digest is the SHA-256 of the sorted
``<region>:<digest>`` lines, so it is independent of execution order
and any single region's digest change is visible at the top.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence

from repro.cluster.experiment import (
    FleetExperiment,
    FleetResult,
    default_arrivals,
)
from repro.faults.plan import FaultPlan
from repro.fleet.ring import DEFAULT_REPLICAS
from repro.fleet.router import RoutedArrivals, SessionRouter
from repro.games.catalog import build_catalog
from repro.games.spec import GameSpec
from repro.obs.naming import FLEET_COMPLETED, FLEET_ROUTED
from repro.obs.observer import Observer
from repro.sim.engine import run_partitioned
from repro.trace.harness import (
    RunConfig,
    build_cluster,
    build_profiles,
    experiment_seed,
    make_provisioner_factory,
)
from repro.trace.recorder import TraceRecorder
from repro.util.effects import shard_entry, shard_merge_point
from repro.util.rng import region_seed
from repro.workloads.metrics import throughput_eq2

__all__ = [
    "RegionSpec",
    "RegionShard",
    "RegionOutcome",
    "FleetOfFleets",
    "FleetOfFleetsResult",
]

#: Regional id_base stride: region ``k`` (sorted order) issues request
#: ids from ``k << 40`` in ``regional`` arrival mode, so merged streams
#: cannot collide below a trillion requests per region.
ID_STRIDE = 1 << 40


@dataclass(frozen=True)
class RegionSpec:
    """One regional shard's declaration.

    ``weight`` scales the region's share of the hash ring (its routed
    traffic); ``nodes`` / ``warm_pool`` override the base config's
    fleet shape for this region only (``None`` = inherit);
    ``fault_plan`` is a region-scoped schedule (see
    :func:`~repro.fleet.plans.region_outage_plan`) replayed into this
    shard alone.
    """

    name: str
    weight: float = 1.0
    nodes: Optional[int] = None
    warm_pool: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("-", "_").isidentifier():
            raise ValueError(
                f"region name must be identifier-like (dashes ok), "
                f"got {self.name!r}"
            )
        if not self.weight > 0:
            raise ValueError(
                f"region {self.name!r} weight must be > 0, "
                f"got {self.weight!r}"
            )
        if self.nodes is not None and self.nodes < 1:
            raise ValueError(
                f"region {self.name!r} nodes must be >= 1, got {self.nodes}"
            )
        if self.warm_pool is not None and self.warm_pool < 0:
            raise ValueError(
                f"region {self.name!r} warm_pool must be >= 0, "
                f"got {self.warm_pool}"
            )


@dataclass
class RegionOutcome:
    """One shard's run outcome (result + optional sealed sub-trace)."""

    name: str
    result: FleetResult
    recorder: Optional[TraceRecorder] = None

    @property
    def digest(self) -> str:
        """The shard's fleet telemetry digest."""
        return self.result.telemetry_digest


class RegionShard:
    """One fully independent regional partition, ready to run.

    Built by :class:`FleetOfFleets`; everything the shard needs —
    config (region-stamped), arrival slice, fault plan, shared
    profiles — is bound at construction, so :meth:`run` is a
    zero-argument thunk :func:`~repro.sim.engine.run_partitioned` can
    execute in any order.
    """

    def __init__(
        self,
        name: str,
        config: RunConfig,
        specs: Sequence[GameSpec],
        profiles: Dict,
        *,
        arrivals: Optional[object] = None,
        fault_plan: Optional[FaultPlan] = None,
        record: bool = False,
        scenario: str = "",
    ):
        self.name = name
        if fault_plan is not None and config.fault_seed != fault_plan.seed:
            # Pin the plan's streams into the config, exactly like
            # record_run, so a recorded sub-trace replays them.
            config = replace(config, fault_seed=fault_plan.seed)
        self.config = config
        self.specs = list(specs)
        self.profiles = profiles
        self.arrivals = arrivals
        self.fault_plan = fault_plan
        self.record = record
        self.scenario = scenario

    @shard_entry("region:shard")
    def run(self) -> RegionOutcome:
        """Execute this shard's whole event stream, in isolation."""
        cluster = build_cluster(self.config, self.profiles)
        factory = make_provisioner_factory(self.config, self.profiles)
        recorder = None
        if self.record:
            recorder = TraceRecorder(
                seed=experiment_seed(self.config),
                config=self.config.to_dict(),
                scenario=self.scenario,
            )
        result = FleetExperiment(
            cluster,
            self.specs,
            horizon=self.config.horizon,
            rate_per_minute=self.config.rate_per_minute,
            seed=experiment_seed(self.config),
            detect_interval=self.config.detect_interval,
            fault_plan=self.fault_plan,
            provisioner=factory(cluster) if factory is not None else None,
            arrivals=self.arrivals,
            trace=recorder,
        ).run()
        return RegionOutcome(self.name, result, recorder)


@dataclass
class FleetOfFleetsResult:
    """The merged cross-shard outcome.

    ``merged_digest`` is the canonical fleet-of-fleets digest: the lone
    region's digest at N=1 (the reduction guarantee), else SHA-256 over
    the sorted ``<region>:<digest>`` lines.  ``completed_runs`` and
    ``throughput`` re-aggregate across regions; per-region detail stays
    in ``regions``.
    """

    regions: Dict[str, RegionOutcome]
    merged_digest: str
    completed_runs: Dict[str, int]
    throughput: float
    requests_routed: Dict[str, int]

    @property
    def region_digests(self) -> Dict[str, str]:
        """Region name -> that shard's telemetry digest (sorted)."""
        return {
            name: self.regions[name].digest
            for name in sorted(self.regions)
        }


class FleetOfFleets:
    """N regional shards behind one consistent-hash session router.

    Parameters
    ----------
    config:
        The base :class:`~repro.trace.harness.RunConfig` every region
        inherits (region overrides apply on top).  Its ``region`` field
        must be empty — the controller stamps it per shard.
    regions:
        The shard declarations (unique names; at least one).
    arrival_mode:
        ``"routed"`` (default): one global arrival stream generated
        from the base config's seed is split across regions by player
        id — at N=1 this is exactly the classic single-fleet stream.
        ``"regional"``: each region generates its own full-rate stream
        seeded ``region_seed(seed, name)`` with a disjoint request-id
        range (``index * ID_STRIDE``).
    replicas:
        Hash-ring vnodes per unit weight.
    record:
        Attach a :class:`~repro.trace.TraceRecorder` to every shard;
        the sealed per-region sub-traces come back on the outcomes.
    obs:
        Optional observer; the controller publishes region-labeled
        routing/completion counters on it (shard-internal metrics stay
        shard-internal by design).
    scenario:
        Scenario tag stamped into recorded sub-traces.
    """

    def __init__(
        self,
        config: RunConfig,
        regions: Sequence[RegionSpec],
        *,
        arrival_mode: str = "routed",
        replicas: int = DEFAULT_REPLICAS,
        record: bool = False,
        obs: Optional[Observer] = None,
        scenario: str = "",
    ):
        if not regions:
            raise ValueError("fleet needs at least one region")
        names = [spec.name for spec in regions]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate region name(s): {dupes}")
        if config.region:
            raise ValueError(
                "the base config must not be region-stamped; the "
                f"controller does that (got region={config.region!r})"
            )
        if arrival_mode not in ("routed", "regional"):
            raise ValueError(
                f"arrival_mode must be 'routed' or 'regional', "
                f"got {arrival_mode!r}"
            )
        self.config = config
        self.specs_by_name = {
            spec.name: spec for spec in sorted(regions, key=lambda s: s.name)
        }
        self.arrival_mode = arrival_mode
        self.record = record
        self.obs = obs
        self.scenario = scenario
        self.router = SessionRouter(
            {spec.name: spec.weight for spec in regions},
            replicas=replicas,
        )
        self._routed_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    def _region_config(self, spec: RegionSpec) -> RunConfig:
        """The base config, stamped/overridden for one region.

        A single-region fleet stays *unstamped* — classic node ids and
        seed — which is what makes the N=1 digest equal the plain
        single-fleet digest.
        """
        region = spec.name if len(self.specs_by_name) > 1 else ""
        overrides: Dict = {"region": region}
        if spec.nodes is not None:
            overrides["nodes"] = spec.nodes
        if spec.warm_pool is not None:
            overrides["warm_pool"] = spec.warm_pool
        return replace(self.config, **overrides)

    def build_shards(self) -> Dict[str, RegionShard]:
        """Construct every region's independent shard (no execution)."""
        catalog = build_catalog()
        game_specs = [catalog[g] for g in self.config.games]
        profiles = build_profiles(self.config, catalog)
        names = sorted(self.specs_by_name)
        if self.arrival_mode == "routed":
            stream = default_arrivals(
                game_specs,
                rate_per_minute=self.config.rate_per_minute,
                seed=self.config.seed,
                horizon=float(self.config.horizon),
            )
            slices: Dict[str, RoutedArrivals] = (
                {names[0]: RoutedArrivals(stream.requests)}
                if len(names) == 1
                else self.router.split(stream.requests)
            )
        else:
            slices = {
                name: default_arrivals(
                    game_specs,
                    rate_per_minute=self.config.rate_per_minute,
                    seed=region_seed(self.config.seed, name),
                    horizon=float(self.config.horizon),
                    id_base=index * ID_STRIDE,
                )
                for index, name in enumerate(names)
            }
        self._routed_counts = {
            name: len(slices[name].requests) for name in names
        }
        return {
            name: RegionShard(
                name,
                self._region_config(self.specs_by_name[name]),
                game_specs,
                profiles,
                arrivals=slices[name],
                fault_plan=self.specs_by_name[name].fault_plan,
                record=self.record,
                scenario=self.scenario,
            )
            for name in names
        }

    @shard_entry("region:controller")
    def run(self) -> FleetOfFleetsResult:
        """Route, run every shard, and merge (the whole fleet-of-fleets)."""
        shards = self.build_shards()
        outcomes = run_partitioned(
            {name: shards[name].run for name in sorted(shards)}
        )
        return self.merge(outcomes)

    # ------------------------------------------------------------------
    @shard_merge_point
    def merge(
        self, outcomes: Dict[str, RegionOutcome]
    ) -> FleetOfFleetsResult:
        """Fold independent regional outcomes into the canonical result.

        This is the *only* place cross-shard state meets: pure
        aggregation over sorted region names, no feedback into any
        shard, so the merged result is a function of the outcome set
        alone.
        """
        names = sorted(outcomes)
        if len(names) == 1:
            merged = outcomes[names[0]].digest
        else:
            acc = hashlib.sha256()
            for name in names:
                acc.update(f"{name}:{outcomes[name].digest}\n".encode())
            merged = acc.hexdigest()
        completed: Dict[str, int] = {}
        for name in names:
            for game in sorted(outcomes[name].result.completed_runs):
                completed[game] = (
                    completed.get(game, 0)
                    + outcomes[name].result.completed_runs[game]
                )
        catalog = build_catalog()
        durations = {
            game: catalog[game].expected_duration()
            for game in sorted(completed)
        }
        if self.obs is not None:
            routed = self.obs.counter(
                FLEET_ROUTED,
                "Requests the session router assigned to each shard.",
                ("region",),
            )
            done = self.obs.counter(
                FLEET_COMPLETED,
                "Sessions completed per regional shard.",
                ("region",),
            )
            for name in names:
                routed.labels(region=name).inc(
                    self._routed_counts.get(name, 0)
                )
                done.labels(region=name).inc(
                    sum(outcomes[name].result.completed_runs.values())
                )
        return FleetOfFleetsResult(
            regions=dict(outcomes),
            merged_digest=merged,
            completed_runs=completed,
            throughput=throughput_eq2(completed, durations),
            requests_routed=dict(self._routed_counts),
        )
