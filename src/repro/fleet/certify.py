"""Startup certification: the shard plan must match the runtime.

The analyzer (``cocg lint --shard-plan-out``) proves statically that
every admission entry point is ``shard_local`` — no cross-shard mutable
state — and writes ``shardplan.json`` as the certificate.  This module
is the runtime half: before ``cocg fleet`` / ``cocg serve`` start, the
certificate is loaded (the packaged copy by default) and checked
against the entry-point callables the deployment actually registers via
:func:`~repro.sim.engine.validate_shard_plan`.  A stale certificate —
an entry point added, renamed, or re-grouped since the last lint run —
fails fast with :class:`~repro.sim.engine.ShardPlanError` instead of
running a fleet the analysis no longer describes.
"""

from __future__ import annotations

import json
from importlib import resources
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.sim.engine import validate_shard_plan

__all__ = ["runtime_entry_points", "load_certificate", "certify_runtime"]


def runtime_entry_points() -> Tuple[Callable, ...]:
    """Every entry point a fleet deployment registers.

    Imports are local so certification stays importable from the CLI
    without dragging the whole stack in at module-import time.
    """
    from repro.cluster.experiment import FleetExperiment
    from repro.cluster.fleet import ClusterScheduler
    from repro.fleet.controller import FleetOfFleets, RegionShard
    from repro.serve.gateway import AdmissionGateway

    return (
        FleetExperiment.run,
        ClusterScheduler.dispatch,
        ClusterScheduler.submit,
        ClusterScheduler.pump,
        AdmissionGateway.pump,
        FleetOfFleets.run,
        RegionShard.run,
    )


def load_certificate(path: Optional[Union[str, Path]] = None) -> Dict:
    """Load a shard-plan certificate (the packaged one by default).

    ``path`` overrides the packaged ``repro/shardplan.json`` — CI and
    tests point it at freshly exported or deliberately stale copies.
    Raises ``OSError`` if the file is missing and ``ValueError`` on
    malformed JSON.
    """
    if path is not None:
        text = Path(path).read_text(encoding="utf-8")
    else:
        text = (
            resources.files("repro")
            .joinpath("shardplan.json")
            .read_text(encoding="utf-8")
        )
    plan = json.loads(text)
    if not isinstance(plan, dict):
        raise ValueError(
            f"shard-plan certificate must be a JSON object, "
            f"got {type(plan).__name__}"
        )
    return plan


def certify_runtime(path: Optional[Union[str, Path]] = None) -> Dict:
    """Prove certificate and runtime agree; returns the certificate.

    Raises :class:`~repro.sim.engine.ShardPlanError` when they do not —
    callers (the CLI) turn that into exit code 2.
    """
    plan = load_certificate(path)
    validate_shard_plan(plan, runtime_entry_points())
    return plan
