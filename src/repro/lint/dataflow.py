"""Taint/reachability over the conservative project call graph.

The graph is name-resolved: a call site's terminal identifier links to
*every* project function defining that name (methods included).  That
over-approximates dynamic dispatch — exactly the right bias for a
determinism linter, where a missed edge is a silently broken replay and
a spurious edge is at worst a pragma.  Very generic names (``get``,
``append``, …) are stoplisted at summary time so the over-approximation
stays useful.

Two queries serve the CG010–CG012 rules:

* :func:`reach_sinks` — which functions can *reach* one of a set of
  named sinks (forward slicing for "does this loop's order land in the
  digest/dispatch path?");
* :func:`reach_taints` — which functions can reach a *tainted*
  function (an RNG draw or wall-clock read), with a witness chain so
  the finding can print the actual call path.

Both run one BFS over the reversed graph — linear in edges, cheap even
on warm incremental runs where every module summary comes from cache.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set

from repro.lint.project import ProjectContext

__all__ = ["Witness", "CallGraph", "build_call_graph",
           "reach_sinks", "reach_taints", "witness_chain", "render_chain",
           "reach_from", "entry_chain"]


@dataclass(frozen=True)
class Witness:
    """Why a function is marked: what it reaches and through whom.

    ``target`` describes the sink/taint; ``next_hop`` is the callee one
    step closer to it (``None`` when the function itself is the direct
    site); ``depth`` is the number of call hops to the target.
    """

    target: str
    next_hop: Optional[str]
    depth: int


class CallGraph:
    """Forward edges ``caller -> callees`` over function node ids."""

    def __init__(self, edges: Dict[str, Set[str]]):
        self.edges = edges

    def callees(self, node: str) -> Set[str]:
        """Functions a node calls (resolved conservatively)."""
        return self.edges.get(node, set())

    def reversed_edges(self) -> Dict[str, Set[str]]:
        """``callee -> callers`` (built on demand for BFS)."""
        rev: Dict[str, Set[str]] = {}
        for caller, callees in self.edges.items():
            for callee in callees:
                rev.setdefault(callee, set()).add(caller)
        return rev


def build_call_graph(project: ProjectContext) -> CallGraph:
    """Resolve every summarised call site against the function index.

    ``self.method(...)`` calls resolve *precisely* when the enclosing
    class defines ``method`` in the same module: the edge goes to that
    one definition instead of to every project function sharing the
    terminal name.  Calls to methods the class does not define locally
    (inherited, protocol, or duck-typed) keep the conservative
    every-definition fan-out — a missed edge is a silently broken
    replay; a spurious one is at worst a pragma.
    """
    edges: Dict[str, Set[str]] = {}
    for name in sorted(project.modules):
        mod = project.modules[name]
        for qual, fn in mod.functions.items():
            node = f"{name}::{qual}"
            class_prefix = qual.rsplit(".", 1)[0] if "." in qual else None
            targets: Set[str] = set()
            for call in fn.calls:
                if call.on_self and class_prefix is not None:
                    own_method = f"{class_prefix}.{call.name}"
                    if own_method in mod.functions:
                        if own_method != qual:
                            targets.add(f"{name}::{own_method}")
                        continue
                for target in project.function_index.get(call.name, ()):
                    if target != node:
                        targets.add(target)
            edges[node] = targets
    return CallGraph(edges)


def _propagate(
    graph: CallGraph,
    direct: Dict[str, str],
) -> Dict[str, Witness]:
    """Reverse-BFS marker spread from directly-marked functions.

    ``direct`` maps node id -> target description for functions that
    *are* the site (they call the sink / contain the draw).  Returns a
    witness for every function from which some marked function is
    reachable, shortest chain first.
    """
    marked: Dict[str, Witness] = {
        node: Witness(target=desc, next_hop=None, depth=0)
        for node, desc in direct.items()
    }
    rev = graph.reversed_edges()
    frontier = deque(marked)
    while frontier:
        current = frontier.popleft()
        witness = marked[current]
        for caller in rev.get(current, ()):
            if caller not in marked:
                marked[caller] = Witness(
                    target=witness.target,
                    next_hop=current,
                    depth=witness.depth + 1,
                )
                frontier.append(caller)
    return marked


def reach_sinks(
    project: ProjectContext,
    graph: CallGraph,
    sink_names: Iterable[str],
) -> Dict[str, Witness]:
    """Functions from which an ordering-sensitive sink is reachable.

    A function is *direct* when it calls a sink by terminal name or is
    itself named like one (a loop inside ``submit`` already decides
    admission order).
    """
    sinks = set(sink_names)
    direct: Dict[str, str] = {}
    for name in sorted(project.modules):
        mod = project.modules[name]
        for qual, fn in mod.functions.items():
            node = f"{name}::{qual}"
            terminal = qual.split(".")[-1]
            if terminal in sinks:
                direct[node] = terminal
                continue
            called = sorted({c.name for c in fn.calls if c.name in sinks})
            if called:
                direct[node] = called[0]
    return _propagate(graph, direct)


def reach_taints(
    project: ProjectContext,
    graph: CallGraph,
    tainted: Callable[[str], Optional[str]],
) -> Dict[str, Witness]:
    """Functions from which a tainted function is reachable.

    ``tainted(node_id)`` returns a description of the hazard when the
    function itself contains one (e.g. its first RNG draw), else
    ``None``.
    """
    direct: Dict[str, str] = {}
    for name in sorted(project.modules):
        for qual in project.modules[name].functions:
            node = f"{name}::{qual}"
            desc = tainted(node)
            if desc is not None:
                direct[node] = desc
    return _propagate(graph, direct)


def reach_from(
    graph: CallGraph,
    roots: Iterable[str],
) -> Dict[str, Optional[str]]:
    """Forward BFS: every function reachable *from* the given roots.

    Returns ``node -> predecessor`` parent pointers (``None`` for a
    root), shortest chain first — :func:`entry_chain` renders the
    entry-point-to-function call path CG015 prints.  Deterministic:
    roots and callees are expanded in sorted order.
    """
    parents: Dict[str, Optional[str]] = {}
    frontier = deque()
    for root in sorted(set(roots)):
        parents[root] = None
        frontier.append(root)
    while frontier:
        current = frontier.popleft()
        for callee in sorted(graph.callees(current)):
            if callee not in parents:
                parents[callee] = current
                frontier.append(callee)
    return parents


def entry_chain(
    parents: Dict[str, Optional[str]],
    node: str,
    *,
    limit: int = 6,
) -> List[str]:
    """The call chain from a :func:`reach_from` root down to ``node``."""
    chain: List[str] = [node]
    current = parents.get(node)
    while current is not None and len(chain) < limit:
        chain.append(current)
        current = parents.get(current)
    chain.reverse()
    return chain


def witness_chain(
    witnesses: Dict[str, Witness],
    start: str,
    *,
    limit: int = 6,
) -> List[str]:
    """The call chain from ``start`` to its witness target, as node ids."""
    chain: List[str] = [start]
    current: Optional[str] = witnesses[start].next_hop
    while current is not None and len(chain) < limit:
        chain.append(current)
        current = witnesses[current].next_hop
    return chain


def render_chain(chain: List[str]) -> str:
    """``serve.gateway::pump -> util.jitter::wobble`` display form."""
    return " -> ".join(node.replace("::", ":") for node in chain)
