"""Finding renderers: grep-friendly text, machine-readable JSON, and
SARIF 2.1.0 for GitHub code-scanning annotations."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult
from repro.lint.registry import all_project_rules, all_rules

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CGxxx message`` line per finding, then a
    one-line summary."""
    lines = [finding.format() for finding in result.findings]
    n = len(result.findings)
    if n:
        lines.append(f"{n} finding{'s' if n != 1 else ''} "
                     f"in {result.files_checked} file(s) checked")
    else:
        lines.append(f"ok: {result.files_checked} file(s) checked, no findings")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """A JSON document: ``{"files_checked", "count", "findings": [...]}``."""
    payload = {
        "files_checked": result.files_checked,
        "count": len(result.findings),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: CG000 (syntax error) has no registered rule class; synthesise its
#: SARIF metadata so results never reference an undeclared rule id.
_SYNTAX_RULE_META = {
    "id": "CG000",
    "name": "syntax-error",
    "shortDescription": {"text": "file does not parse"},
}


def render_sarif(result: LintResult) -> str:
    """A SARIF 2.1.0 log (one run), consumable by GitHub code scanning."""
    rules_meta = [_SYNTAX_RULE_META]
    combined = {**all_rules(), **all_project_rules()}
    for rule_id in sorted(combined):
        cls = combined[rule_id]
        rules_meta.append({
            "id": rule_id,
            "name": cls.name,
            "shortDescription": {"text": cls.description},
        })
    results = []
    for finding in result.findings:
        results.append({
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col,
                    },
                },
            }],
        })
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro.lint",
                    "rules": rules_meta,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(log, indent=2, sort_keys=True)
