"""Finding renderers: grep-friendly text and machine-readable JSON."""

from __future__ import annotations

import json

from repro.lint.engine import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult) -> str:
    """One ``path:line:col: CGxxx message`` line per finding, then a
    one-line summary."""
    lines = [finding.format() for finding in result.findings]
    n = len(result.findings)
    if n:
        lines.append(f"{n} finding{'s' if n != 1 else ''} "
                     f"in {result.files_checked} file(s) checked")
    else:
        lines.append(f"ok: {result.files_checked} file(s) checked, no findings")
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """A JSON document: ``{"files_checked", "count", "findings": [...]}``."""
    payload = {
        "files_checked": result.files_checked,
        "count": len(result.findings),
        "findings": [finding.to_dict() for finding in result.findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
