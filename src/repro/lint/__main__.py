"""``python -m repro.lint`` — the analyzer's command-line front end.

Also backs the ``cocg lint`` subcommand: :func:`configure_parser`
installs the shared flags on any :class:`argparse.ArgumentParser` (or
subparser) and :func:`run_from_args` executes the parsed namespace.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error
(unknown rule id, nonexistent path, malformed baseline, or git failure
under ``--changed``).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.baseline import apply_baseline, load_baseline, write_baseline
from repro.lint.cache import LintCache, cache_signature
from repro.lint.engine import lint_paths
from repro.lint.registry import (
    UnknownRuleError,
    all_project_rules,
    all_rules,
    explain_rule,
    resolve_project_rules,
    resolve_rules,
)
from repro.lint.reporters import render_json, render_sarif, render_text

__all__ = ["configure_parser", "build_parser", "run_from_args", "main"]

#: Default on-disk location of the incremental cache.
DEFAULT_CACHE = ".lint_cache.json"


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Install the lint CLI flags on ``parser`` (shared with ``cocg lint``)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--changed", action="store_true",
        help="report findings only for files git sees as changed "
             "(the analysis still covers the full tree for "
             "cross-module context)",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", type=Path,
        help="additionally write a SARIF 2.1.0 log to PATH",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", type=Path,
        help="subtract findings recorded in this baseline file; "
             "only new findings fail the run",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the --baseline file from the current findings "
             "and exit 0",
    )
    parser.add_argument(
        "--cache", metavar="PATH", type=Path, default=Path(DEFAULT_CACHE),
        help=f"incremental cache location (default: {DEFAULT_CACHE})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache for this run",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip the whole-program phase (CG010-CG013)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print one rule's rationale and fix recipe "
             "(e.g. --explain CG015) and exit",
    )
    parser.add_argument(
        "--effects-out", metavar="PATH", type=Path,
        help="write the inferred effect signatures (effects.json) "
             "to PATH",
    )
    parser.add_argument(
        "--shard-plan-out", metavar="PATH", type=Path,
        help="write the shard-interference certificate (shardplan.json) "
             "to PATH",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """The standalone ``python -m repro.lint`` parser."""
    return configure_parser(argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="CoCG invariant checker "
                    "(per-file CG001-CG009 and CG014, "
                    "whole-program CG010-CG013, "
                    "effect system CG015-CG018, "
                    "shard certification CG019-CG022)",
    ))


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    rules = [part.strip() for part in raw.split(",") if part.strip()]
    if not rules:
        # An explicitly empty selection would silently lint nothing and
        # exit 0 — a CI footgun; fail loudly instead.
        raise UnknownRuleError("empty rule list (expected e.g. CG001,CG005)")
    return rules


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def _git_changed_files() -> List[str]:
    """Python files git reports as modified/staged/untracked, relative
    to the current directory."""
    commands = (
        ["git", "diff", "--name-only", "--relative", "HEAD"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    seen: set = set()
    for cmd in commands:
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"exit {proc.returncode}"
            raise RuntimeError(f"--changed: `{' '.join(cmd)}` failed: {detail}")
        seen.update(line.strip() for line in proc.stdout.splitlines()
                    if line.strip().endswith(".py"))
    return sorted(seen)


def _print_rules() -> None:
    for title, registry in (("per-file rules", all_rules()),
                            ("whole-program rules", all_project_rules())):
        print(f"# {title}")
        for rule_id, rule_cls in sorted(registry.items()):
            print(f"{rule_id}  {rule_cls.name:32} {rule_cls.description}")


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint namespace; returns the process exit code."""
    if args.list_rules:
        _print_rules()
        return 0
    if args.explain is not None:
        try:
            print(explain_rule(args.explain.strip().upper()))
        except UnknownRuleError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        return 0
    if args.update_baseline and args.baseline is None:
        print("error: --update-baseline requires --baseline PATH",
              file=sys.stderr)
        return 2
    paths = args.paths or _default_paths()
    try:
        select = _split_rule_list(args.select)
        ignore = _split_rule_list(args.ignore)
        # Resolve eagerly so unknown rule ids fail before any analysis,
        # and so the cache signature reflects the exact selection.
        rule_ids = [cls.rule_id for cls in resolve_rules(select, ignore)]
        project_ids = ([] if args.no_project else
                       [cls.rule_id
                        for cls in resolve_project_rules(select, ignore)])
        only_paths = _git_changed_files() if args.changed else None
        cache = None
        if not args.no_cache:
            cache = LintCache.load(
                args.cache, cache_signature(rule_ids, project_ids),
            )
        result = lint_paths(
            paths,
            select=select,
            ignore=ignore,
            whole_program=not args.no_project,
            cache=cache,
            only_paths=only_paths,
            effects=args.effects_out is not None,
            shard_plan=args.shard_plan_out is not None,
        )
        if cache is not None:
            cache.save()
        if args.baseline is not None:
            if args.update_baseline:
                n = write_baseline(args.baseline, result.findings)
                print(f"baseline: recorded {n} finding(s) "
                      f"to {args.baseline}")
                return 0
            result.findings = apply_baseline(
                result.findings, load_baseline(args.baseline),
            )
    except (UnknownRuleError, FileNotFoundError,
            RuntimeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.effects_out is not None and result.effects is not None:
        args.effects_out.write_text(result.effects, encoding="utf-8")
    if args.shard_plan_out is not None and result.shard_plan is not None:
        args.shard_plan_out.write_text(result.shard_plan, encoding="utf-8")
    if args.sarif is not None:
        args.sarif.write_text(render_sarif(result) + "\n", encoding="utf-8")
    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
