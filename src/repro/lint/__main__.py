"""``python -m repro.lint`` — the analyzer's command-line front end.

Also backs the ``cocg lint`` subcommand: :func:`configure_parser`
installs the shared flags on any :class:`argparse.ArgumentParser` (or
subparser) and :func:`run_from_args` executes the parsed namespace.

Exit codes: ``0`` clean, ``1`` findings reported, ``2`` usage error
(unknown rule id or nonexistent path).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.engine import lint_paths
from repro.lint.registry import UnknownRuleError, all_rules
from repro.lint.reporters import render_json, render_text

__all__ = ["configure_parser", "build_parser", "run_from_args", "main"]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Install the lint CLI flags on ``parser`` (shared with ``cocg lint``)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files/directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore", metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """The standalone ``python -m repro.lint`` parser."""
    return configure_parser(argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="CoCG invariant checker (rules CG001-CG007)",
    ))


def _split_rule_list(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    rules = [part.strip() for part in raw.split(",") if part.strip()]
    if not rules:
        # An explicitly empty selection would silently lint nothing and
        # exit 0 — a CI footgun; fail loudly instead.
        raise UnknownRuleError("empty rule list (expected e.g. CG001,CG005)")
    return rules


def _default_paths() -> List[str]:
    return ["src"] if Path("src").is_dir() else ["."]


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a parsed lint namespace; returns the process exit code."""
    if args.list_rules:
        for rule_id, rule_cls in sorted(all_rules().items()):
            print(f"{rule_id}  {rule_cls.name:28} {rule_cls.description}")
        return 0
    paths = args.paths or _default_paths()
    try:
        result = lint_paths(
            paths,
            select=_split_rule_list(args.select),
            ignore=_split_rule_list(args.ignore),
        )
    except (UnknownRuleError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_json(result) if args.format == "json" else render_text(result))
    return 0 if result.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro.lint``."""
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
