"""Effect-signature inference and the effect-system rules (CG015–CG018).

The taint rules (CG010–CG013) answer "does hazard X reach sink Y?".
Sharding the control plane (ROADMAP item 1) needs the dual question
answered for *every* function: "what does this function do, including
everything it calls?"  That contract is an **effect signature** — a
subset of the effect alphabet

    ``{rng, clock, global_write, engine_emit, digest_write, io}``

whose lattice is subset inclusion with union as join.  Inference is a
fixpoint over the name-resolved call graph: each effect is seeded from
the per-function AST facts the module summaries already carry (RNG
draws, clock reads, module/class-level stores, engine ``at/after/every``
calls, digest ``record*`` calls, file/console I/O) and propagated
callee→caller with one reverse BFS per effect — equivalent to the
classic worklist fixpoint because the transfer function is monotone
union over a finite lattice, but with a witness chain for free.

On top of the inferred signatures sit four rules:

* **CG015** — shard safety: nothing reachable from a fleet/gateway/
  dispatch entry point may write shared module/class state;
* **CG016** — declared-vs-inferred drift against ``@effects(...)``
  declarations (:mod:`repro.util.effects`);
* **CG017** — architecture layering over the package DAG;
* **CG018** — hot-path purity for the Algorithm-1/rollout path.

:func:`render_effects` exports every non-pure or declared function's
signature as a sorted, deterministic JSON artifact (``effects.json`` in
CI) keyed by ``module::qualname`` — no absolute paths, so the bytes are
stable across machines and across cold/warm cache runs.
"""

from __future__ import annotations

import json
from typing import Dict, FrozenSet, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.lint.dataflow import (
    CallGraph,
    Witness,
    build_call_graph,
    entry_chain,
    reach_from,
    reach_taints,
    render_chain,
    witness_chain,
)
from repro.lint.project import ProjectContext, ProjectRule
from repro.lint.registry import ANALYZER_VERSION, register_project
from repro.lint.shards import (
    SHARD_ENTRY_PACKAGES,
    SHARD_ENTRY_TERMINALS,
    SHARD_EXEMPT_PACKAGES,
    shard_entry_points,
)

__all__ = [
    "EFFECT_NAMES",
    "EffectInference",
    "infer_effects",
    "render_effects",
    "LAYERS",
    "ShardSafetyRule",
    "EffectDeclarationRule",
    "LayeringRule",
    "HotPathPurityRule",
]

#: The effect alphabet in canonical report order.  Mirrors
#: :data:`repro.util.effects.EFFECTS`; the analyzer deliberately does
#: not import the runtime module (the lint package stays self-contained)
#: and a test pins the two tuples equal.
EFFECT_NAMES = (
    "rng",
    "clock",
    "global_write",
    "engine_emit",
    "digest_write",
    "io",
)

#: effect name -> FunctionSummary fields holding its seed sites.
_SEED_FIELDS: Dict[str, Tuple[str, ...]] = {
    "rng": ("rng_draws", "stream_draws"),
    "clock": ("clock_reads",),
    "global_write": ("global_writes",),
    "engine_emit": ("engine_emits",),
    "digest_write": ("digest_writes",),
    "io": ("io_sites",),
}


class EffectInference:
    """Per-function effect signatures over one project call graph.

    Construction runs the whole inference (six reverse BFS passes);
    queries afterwards are dictionary lookups.  Use
    :func:`infer_effects` to share one instance across the CG015–CG018
    rules and the artifact writer within a run.
    """

    def __init__(self, project: ProjectContext,
                 graph: Optional[CallGraph] = None):
        self.project = project
        self.graph = graph if graph is not None else build_call_graph(project)
        self._witnesses: Dict[str, Dict[str, Witness]] = {}
        for effect in EFFECT_NAMES:
            fields = _SEED_FIELDS[effect]

            def first_site(node_id: str, fields=fields) -> Optional[str]:
                fn = self.project.function(node_id)
                for name in fields:
                    sites = getattr(fn, name)
                    if sites:
                        return sites[0].desc
                return None

            self._witnesses[effect] = reach_taints(
                project, self.graph, first_site,
            )

    def effects_of(self, node_id: str) -> FrozenSet[str]:
        """The inferred (transitive) signature of a function."""
        return frozenset(
            e for e in EFFECT_NAMES if node_id in self._witnesses[e]
        )

    def own_effects_of(self, node_id: str) -> Dict[str, str]:
        """Effects seeded *in the function itself*: effect -> first site."""
        fn = self.project.function(node_id)
        out: Dict[str, str] = {}
        for effect in EFFECT_NAMES:
            for name in _SEED_FIELDS[effect]:
                sites = getattr(fn, name)
                if sites:
                    out[effect] = sites[0].desc
                    break
        return out

    def witness(self, node_id: str, effect: str) -> Optional[Witness]:
        """Why ``node_id`` has ``effect`` (``None`` when it does not)."""
        return self._witnesses[effect].get(node_id)

    def chain(self, node_id: str, effect: str) -> List[str]:
        """Call chain from ``node_id`` down to the effect's direct site."""
        return witness_chain(self._witnesses[effect], node_id)


#: One inference per ProjectContext per run (the four rules and the
#: artifact writer all share it); weakly keyed so nothing outlives the
#: run.
_INFERENCE_MEMO: "WeakKeyDictionary[ProjectContext, EffectInference]" = (
    WeakKeyDictionary()
)


def infer_effects(project: ProjectContext,
                  graph: Optional[CallGraph] = None) -> EffectInference:
    """The (memoised) effect inference for a project context."""
    inference = _INFERENCE_MEMO.get(project)
    if inference is None or (graph is not None
                             and inference.graph is not graph):
        inference = EffectInference(project, graph)
        _INFERENCE_MEMO[project] = inference
    return inference


def render_effects(project: ProjectContext,
                   inference: Optional[EffectInference] = None) -> str:
    """The ``effects.json`` artifact text (sorted, newline-terminated).

    Lists every function whose inferred signature is non-empty or that
    carries an ``@effects`` declaration, keyed ``module::qualname``.
    Module names only — no absolute paths — so a double run and a
    cold-vs-warm-cache pair produce byte-identical output.
    """
    inference = inference if inference is not None else infer_effects(project)
    functions: Dict[str, dict] = {}
    total = 0
    for name in sorted(project.modules):
        mod = project.modules[name]
        for qual in sorted(mod.functions):
            total += 1
            node = f"{name}::{qual}"
            fn = mod.functions[qual]
            inferred = sorted(inference.effects_of(node),
                              key=EFFECT_NAMES.index)
            if not inferred and fn.declared_effects is None \
                    and not fn.hot_path:
                continue
            functions[node] = {
                "effects": inferred,
                "own": inference.own_effects_of(node),
                "declared": fn.declared_effects,
                "hot_path": fn.hot_path,
            }
    payload = {
        "schema": "cocg-effects/1",
        "analyzer_version": ANALYZER_VERSION,
        "effect_alphabet": list(EFFECT_NAMES),
        "counts": {
            "functions_total": total,
            "with_effects": sum(1 for f in functions.values()
                                if f["effects"]),
            "declared": sum(1 for f in functions.values()
                            if f["declared"] is not None),
            "hot_path": sum(1 for f in functions.values() if f["hot_path"]),
        },
        "functions": functions,
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# CG015 — shard safety

# Entry-point discovery and the exemption set live in
# :mod:`repro.lint.shards` (the shard-interference analyzer) so CG015
# and the CG019–CG022 certification rules can never disagree about what
# an entry point is.  Re-exported names keep the old import path alive.
_SHARD_ENTRY_TERMINALS = SHARD_ENTRY_TERMINALS
_SHARD_ENTRY_PACKAGES = SHARD_ENTRY_PACKAGES
_SHARD_EXEMPT_PACKAGES = SHARD_EXEMPT_PACKAGES


@register_project
class ShardSafetyRule(ProjectRule):
    """Code reachable from shard entry points must not write shared state.

    ROADMAP item 1 shards the control plane into N parallel fleets.  Two
    shards running the same code diverge the moment any function on a
    shard-executed path mutates module- or class-level state: the write
    interleaving becomes schedule-dependent and byte-identical replay
    (CGReplay) is gone.  This rule walks *forward* from every shard
    entry point — a function decorated ``@shard_entry(...)``, plus the
    conventional ``run``/``pump``/``dispatch``/``submit`` terminals
    under ``cluster``/``serve`` — and flags each reachable function that stores
    into module- or class-level bindings, printing the entry-to-write
    call chain.  Writes inside ``obs`` (the metrics registry — the
    sanctioned home for shared aggregates) and ``lint`` (import-time
    rule registration) are exempt.

    Fix: move the state onto an instance owned by the shard (``self``),
    pass it explicitly, or record through the metrics registry
    (``repro.obs``).  ``# lint: disable=CG015`` only for state that is
    provably shard-local.
    """

    rule_id = "CG015"
    name = "shard-unsafe-global-write"
    description = (
        "function reachable from a fleet/gateway/dispatch entry point "
        "writes module- or class-level state"
    )

    def check(self) -> None:
        inference = infer_effects(self.project)
        entries = sorted(shard_entry_points(self.project))
        parents = reach_from(inference.graph, entries)
        for node in sorted(parents):
            mod = self.project.module_of(node)
            if mod.package in _SHARD_EXEMPT_PACKAGES:
                continue
            fn = self.project.function(node)
            if not fn.global_writes:
                continue
            chain = entry_chain(parents, node)
            entry = chain[0].replace("::", ":")
            for site in fn.global_writes:
                self.report(
                    mod, site.line, site.col,
                    f"{site.desc} in {fn.qualname}() is reachable from "
                    f"shard entry point {entry} "
                    f"(chain: {render_chain(chain)}); shard-parallel "
                    f"fleets must not share mutable module/class state -- "
                    f"keep it on an instance or in the metrics registry",
                )


# ---------------------------------------------------------------------------
# CG016 — declared vs inferred drift


def _fmt(effects) -> str:
    ordered = sorted(effects, key=EFFECT_NAMES.index)
    return "{" + ", ".join(ordered) + "}" if ordered else "pure"


@register_project
class EffectDeclarationRule(ProjectRule):
    """``@effects(...)`` declarations must match the inferred signature.

    A declaration is a contract: callers (and the CG018 hot-path rule)
    rely on it instead of re-deriving the transitive behaviour.  The
    contract rots in two directions — a function grows an effect its
    decorator does not admit (undeclared), or keeps declaring one the
    analyzer can no longer find (stale).  Both directions error, with
    the witness call chain for undeclared effects.

    Fix: for an undeclared effect, either add it to ``@effects(...)`` or
    break the call edge the chain shows; for a stale one, delete the
    name from the decorator.  The inference is conservative (name-
    resolved call graph), so a spurious edge can be cut by renaming an
    over-generic method, or suppressed with ``# lint: disable=CG016`` on
    the ``def`` line.
    """

    rule_id = "CG016"
    name = "effect-declaration-drift"
    description = (
        "@effects declaration disagrees with the inferred effect signature"
    )

    def check(self) -> None:
        inference = infer_effects(self.project)
        for name in sorted(self.project.modules):
            mod = self.project.modules[name]
            for qual in sorted(mod.functions):
                fn = mod.functions[qual]
                if fn.declared_effects is None:
                    continue
                node = f"{name}::{qual}"
                inferred = inference.effects_of(node)
                declared = frozenset(fn.declared_effects)
                for effect in sorted(inferred - declared,
                                     key=EFFECT_NAMES.index):
                    witness = inference.witness(node, effect)
                    chain = inference.chain(node, effect)
                    self.report(
                        mod, fn.line, 1,
                        f"{fn.qualname}() declares {_fmt(declared)} but the "
                        f"analyzer infers undeclared '{effect}': "
                        f"{witness.target} "
                        f"(chain: {render_chain(chain)}); add '{effect}' to "
                        f"@effects(...) or break the call edge",
                    )
                for effect in sorted(declared - inferred,
                                     key=EFFECT_NAMES.index):
                    self.report(
                        mod, fn.line, 1,
                        f"{fn.qualname}() declares effect '{effect}' the "
                        f"analyzer cannot find; drop the stale name from "
                        f"@effects(...)",
                    )


# ---------------------------------------------------------------------------
# CG017 — architecture layering


#: package -> layer.  An import may only point at the same or a lower
#: layer; root modules (``cli``, ``config`` — package ``""``) are the
#: composition root and exempt.
LAYERS: Dict[str, int] = {
    "util": 0,
    "obs": 1, "mlkit": 1, "streaming": 1, "lint": 1,
    "platform_": 2,
    "sim": 3, "games": 3,
    "core": 4,
    "baselines": 5, "workloads": 5, "analysis": 5,
    "cluster": 6, "faults": 6, "serve": 6, "trace": 6,
    "fleet": 7,
}

_DAG_TEXT = (
    "util < obs/mlkit/streaming/lint < platform_ < sim/games < core "
    "< baselines/workloads/analysis < cluster/faults/serve/trace "
    "< fleet"
)


def _import_package(imported: str) -> Optional[str]:
    """Top-level ``repro`` subpackage an import statement targets."""
    if imported == "repro" or imported.startswith("repro."):
        parts = imported.split(".")
        return parts[1] if len(parts) > 1 else None
    return None


@register_project
class LayeringRule(ProjectRule):
    """Package imports must follow the architecture DAG (no back-edges).

    The layering is ``util < obs/mlkit/streaming/lint < platform_ <
    sim/games < core < baselines/workloads/analysis <
    cluster/faults/serve/trace``: ``sim`` can never import ``serve``,
    and shard-local code can never reach region-global singletons by
    importing upward.  ``obs`` sits low on purpose — observability must
    never import the packages it observes (hooks are injected downward),
    which is what keeps a shard's metrics registry free of back-edges.
    Same-layer imports are allowed (``cluster``/``faults``/``serve``/
    ``trace`` are interdependent by design); imports under ``if TYPE_CHECKING:`` are
    erased at runtime and exempt; root modules (``cli`` — the
    composition root) may import anything.

    Fix: invert the dependency — move the shared type down a layer, or
    inject the higher-layer object from the composition root.  Use a
    ``TYPE_CHECKING`` guard when only an annotation needs the name.
    """

    rule_id = "CG017"
    name = "layering-violation"
    description = "module imports a package from a higher architecture layer"

    def check(self) -> None:
        for name in sorted(self.project.modules):
            mod = self.project.modules[name]
            src_layer = LAYERS.get(mod.package)
            if src_layer is None:
                continue
            for imported in sorted(mod.imported_modules):
                pkg = _import_package(imported)
                dst_layer = LAYERS.get(pkg) if pkg is not None else None
                if dst_layer is None or dst_layer <= src_layer:
                    continue
                if imported in mod.type_only_imports:
                    continue
                self.report(
                    mod, mod.import_lines.get(imported, 1), 1,
                    f"'{mod.module}' (layer {src_layer}: {mod.package}) "
                    f"imports '{imported}' from higher layer {dst_layer} "
                    f"({pkg}); the architecture DAG is {_DAG_TEXT} -- "
                    f"invert the dependency or inject it from the "
                    f"composition root",
                )


# ---------------------------------------------------------------------------
# CG018 — hot-path purity


@register_project
class HotPathPurityRule(ProjectRule):
    """``@effects(..., hot_path=True)`` functions must be pure-but-RNG.

    ROADMAP item 2 vectorises the Algorithm-1/rollout path (a numpy or
    compiled kernel swap).  That swap is behaviour-preserving only if
    the path is referentially transparent up to its declared RNG
    stream: no clock reads, no shared-state writes, no engine emission,
    no digest writes, no I/O.  This rule holds every function marked
    ``hot_path=True`` to exactly that — its inferred signature must be
    a subset of its declared ``rng`` (and ``rng`` itself must be
    declared to be allowed).

    Fix: hoist the offending effect out of the hot path (record results
    after the kernel returns; pass drawn samples in), or — if the
    function genuinely is not hot-path — drop ``hot_path=True``.
    """

    rule_id = "CG018"
    name = "hot-path-impure"
    description = (
        "hot-path function has effects beyond its declared RNG stream"
    )

    def check(self) -> None:
        inference = infer_effects(self.project)
        for name in sorted(self.project.modules):
            mod = self.project.modules[name]
            for qual in sorted(mod.functions):
                fn = mod.functions[qual]
                if not fn.hot_path:
                    continue
                node = f"{name}::{qual}"
                declared = frozenset(fn.declared_effects or [])
                bad_declared = declared - {"rng"}
                for effect in sorted(bad_declared,
                                     key=EFFECT_NAMES.index):
                    self.report(
                        mod, fn.line, 1,
                        f"hot-path {fn.qualname}() declares '{effect}'; a "
                        f"hot-path function may declare at most 'rng'",
                    )
                allowed = declared & {"rng"}
                inferred = inference.effects_of(node)
                # bad declarations were already reported above; don't
                # report the same effect twice when it is also inferred.
                for effect in sorted(inferred - allowed - bad_declared,
                                     key=EFFECT_NAMES.index):
                    witness = inference.witness(node, effect)
                    chain = inference.chain(node, effect)
                    hint = (
                        "declare it with @effects('rng', hot_path=True)"
                        if effect == "rng"
                        else "hoist the effect out of the hot path"
                    )
                    self.report(
                        mod, fn.line, 1,
                        f"hot-path {fn.qualname}() has effect '{effect}': "
                        f"{witness.target} "
                        f"(chain: {render_chain(chain)}); {hint}",
                    )
