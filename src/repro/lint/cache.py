"""Content-hash incremental cache for warm lint runs.

A cache entry maps a file's resolved path to the SHA-256 of its bytes,
the per-file findings it produced, and its whole-program
:class:`~repro.lint.project.ModuleSummary`.  On a warm run an unchanged
file is served entirely from the entry — no re-read beyond hashing, no
re-parse, no rule dispatch — while the project *findings* always
recompute from the (possibly cached) summaries, because graph queries
are cheap and any changed module can shift reachability for its reverse
dependencies.  The rendered ``shardplan.json`` certificate is the one
project-phase artifact that *is* memoised (:func:`project_key` over the
per-module content digests): on a fully warm run the byte-identical
text is served without re-deriving the call graph.

The whole store is guarded by a *signature* combining
:data:`~repro.lint.registry.ANALYZER_VERSION` with the exact rule
selection: bumping a rule, or linting with a different
``--select``/``--ignore`` set, invalidates everything rather than ever
serving findings a different configuration produced.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.lint.findings import Finding
from repro.lint.project import ModuleSummary
from repro.lint.registry import ANALYZER_VERSION

__all__ = ["CacheEntry", "LintCache", "cache_signature", "content_digest",
           "project_key"]

_FORMAT = 1


def cache_signature(rule_ids: Iterable[str],
                    project_rule_ids: Iterable[str]) -> str:
    """The invalidation key: analyzer version + exact rule selection."""
    return (f"v{_FORMAT}:a{ANALYZER_VERSION}"
            f":{','.join(sorted(rule_ids))}"
            f":{','.join(sorted(project_rule_ids))}")


def content_digest(data: bytes) -> str:
    """SHA-256 hex digest of a file's bytes."""
    return hashlib.sha256(data).hexdigest()


def project_key(module_digests: Dict[str, str]) -> str:
    """One hash over every module's content digest.

    The project-phase facts (call graph → shard plan) are a pure
    function of the module summaries, which are a pure function of the
    file contents — so a memo keyed on the sorted
    ``module:content-digest`` pairs is exact: any changed, added, or
    removed module changes the key, and nothing else does.
    """
    joined = "\n".join(
        f"{module}:{module_digests[module]}"
        for module in sorted(module_digests)
    )
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """Everything a warm run needs to skip one unchanged file."""

    digest: str
    findings: List[Finding]
    summary: Optional[ModuleSummary]  # None when the file did not parse

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "digest": self.digest,
            "findings": [f.to_dict() for f in self.findings],
            "summary": self.summary.to_dict() if self.summary else None,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "CacheEntry":
        """Inverse of :meth:`to_dict`."""
        return cls(
            digest=d["digest"],
            findings=[
                Finding(path=f["path"], line=int(f["line"]), col=int(f["col"]),
                        rule_id=f["rule_id"], message=f["message"])
                for f in d["findings"]
            ],
            summary=(ModuleSummary.from_dict(d["summary"])
                     if d.get("summary") else None),
        )


class LintCache:
    """On-disk store of :class:`CacheEntry` keyed by resolved path."""

    def __init__(self, path: Optional[Path], signature: str):
        self.path = path
        self.signature = signature
        self.entries: Dict[str, CacheEntry] = {}
        #: project-phase memo: :func:`project_key` -> rendered
        #: ``shardplan.json`` text.  One slot — the latest tree state —
        #: because the memo only ever serves the warm-run fast path.
        self._project_key: Optional[str] = None
        self._project_plan: Optional[str] = None
        self._dirty = False

    @classmethod
    def load(cls, path: Optional[Path], signature: str) -> "LintCache":
        """Read the store; a missing/corrupt/stale-signature file yields
        an empty cache instead of an error."""
        cache = cls(path, signature)
        if path is None or not path.is_file():
            return cache
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return cache
        if payload.get("signature") != signature:
            return cache
        try:
            cache.entries = {
                key: CacheEntry.from_dict(entry)
                for key, entry in payload.get("entries", {}).items()
            }
        except (KeyError, TypeError, ValueError):
            cache.entries = {}
        project = payload.get("project")
        if (isinstance(project, dict)
                and isinstance(project.get("key"), str)
                and isinstance(project.get("shard_plan"), str)):
            cache._project_key = project["key"]
            cache._project_plan = project["shard_plan"]
        return cache

    def get_project(self, key: str) -> Optional[str]:
        """The memoised shard-plan text for an identical summary set."""
        if self._project_key == key:
            return self._project_plan
        return None

    def put_project(self, key: str, shard_plan: str) -> None:
        """Record the freshly derived project-phase certificate."""
        self._project_key = key
        self._project_plan = shard_plan
        self._dirty = True

    def get(self, key: str, digest: str) -> Optional[CacheEntry]:
        """The entry for ``key`` when its content hash still matches."""
        entry = self.entries.get(key)
        if entry is not None and entry.digest == digest:
            return entry
        return None

    def put(self, key: str, entry: CacheEntry) -> None:
        """Record a freshly analyzed file."""
        self.entries[key] = entry
        self._dirty = True

    def prune(self, live_keys: Iterable[str]) -> None:
        """Drop entries for files no longer part of the linted tree."""
        live = set(live_keys)
        dead = [key for key in self.entries if key not in live]
        for key in dead:
            del self.entries[key]
            self._dirty = True

    def save(self) -> None:
        """Write the store back if anything changed."""
        if self.path is None or not self._dirty:
            return
        payload = {
            "signature": self.signature,
            "entries": {key: self.entries[key].to_dict()
                        for key in sorted(self.entries)},
        }
        if self._project_key is not None and self._project_plan is not None:
            payload["project"] = {
                "key": self._project_key,
                "shard_plan": self._project_plan,
            }
        self.path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        self._dirty = False
