"""The whole-program determinism rules, CG010–CG013.

Each rule defends the repo's load-bearing guarantee — same seed + fault
plan ⇒ byte-identical fleet digest — against a hazard the per-file
rules (CG001–CG009) structurally cannot see, because it only manifests
across module boundaries:

========  ==============================================================
CG010     unordered-collection iteration feeding an ordering-sensitive
          sink (dispatch, digest/telemetry recording, queue admission)
CG011     a random draw reachable from determinism-critical code that
          does not go through a named, seeded stream (``util/rng.py``)
CG012     wall-clock values crossing into ``sim/``-clocked code
CG013     an event dataclass emitted by ``faults``/``serve``/``sim``
          that never reaches the fleet digest
========  ==============================================================

All four run on :class:`~repro.lint.project.ProjectContext` summaries
and the conservative call graph from :mod:`repro.lint.dataflow`; see
``docs/LINT.md`` for the full rationale and the pragma escape hatches.
"""

from __future__ import annotations

from typing import Optional

from repro.lint.dataflow import (
    build_call_graph,
    reach_sinks,
    reach_taints,
    render_chain,
    witness_chain,
)
from repro.lint.project import ProjectRule
from repro.lint.registry import register_project

__all__ = [
    "ORDER_SINKS",
    "DETERMINISM_PACKAGES",
    "UnorderedIterationToSink",
    "RngStreamDiscipline",
    "WallClockTaint",
    "DigestCompleteness",
]

#: Function terminals whose inputs are ordering-sensitive: they decide
#: where a request lands, what enters a queue, or what bytes feed the
#: fleet digest / telemetry logs.
ORDER_SINKS = frozenset({
    "dispatch", "dispatch_one", "dispatch_order", "try_admit",
    "submit", "offer", "pump",
    "record", "record_second", "record_fault_event",
    "record_gateway_event", "digest",
})

#: Subpackages whose behaviour is replay-checked byte-for-byte.
DETERMINISM_PACKAGES = ("serve", "cluster", "sim", "faults", "trace",
                        "fleet")

#: Packages whose event dataclasses must reach the fleet digest.
EVENT_PACKAGES = ("serve", "faults", "sim", "trace", "fleet")


def _is_rng_module(module: str) -> bool:
    return module in ("util.rng", "rng")


@register_project
class UnorderedIterationToSink(ProjectRule):
    """CG010 — no unordered iteration into ordering-sensitive sinks.

    A ``for`` loop (or comprehension) over a ``set`` or an un-``sorted``
    dict view inside ``serve``/``cluster``/``sim``/``faults`` is flagged
    when the enclosing function can reach — possibly through other
    modules — a dispatch, queue-admission, or digest/telemetry-recording
    call.  There, iteration order *is* behaviour: it decides placement
    and the bytes of the fleet digest, so it must be canonical
    (``sorted``) or proven order-insensitive with a pragma.

    Fix: iterate ``sorted(...)`` (or an explicitly ordered list); if
    the consumer is provably order-insensitive, suppress with
    ``# lint: disable=CG010 -- <why>``.
    """

    rule_id = "CG010"
    name = "no-unordered-iteration-to-sink"
    description = ("set / un-sorted dict iteration flows into dispatch, "
                   "queue admission, or the fleet digest; sort it")

    def check(self) -> None:
        graph = build_call_graph(self.project)
        reaching = reach_sinks(self.project, graph, ORDER_SINKS)
        for node in self.project.functions_in(*DETERMINISM_PACKAGES):
            witness = reaching.get(node)
            if witness is None:
                continue
            fn = self.project.function(node)
            mod = self.project.module_of(node)
            where = (f"ordering-sensitive sink {witness.target!r}"
                     if witness.depth == 0 else
                     f"sink {witness.target!r} via "
                     f"{render_chain(witness_chain(reaching, node)[1:])}")
            for loop in fn.unordered_loops:
                self.report(
                    mod, loop.line, loop.col,
                    f"{loop.desc} in {fn.qualname}() reaches {where}; "
                    f"iterate in sorted() order or pragma a proof of "
                    f"order-insensitivity",
                )


class _TaintRule(ProjectRule):
    """Shared machinery: report critical functions reaching a taint."""

    #: packages whose functions must stay clear of the taint.
    critical_packages: tuple = ()

    def _taint_of(self, node: str) -> Optional[str]:
        raise NotImplementedError

    def _own_sites(self, node: str) -> list:
        raise NotImplementedError

    def _report_own(self, node: str) -> None:
        """Hazards sitting directly inside a critical function."""
        fn = self.project.function(node)
        mod = self.project.module_of(node)
        for site in self._own_sites(node):
            self.report(
                mod, site.line, site.col,
                f"{site.desc} inside determinism-critical "
                f"{mod.module}.{fn.qualname}()",
            )

    def check(self) -> None:
        graph = build_call_graph(self.project)
        reaching = reach_taints(self.project, graph, self._taint_of)
        critical = set(self.project.functions_in(*self.critical_packages))
        for node in sorted(critical):
            if self._own_sites(node):
                self._report_own(node)
                continue
            witness = reaching.get(node)
            if witness is None:
                continue
            # Report at the deepest critical frame only: if the next hop
            # toward the taint is itself critical, that frame carries
            # the finding.
            hop = witness.next_hop
            if hop is None or hop in critical:
                continue
            fn = self.project.function(node)
            mod = self.project.module_of(node)
            call_line = fn.line
            hop_terminal = hop.split("::", 1)[1].split(".")[-1]
            for call in fn.calls:
                if call.name == hop_terminal:
                    call_line = call.line
                    break
            chain = render_chain(witness_chain(reaching, node))
            self.report(
                mod, call_line, 1,
                f"{fn.qualname}() reaches {witness.target} through "
                f"{chain}; {self.remedy}",
            )

    remedy = "remove the hazard or route it through a seeded stream"


@register_project
class RngStreamDiscipline(_TaintRule):
    """CG011 — RNG stream discipline, whole-program.

    Every random draw reachable from ``serve``/``cluster``/``sim``/
    ``faults`` must come from a named, seeded substream normalised by
    ``util/rng.py`` (``as_rng`` / ``spawn_rngs`` / ``derive_seed``).
    CG001 flags global-state draws file-by-file; this rule catches the
    laundered ones — an unseeded ``random.random()`` or ``default_rng()``
    two helper calls upstream of the serving path — and reports at the
    critical package's entry into the tainted chain.

    Fix: thread a seeded ``Generator`` down the call chain shown in
    the witness; the chain tells you exactly which helper needs the
    ``rng`` parameter.
    """

    rule_id = "CG011"
    name = "rng-stream-discipline"
    description = ("random draw without a named seeded stream is reachable "
                   "from serve/cluster/sim/faults; thread a Seed")

    critical_packages = DETERMINISM_PACKAGES
    remedy = ("thread a Seed through util.rng.as_rng/spawn_rngs instead "
              "of hidden global state")

    def _own_sites(self, node: str) -> list:
        if _is_rng_module(node.split("::", 1)[0]):
            return []
        return self.project.function(node).rng_draws

    def _taint_of(self, node: str) -> Optional[str]:
        sites = self._own_sites(node)
        return sites[0].desc if sites else None


@register_project
class WallClockTaint(_TaintRule):
    """CG012 — wall-clock values must not cross into ``sim/``.

    CG005 bans wall-clock reads *inside* ``sim/``; this generalises it
    across module boundaries: a function in ``sim/`` may not call —
    however indirectly — code that reads ``time.*`` or
    ``datetime.now()``.  Simulated timelines take time from the engine
    clock only; a laundered wall-clock read couples replay output to
    host load.

    Fix: pass sim-time (``engine.now``) into the helper chain the
    witness prints instead of letting it read the wall clock.
    """

    rule_id = "CG012"
    name = "no-wall-clock-taint-in-sim"
    description = ("wall-clock read reachable from sim/-clocked code; "
                   "use the engine clock")

    critical_packages = ("sim",)
    remedy = "take time from the engine clock instead"

    def _own_sites(self, node: str) -> list:
        # Direct reads inside sim/ are CG005's finding; here they only
        # mark the function tainted so callers get the cross-module
        # report.  Never double-report them.
        return []

    def _taint_of(self, node: str) -> Optional[str]:
        sites = self.project.function(node).clock_reads
        return sites[0].desc if sites else None


@register_project
class DigestCompleteness(ProjectRule):
    """CG013 — every emitted event dataclass reaches the fleet digest.

    An event dataclass (``@dataclass class FooEvent``) defined under
    ``faults``/``serve``/``sim`` exists to make a decision replayable;
    one that is never constructed inside a digest-bearing module (a
    module defining a ``digest()`` function) is a decision the replay
    check cannot see.  Either record it — construct it in the telemetry
    plane, like :class:`~repro.sim.telemetry.FaultEvent` and
    :class:`~repro.sim.telemetry.GatewayEvent` — or carry an explicit
    ``# lint: disable=CG013`` pragma stating why it is out of scope.

    Fix: either record the event class into the digest where it is
    constructed, or delete the dead event class.
    """

    rule_id = "CG013"
    name = "digest-completeness"
    description = ("event dataclass in faults/serve/sim never recorded "
                   "into the fleet digest")

    def check(self) -> None:
        digest_constructions: set = set()
        for mod in self.project.modules.values():
            if mod.defines_digest:
                digest_constructions |= mod.event_constructions
        for name in sorted(self.project.modules):
            mod = self.project.modules[name]
            if mod.package not in EVENT_PACKAGES:
                continue
            for event in mod.event_classes:
                if event.name in digest_constructions:
                    continue
                self.report(
                    mod, event.line, 1,
                    f"event dataclass {event.name!r} is never constructed "
                    f"in a digest-bearing module; record it into the fleet "
                    f"digest or pragma why it is exempt",
                )
