"""Shard-interference analysis and the certification rules (CG019–CG022).

ROADMAP item 1 splits the control plane into partitioned event streams
— one engine heap per shard, merged deterministically.  That split is
only sound for code the analyzer can *prove* partition-safe.  This
module is that proof: a static race detector over the name-resolved
call graph that walks forward from every **shard entry point** (a
function decorated ``@shard_entry("<group>")``, plus the conventional
``run``/``pump``/``dispatch``/``submit`` terminals under
``cluster``/``serve``) and classifies each reachable function:

``shard_local``
    reachable from a single shard *group* (one partitioned heap) and
    free of shared-state writes — safe to replicate per shard without
    coordination;
``shard_shared_read``
    reachable from two or more shard groups but still write-free —
    safe to share read-only across partitions;
``shard_interfering``
    can reach a module-/class-level state write — the static analogue
    of a data race; blocks partitioning until fixed or justified.

:func:`render_shard_plan` exports the classification as a sorted,
byte-stable ``shardplan.json`` certificate (schema ``cocg-shardplan/1``,
``cocg lint --shard-plan-out``) naming the partition-safe module set
and every blocking witness chain.  The runtime counterpart —
:func:`repro.util.effects.shard_entry` and
:func:`repro.sim.engine.validate_shard_plan` — cross-checks the shipped
certificate against the entry points actually registered at run time.

Four rules enforce the contract:

========  ==============================================================
CG019     cross-partition mutable reach: two distinct entry points both
          reach the same shared-state write (both witness chains shown)
CG020     merge-order fragility: an engine emit whose priority ties are
          broken by anything other than the documented band ownership
CG021     seed-stream partition leakage: a ``derive_seed`` namespace
          shared across entry points, or a raw literal-seed RNG
CG022     cross-shard digest writes: a telemetry/digest sink fed from
          more than one partition without a declared merge point
========  ==============================================================
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple
from weakref import WeakKeyDictionary

from repro.lint.dataflow import (
    CallGraph,
    Witness,
    build_call_graph,
    entry_chain,
    reach_from,
    reach_taints,
    render_chain,
)
from repro.lint.project import ModuleSummary, ProjectContext, ProjectRule
from repro.lint.registry import ANALYZER_VERSION, register_project

__all__ = [
    "SHARD_ENTRY_TERMINALS",
    "SHARD_ENTRY_PACKAGES",
    "SHARD_EXEMPT_PACKAGES",
    "DEFAULT_GROUP",
    "shard_family",
    "SHARD_CLASSES",
    "ShardAnalysis",
    "shard_analysis",
    "shard_entry_points",
    "render_shard_plan",
    "CrossPartitionMutableReach",
    "MergeOrderFragility",
    "SeedStreamPartitionLeakage",
    "CrossShardDigestWrite",
]

#: Terminal names that make a ``cluster``/``serve`` function a shard
#: entry point by convention: ``FleetExperiment.run``, the gateway
#: ``pump``, cluster ``dispatch``/``submit``.  An explicit
#: ``@shard_entry`` decoration anywhere also creates an entry.
SHARD_ENTRY_TERMINALS = frozenset({"run", "pump", "dispatch", "submit"})
SHARD_ENTRY_PACKAGES = ("cluster", "serve")

#: Packages whose in-package writes are the sanctioned exceptions:
#: ``obs`` *owns* the metrics registry (that is where shared aggregates
#: are supposed to live), and ``lint`` mutates its rule registries at
#: import time only.
SHARD_EXEMPT_PACKAGES = frozenset({"lint", "obs"})

#: Group assigned to conventional (undecorated) entry points.  Today's
#: tree is one partition; the next PR splits it per region by
#: decorating entries into distinct groups.
DEFAULT_GROUP = "fleet"


def shard_family(group: str) -> str:
    """The partition *family* of an entry group.

    Groups spell either a bare partition name (``"fleet"`` — its own
    family) or ``family:member`` (``"region:controller"``).  Entries
    whose groups share a family run on replicas of the same partition
    template — the regional shards of one fleet — so code reachable
    from several of them is still local to each replica's heap, never
    contended between heaps.  Locality (and rules CG019/CG022) is
    therefore judged per family, while the certificate's entry table
    keeps the full ``family:member`` spelling.
    """
    return group.split(":", 1)[0]

#: Classification lattice, best to worst.
SHARD_CLASSES = ("shard_local", "shard_shared_read", "shard_interfering")

#: Packages whose *emit sites* the merge-order rule skips: the engine
#: itself (``sim``) forwards caller-chosen priorities by design, and
#: the exempt packages never schedule fleet events.
_EMIT_EXEMPT_PACKAGES = frozenset({"sim"}) | SHARD_EXEMPT_PACKAGES


def shard_entry_points(project: ProjectContext) -> Dict[str, str]:
    """Every shard entry point, as ``node_id -> group``.

    Decorated entries (``@shard_entry("g")``) win over the conventional
    terminal-name rule; undecorated conventional entries default to
    :data:`DEFAULT_GROUP`.
    """
    entries: Dict[str, str] = {}
    for name in sorted(project.modules):
        mod = project.modules[name]
        for qual in sorted(mod.functions):
            fn = mod.functions[qual]
            node = f"{name}::{qual}"
            if fn.shard_entry is not None:
                entries[node] = fn.shard_entry
            elif (mod.package in SHARD_ENTRY_PACKAGES
                  and qual.split(".")[-1] in SHARD_ENTRY_TERMINALS):
                entries[node] = DEFAULT_GROUP
    return entries


class ShardAnalysis:
    """Reachability + interference facts for one project context.

    Construction runs one forward BFS per entry point (for per-entry
    witness chains) and one reverse BFS for write-interference; the
    CG019–CG022 rules and the certificate writer all query the same
    instance (share it via :func:`shard_analysis`).
    """

    def __init__(self, project: ProjectContext,
                 graph: Optional[CallGraph] = None):
        self.project = project
        self.graph = graph if graph is not None else build_call_graph(project)
        #: entry node id -> group name.
        self.entries: Dict[str, str] = shard_entry_points(project)
        #: entry node id -> forward parent pointers from that entry.
        self.entry_parents: Dict[str, Dict[str, Optional[str]]] = {}
        #: reachable node -> sorted entry node ids that reach it.
        self.reached_by: Dict[str, List[str]] = {}
        for entry in sorted(self.entries):
            parents = reach_from(self.graph, [entry])
            self.entry_parents[entry] = parents
            for node in parents:
                self.reached_by.setdefault(node, []).append(entry)
        for node in self.reached_by:
            self.reached_by[node].sort()
        #: node -> witness of the nearest reachable shared-state write
        #: (exempt packages' writes do not count).
        self.write_reach: Dict[str, Witness] = reach_taints(
            project, self.graph, self._own_write,
        )

    def _own_write(self, node: str) -> Optional[str]:
        mod = self.project.module_of(node)
        if mod.package in SHARD_EXEMPT_PACKAGES:
            return None
        sites = self.project.function(node).global_writes
        return sites[0].desc if sites else None

    def groups_of(self, node: str) -> Tuple[str, ...]:
        """Sorted distinct shard *families* whose entries reach ``node``.

        ``family:member`` groups collapse to their family
        (:func:`shard_family`): the members are replicas of one
        partition template, not partitions that can race each other.
        """
        return tuple(sorted({
            shard_family(self.entries[e])
            for e in self.reached_by.get(node, ())
        }))

    def classification(self, node: str) -> Optional[str]:
        """The shard class of a function (``None`` when unreachable).

        Locality is per shard *family*, not per entry function: two
        entries in the same family feed (replicas of) the same
        partitioned heap, so code they share is still local to that
        shard.
        """
        entries = self.reached_by.get(node)
        if not entries:
            return None
        if node in self.write_reach:
            return "shard_interfering"
        if len(self.groups_of(node)) > 1:
            return "shard_shared_read"
        return "shard_local"

    def chain_from(self, entry: str, node: str) -> List[str]:
        """The entry-to-function call chain (for witness printing)."""
        return entry_chain(self.entry_parents[entry], node)

    # -- priority bands (CG020) ----------------------------------------
    def priority_bands(self) -> Dict[int, List[Tuple[str, str, str]]]:
        """value -> sorted ``(package, module, constant)`` owners.

        A *band* is a module-level integer constant whose name contains
        ``PRIO`` (``LIFECYCLE_PRIORITY``, ``FAULT_PRIORITY``,
        ``_PRIO_SUBMIT``): the documented owners of the total order at
        that priority value.
        """
        bands: Dict[int, List[Tuple[str, str, str]]] = {}
        for name in sorted(self.project.modules):
            mod = self.project.modules[name]
            for const, value in sorted(mod.int_constants.items()):
                if "PRIO" in const.upper():
                    bands.setdefault(value, []).append(
                        (mod.package, name, const)
                    )
        for owners in bands.values():
            owners.sort()
        return bands

    def resolve_priority(self, mod: ModuleSummary,
                         ref: Optional[str]) -> Optional[int]:
        """Resolve a named emit priority to its constant value.

        The emitting module's own constants win; otherwise the name must
        resolve to one unambiguous value across the whole project
        (imported constants like ``LIFECYCLE_PRIORITY``).  ``None`` when
        the name is unknown or ambiguous.
        """
        if ref is None:
            return None
        if ref in mod.int_constants:
            return mod.int_constants[ref]
        values = {
            other.int_constants[ref]
            for other in self.project.modules.values()
            if ref in other.int_constants
        }
        return values.pop() if len(values) == 1 else None


#: One analysis per ProjectContext per run (the four rules and the
#: certificate writer all share it); weakly keyed so nothing outlives
#: the run.
_ANALYSIS_MEMO: "WeakKeyDictionary[ProjectContext, ShardAnalysis]" = (
    WeakKeyDictionary()
)


def shard_analysis(project: ProjectContext,
                   graph: Optional[CallGraph] = None) -> ShardAnalysis:
    """The (memoised) shard analysis for a project context."""
    analysis = _ANALYSIS_MEMO.get(project)
    if analysis is None or (graph is not None
                            and analysis.graph is not graph):
        analysis = ShardAnalysis(project, graph)
        _ANALYSIS_MEMO[project] = analysis
    return analysis


_CLASS_RANK = {cls: i for i, cls in enumerate(SHARD_CLASSES)}


def render_shard_plan(project: ProjectContext,
                      analysis: Optional[ShardAnalysis] = None) -> str:
    """The ``shardplan.json`` certificate text (sorted, byte-stable).

    Keys are ``module::qualname`` / dotted module names only — no
    absolute paths — so a double run, a cold-vs-warm cache pair, and
    two machines all produce identical bytes.  The certificate names
    every entry point with its group, classifies each reachable
    function, derives the worst class per module, lists the
    partition-safe module set, and records every blocking write with
    its witness chains.
    """
    analysis = analysis if analysis is not None else shard_analysis(project)
    functions: Dict[str, dict] = {}
    module_class: Dict[str, str] = {}
    module_counts: Dict[str, int] = {}
    for node in sorted(analysis.reached_by):
        cls = analysis.classification(node)
        if cls is None:
            continue
        functions[node] = {
            "class": cls,
            "groups": list(analysis.groups_of(node)),
            "entries": list(analysis.reached_by[node]),
        }
        module = node.split("::", 1)[0]
        module_counts[module] = module_counts.get(module, 0) + 1
        worst = module_class.get(module)
        if worst is None or _CLASS_RANK[cls] > _CLASS_RANK[worst]:
            module_class[module] = cls

    interfering: List[dict] = []
    for node in sorted(analysis.reached_by):
        fn = project.function(node)
        mod = project.module_of(node)
        if mod.package in SHARD_EXEMPT_PACKAGES or not fn.global_writes:
            continue
        entries = analysis.reached_by[node]
        for site in fn.global_writes:
            interfering.append({
                "function": node,
                "line": site.line,
                "site": site.desc,
                "entries": list(entries),
                "chains": [
                    render_chain(analysis.chain_from(e, node))
                    for e in entries[:2]
                ],
            })

    counts = {cls: 0 for cls in SHARD_CLASSES}
    for spec in functions.values():
        counts[spec["class"]] += 1
    payload = {
        "schema": "cocg-shardplan/1",
        "analyzer_version": ANALYZER_VERSION,
        "classes": list(SHARD_CLASSES),
        "entry_points": {
            node: {
                "group": group,
                "declared": project.function(node).shard_entry is not None,
            }
            for node, group in sorted(analysis.entries.items())
        },
        "functions": functions,
        "modules": {
            module: {
                "class": module_class[module],
                "reachable_functions": module_counts[module],
            }
            for module in sorted(module_class)
        },
        "partition_safe_modules": sorted(
            module for module, cls in module_class.items()
            if cls != "shard_interfering"
        ),
        "interfering": interfering,
        "counts": {
            "entry_points": len(analysis.entries),
            "groups": len(set(analysis.entries.values())),
            "families": len({
                shard_family(g) for g in analysis.entries.values()
            }),
            "reachable_functions": len(functions),
            "modules": len(module_class),
            "partition_safe_modules": sum(
                1 for cls in module_class.values()
                if cls != "shard_interfering"
            ),
            **counts,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# ---------------------------------------------------------------------------
# CG019 — cross-partition mutable reach


@register_project
class CrossPartitionMutableReach(ProjectRule):
    """Two distinct shard entry points must not reach the same write.

    This is the static analogue of a data race: once the control plane
    is partitioned, a module-/class-level write reachable from two
    entry points means two shards mutate the same state, and the
    interleaving — hence the fleet digest — becomes schedule-dependent.
    CG015 already flags any entry-reachable write; this rule upgrades
    the finding when *multiple* entries converge on one write site and
    prints both witness chains, because that is the pair of code paths
    the next PR would actually race against each other.

    Fix: move the state onto a per-shard instance, pass it explicitly
    down one of the two chains shown, or route the aggregate through
    the metrics registry (``repro.obs``).  ``# lint: disable=CG019``
    only with a stated proof that the write is idempotent or the
    entries can never run on distinct shards.
    """

    rule_id = "CG019"
    name = "cross-partition-mutable-reach"
    description = (
        "two shard entry points reach the same module/class-state write"
    )

    def check(self) -> None:
        analysis = shard_analysis(self.project)
        for node in sorted(analysis.reached_by):
            mod = self.project.module_of(node)
            if mod.package in SHARD_EXEMPT_PACKAGES:
                continue
            fn = self.project.function(node)
            if not fn.global_writes:
                continue
            entries = analysis.reached_by[node]
            if len(entries) < 2:
                continue
            first, second = entries[0], entries[1]
            chains = (
                render_chain(analysis.chain_from(first, node)),
                render_chain(analysis.chain_from(second, node)),
            )
            for site in fn.global_writes:
                self.report(
                    mod, site.line, site.col,
                    f"{site.desc} in {fn.qualname}() is reachable from "
                    f"{len(entries)} shard entry points -- a static race "
                    f"once streams are partitioned "
                    f"(chain 1: {chains[0]}; chain 2: {chains[1]}); "
                    f"keep the state per-shard or merge through the "
                    f"metrics registry",
                )


# ---------------------------------------------------------------------------
# CG020 — merge-order fragility


@register_project
class MergeOrderFragility(ProjectRule):
    """Engine emits must keep priority ties deterministically ordered.

    Events sort by ``(time, priority, seq)``.  Within one heap the
    ``seq`` tie-break is total; across *partitioned* heaps it is not —
    two shards emitting at the same ``(time, priority)`` merge in an
    order nothing defines.  The tree therefore documents band
    ownership: every named ``*PRIO*`` constant
    (``FAULT_PRIORITY = -100``, ``LIFECYCLE_PRIORITY = -50``, the
    ``_PRIO_*`` ladder) owns its value.  An entry-reachable emit is
    fragile when its priority is (a) not statically resolvable — the
    merge order cannot be proven at all — or (b) collides with a band
    constant owned by a *different* package without referencing it by
    name.  The engine's default band (no ``priority=`` argument) is
    exempt: ties there are broken by the documented per-shard FIFO.

    Fix: reference the owning constant by name (import it), pick an
    unused band value, or hoist a dynamic priority into a module-level
    constant.  ``# lint: disable=CG020`` only with a stated proof that
    the two emitters can never tie at the same time.
    """

    rule_id = "CG020"
    name = "merge-order-fragility"
    description = (
        "engine emit priority is dynamic or collides with a band "
        "owned by another package"
    )

    def check(self) -> None:
        analysis = shard_analysis(self.project)
        bands = analysis.priority_bands()
        for node in sorted(analysis.reached_by):
            mod = self.project.module_of(node)
            if mod.package in _EMIT_EXEMPT_PACKAGES:
                continue
            fn = self.project.function(node)
            for site in fn.engine_emits:
                if not site.explicit:
                    continue
                value = (site.priority if site.priority is not None
                         else analysis.resolve_priority(mod, site.ref))
                if value is None:
                    shown = (f"name {site.ref!r}" if site.ref is not None
                             else "a dynamic expression")
                    self.report(
                        mod, site.line, site.col,
                        f"{site.desc.split(' ')[0]} in {fn.qualname}() "
                        f"uses {shown} as its priority, which the "
                        f"analyzer cannot resolve to a constant; "
                        f"partitioned heaps cannot prove the merge order "
                        f"-- hoist it into a module-level *_PRIORITY "
                        f"constant",
                    )
                    continue
                foreign = [
                    (pkg, owner_mod, const)
                    for pkg, owner_mod, const in bands.get(value, ())
                    if pkg != mod.package and const != site.ref
                ]
                if foreign:
                    pkg, owner_mod, const = foreign[0]
                    self.report(
                        mod, site.line, site.col,
                        f"{site.desc.split(' ')[0]} in {fn.qualname}() "
                        f"emits at priority {value}, colliding with "
                        f"{owner_mod}.{const} = {value} owned by package "
                        f"'{pkg}'; cross-partition ties at that band "
                        f"have no documented order -- import the owning "
                        f"constant or pick an unused band",
                    )


# ---------------------------------------------------------------------------
# CG021 — seed-stream partition leakage


@register_project
class SeedStreamPartitionLeakage(ProjectRule):
    """Seed namespaces must not leak across partitions.

    ``derive_seed(seed, "<ns>", ...)`` is the only sanctioned way to
    mint an RNG stream: the namespace string partitions the seed space.
    Two hazards break that once streams are sharded: (a) two *modules*
    on entry-reachable paths deriving from the same namespace — their
    shards draw correlated randomness and replay diverges the moment
    one side adds a draw; (b) an RNG built from a raw integer literal
    (``as_rng(7)``), which bypasses ``derive_seed`` entirely and gives
    every shard the identical stream.

    Fix: give each module its own namespace string (they are free);
    for raw seeds, thread the run seed through
    ``derive_seed(seed, "<ns>", ...)`` instead of a literal.
    ``# lint: disable=CG021`` only for provably shard-local helpers.
    """

    rule_id = "CG021"
    name = "seed-stream-partition-leakage"
    description = (
        "derive_seed namespace shared across shard entry points, or a "
        "raw literal-seed RNG on an entry path"
    )

    def check(self) -> None:
        analysis = shard_analysis(self.project)
        # namespace -> sorted list of (module name, node, site).
        by_namespace: Dict[str, List[Tuple[str, str, object]]] = {}
        for node in sorted(analysis.reached_by):
            mod = self.project.module_of(node)
            if mod.package in SHARD_EXEMPT_PACKAGES:
                continue
            fn = self.project.function(node)
            for seed_site in fn.seed_derivations:
                if seed_site.namespace is not None:
                    by_namespace.setdefault(seed_site.namespace, []).append(
                        (mod.module, node, seed_site)
                    )
            for raw in fn.raw_seed_sites:
                entry = analysis.reached_by[node][0]
                chain = render_chain(analysis.chain_from(entry, node))
                self.report(
                    mod, raw.line, raw.col,
                    f"{raw.desc} in {fn.qualname}(), reachable from shard "
                    f"entry point {entry.replace('::', ':')} "
                    f"(chain: {chain}); every shard would draw the "
                    f"identical stream -- derive it with "
                    f"derive_seed(seed, '<ns>', ...) instead",
                )
        for namespace in sorted(by_namespace):
            sites = by_namespace[namespace]
            modules = sorted({m for m, _, _ in sites})
            if len(modules) < 2:
                continue
            entries = sorted({
                e for _, node, _ in sites
                for e in analysis.reached_by[node]
            })
            if len(entries) < 2:
                continue
            for mod_name, node, seed_site in sites:
                mod = self.project.modules[mod_name]
                others = [m for m in modules if m != mod_name]
                self.report(
                    mod, seed_site.line, seed_site.col,
                    f"derive_seed namespace {namespace!r} in "
                    f"{self.project.function(node).qualname}() is also "
                    f"used by module(s) {', '.join(others)} on "
                    f"entry-reachable paths "
                    f"({len(entries)} entry points); shards would draw "
                    f"correlated streams -- pick a unique namespace per "
                    f"module",
                )


# ---------------------------------------------------------------------------
# CG022 — cross-shard digest writes


@register_project
class CrossShardDigestWrite(ProjectRule):
    """Digest sinks fed from multiple partitions need a merge point.

    The fleet digest is the replay oracle: its bytes must be a pure
    function of (seed, fault plan).  When telemetry ``record*`` sites
    are reachable from entry points in *different shard groups*, the
    record interleaving depends on cross-shard scheduling — unless the
    writes funnel through one function marked
    ``@shard_merge_point`` (:mod:`repro.util.effects`), the declared
    place where per-shard streams join in a defined order.

    Fix: route the cross-shard records through a merge-marked
    aggregation function (one per digest), or split the sink per shard
    and merge digests after the run.  ``# lint: disable=CG022`` only
    when the sink is provably append-ordered by sim time alone.
    """

    rule_id = "CG022"
    name = "cross-shard-digest-write"
    description = (
        "telemetry/digest sink fed from more than one shard group "
        "without a declared merge point"
    )

    def check(self) -> None:
        analysis = shard_analysis(self.project)
        for node in sorted(analysis.reached_by):
            mod = self.project.module_of(node)
            if mod.package in SHARD_EXEMPT_PACKAGES:
                continue
            fn = self.project.function(node)
            if not fn.digest_writes:
                continue
            groups = analysis.groups_of(node)
            if len(groups) < 2:
                continue
            # One merge-marked frame on the chain from *every* group
            # legitimises the join; pick the sorted-first entry per
            # group as its representative chain.
            chains: List[List[str]] = []
            merged_everywhere = True
            for group in groups:
                entry = next(
                    e for e in analysis.reached_by[node]
                    if shard_family(analysis.entries[e]) == group
                )
                chain = analysis.chain_from(entry, node)
                chains.append(chain)
                if not any(self.project.function(n).shard_merge
                           for n in chain):
                    merged_everywhere = False
            if merged_everywhere:
                continue
            shown = "; ".join(
                f"chain {i + 1}: {render_chain(c)}"
                for i, c in enumerate(chains[:2])
            )
            for site in fn.digest_writes:
                self.report(
                    mod, site.line, site.col,
                    f"{site.desc} in {fn.qualname}() is fed from "
                    f"{len(groups)} shard groups "
                    f"({', '.join(groups)}) with no @shard_merge_point "
                    f"on the path ({shown}); declare the merge point "
                    f"where the per-shard streams join",
                )
