"""Whole-program context: per-module summaries and the project graph.

The per-file phase (:mod:`repro.lint.engine` running the CG001–CG009
rules) sees one AST at a time, so it structurally cannot catch an
unseeded RNG draw laundered through two helper calls into ``serve/``,
or a ``set`` iteration whose order reaches the fleet digest via a
callee in another module.  The whole-program phase closes that gap in
two steps:

1. Each parsed module is distilled into a :class:`ModuleSummary` — its
   imports, top-level definitions, a conservative per-function call
   list, and the *determinism facts* the CG010–CG013 rules consume
   (global-RNG draws, wall-clock reads, unordered-collection
   iterations, event dataclasses, digest definitions).  Summaries are
   plain data (:meth:`ModuleSummary.to_dict` round-trips through JSON)
   so the incremental cache can persist them and warm runs skip
   re-parsing unchanged files entirely.

2. A :class:`ProjectContext` aggregates every summary into the module
   graph and a project-wide function index, over which
   :mod:`repro.lint.dataflow` runs taint/reachability queries.

A :class:`ProjectRule` is the whole-program analogue of
:class:`~repro.lint.registry.Rule`: it is constructed once per run with
the :class:`ProjectContext` and reports findings against any module,
honouring that module's pragma table.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.pragmas import Suppressions

__all__ = [
    "CallSite",
    "TaintSite",
    "EmitSite",
    "SeedSite",
    "UnorderedLoop",
    "EventClass",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectContext",
    "ProjectRule",
    "module_name_from_parts",
    "summarize_module",
]

#: Pseudo-function holding a module's top-level statements.
MODULE_BODY = "<module>"

#: Call terminals too generic to resolve by name across the project —
#: edges through these would connect everything to everything.
_CALL_STOPLIST = frozenset({
    "append", "extend", "add", "remove", "discard", "pop", "popleft",
    "clear", "copy", "update", "get", "setdefault", "items", "keys",
    "values", "index", "count", "sort", "reverse", "join", "split",
    "strip", "format", "encode", "decode", "startswith", "endswith",
    "replace", "lower", "upper", "len", "print", "range", "int",
    "float", "str", "bool", "list", "dict", "set", "tuple", "frozenset",
    "sorted", "reversed", "min", "max", "sum", "abs", "round", "zip",
    "map", "filter", "enumerate", "isinstance", "issubclass", "hasattr",
    "getattr", "setattr", "repr", "type", "next", "iter", "super",
    "ValueError", "TypeError", "KeyError", "RuntimeError", "Exception",
})

#: Wrapping one of these around an iterable makes its order irrelevant
#: (``sorted``) or its consumption order-insensitive (aggregations).
_ORDER_SANITIZERS = frozenset({
    "sorted", "sum", "min", "max", "any", "all", "len",
    "set", "frozenset", "Counter",
})

_WALL_CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
    "localtime", "gmtime", "ctime",
})
_DATETIME_CLASS_FNS = frozenset({"now", "utcnow", "today"})

_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})
_STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})

#: Method terminals that schedule simulation-engine events when called
#: on an object (``engine.at/after/every``) — the ``engine_emit`` seed.
_ENGINE_EMIT_METHODS = frozenset({"at", "after", "every"})

#: Method terminals that record into the replay digest / telemetry
#: plane — the ``digest_write`` seed.
_DIGEST_WRITE_METHODS = frozenset({
    "record", "record_second", "record_fault_event", "record_gateway_event",
})

#: Call terminals that perform file or console I/O — the ``io`` seed.
_IO_TERMINALS = frozenset({
    "open", "print", "input",
    "write_text", "read_text", "write_bytes", "read_bytes",
})

#: Container-mutating method terminals: calling one on a module- or
#: class-level name is a ``global_write``.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "add", "insert", "update",
    "setdefault", "pop", "popleft", "popitem", "remove", "discard",
    "clear", "sort", "reverse",
})


def module_name_from_parts(rel_parts: Tuple[str, ...]) -> str:
    """Dotted module name relative to the ``repro`` package root.

    ``("serve", "gateway.py")`` → ``"serve.gateway"``;
    ``("serve", "__init__.py")`` → ``"serve"``; a bare ``("cli.py",)``
    → ``"cli"``.
    """
    parts = list(rel_parts)
    if parts and parts[-1].endswith(".py"):
        stem = parts[-1][:-3]
        parts = parts[:-1] if stem == "__init__" else parts[:-1] + [stem]
    return ".".join(parts) if parts else "<root>"


@dataclass(frozen=True)
class CallSite:
    """One call expression: the terminal name and where it happens.

    ``on_self`` marks ``self.name(...)`` calls — the call graph resolves
    those against the enclosing class first instead of every project
    function sharing the terminal name.
    """

    name: str
    line: int
    on_self: bool = False

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {"name": self.name, "line": self.line, "on_self": self.on_self}

    @classmethod
    def from_dict(cls, d: dict) -> "CallSite":
        """Inverse of :meth:`to_dict`."""
        return cls(name=d["name"], line=int(d["line"]),
                   on_self=bool(d.get("on_self", False)))


@dataclass(frozen=True)
class TaintSite:
    """A determinism hazard inside a function (RNG draw / clock read)."""

    line: int
    col: int
    desc: str

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {"line": self.line, "col": self.col, "desc": self.desc}

    @classmethod
    def from_dict(cls, d: dict) -> "TaintSite":
        """Inverse of :meth:`to_dict`."""
        return cls(line=int(d["line"]), col=int(d["col"]), desc=d["desc"])


@dataclass(frozen=True)
class EmitSite:
    """One engine ``at``/``after``/``every`` call and its priority.

    The priority is resolved as far as the AST allows:

    * kwarg absent → ``priority=0`` (the documented default band),
      ``explicit=False``;
    * integer literal (incl. unary minus) → ``priority=<value>``;
    * a bare/dotted name → ``ref=<terminal name>`` with ``priority``
      ``None`` — the shard analyzer resolves it against module-level
      integer constants;
    * anything else → ``priority=None`` and ``ref=None`` with
      ``explicit=True``: a dynamic priority the merge order cannot be
      proven for (rule CG020).
    """

    line: int
    col: int
    desc: str
    priority: Optional[int] = 0
    ref: Optional[str] = None
    explicit: bool = False

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {"line": self.line, "col": self.col, "desc": self.desc,
                "priority": self.priority, "ref": self.ref,
                "explicit": self.explicit}

    @classmethod
    def from_dict(cls, d: dict) -> "EmitSite":
        """Inverse of :meth:`to_dict`."""
        priority = d.get("priority", 0)
        return cls(line=int(d["line"]), col=int(d["col"]), desc=d["desc"],
                   priority=int(priority) if priority is not None else None,
                   ref=d.get("ref"), explicit=bool(d.get("explicit", False)))


@dataclass(frozen=True)
class SeedSite:
    """One ``derive_seed(seed, "<namespace>", ...)`` call site.

    ``namespace`` is the first name argument when it is a string
    literal, ``None`` when it is computed (dynamic namespaces cannot be
    checked for cross-shard collisions, but they also cannot collide
    *statically*, so CG021 skips them).
    """

    line: int
    col: int
    namespace: Optional[str]

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {"line": self.line, "col": self.col,
                "namespace": self.namespace}

    @classmethod
    def from_dict(cls, d: dict) -> "SeedSite":
        """Inverse of :meth:`to_dict`."""
        return cls(line=int(d["line"]), col=int(d["col"]),
                   namespace=d.get("namespace"))


@dataclass(frozen=True)
class UnorderedLoop:
    """One iteration over an unordered (or order-fragile) collection."""

    line: int
    col: int
    kind: str  # "set" | "dict"
    desc: str

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {"line": self.line, "col": self.col,
                "kind": self.kind, "desc": self.desc}

    @classmethod
    def from_dict(cls, d: dict) -> "UnorderedLoop":
        """Inverse of :meth:`to_dict`."""
        return cls(line=int(d["line"]), col=int(d["col"]),
                   kind=d["kind"], desc=d["desc"])


@dataclass(frozen=True)
class EventClass:
    """An event dataclass definition (``class FooEvent`` + ``@dataclass``)."""

    name: str
    line: int

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {"name": self.name, "line": self.line}

    @classmethod
    def from_dict(cls, d: dict) -> "EventClass":
        """Inverse of :meth:`to_dict`."""
        return cls(name=d["name"], line=int(d["line"]))


@dataclass
class FunctionSummary:
    """What one function does, as far as the project rules care.

    The effect facts (``global_writes``, ``engine_emits``,
    ``digest_writes``, ``io_sites``, together with ``rng_draws`` and
    ``clock_reads``) seed the per-effect fixpoint in
    :mod:`repro.lint.effects`; ``declared_effects``/``hot_path`` mirror
    a static ``@effects(...)`` decoration
    (:mod:`repro.util.effects`).
    """

    qualname: str
    line: int
    calls: List[CallSite] = field(default_factory=list)
    rng_draws: List[TaintSite] = field(default_factory=list)
    #: draws from a *seeded, named* stream (``rng.normal(...)``,
    #: ``self._rng.choice(...)``) — fine for CG011, but still the
    #: ``rng`` effect for the effect system.
    stream_draws: List[TaintSite] = field(default_factory=list)
    clock_reads: List[TaintSite] = field(default_factory=list)
    unordered_loops: List[UnorderedLoop] = field(default_factory=list)
    global_writes: List[TaintSite] = field(default_factory=list)
    engine_emits: List[EmitSite] = field(default_factory=list)
    digest_writes: List[TaintSite] = field(default_factory=list)
    io_sites: List[TaintSite] = field(default_factory=list)
    #: ``derive_seed(...)`` call sites with their namespace literals.
    seed_derivations: List[SeedSite] = field(default_factory=list)
    #: ``as_rng(7)`` / ``default_rng(7)`` — RNG built from a literal
    #: seed, bypassing ``derive_seed`` namespacing (rule CG021).
    raw_seed_sites: List[TaintSite] = field(default_factory=list)
    #: ``None`` = undeclared; otherwise the sorted declared effect names.
    declared_effects: Optional[List[str]] = None
    hot_path: bool = False
    #: ``@shard_entry("<group>")`` decoration, statically read.
    shard_entry: Optional[str] = None
    #: ``@shard_merge_point`` decoration, statically read.
    shard_merge: bool = False

    def to_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "qualname": self.qualname,
            "line": self.line,
            "calls": [c.to_dict() for c in self.calls],
            "rng_draws": [t.to_dict() for t in self.rng_draws],
            "stream_draws": [t.to_dict() for t in self.stream_draws],
            "clock_reads": [t.to_dict() for t in self.clock_reads],
            "unordered_loops": [u.to_dict() for u in self.unordered_loops],
            "global_writes": [t.to_dict() for t in self.global_writes],
            "engine_emits": [t.to_dict() for t in self.engine_emits],
            "digest_writes": [t.to_dict() for t in self.digest_writes],
            "io_sites": [t.to_dict() for t in self.io_sites],
            "seed_derivations": [s.to_dict() for s in self.seed_derivations],
            "raw_seed_sites": [t.to_dict() for t in self.raw_seed_sites],
            "declared_effects": self.declared_effects,
            "hot_path": self.hot_path,
            "shard_entry": self.shard_entry,
            "shard_merge": self.shard_merge,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "FunctionSummary":
        """Inverse of :meth:`to_dict`."""
        return cls(
            qualname=d["qualname"],
            line=int(d["line"]),
            calls=[CallSite.from_dict(c) for c in d["calls"]],
            rng_draws=[TaintSite.from_dict(t) for t in d["rng_draws"]],
            stream_draws=[TaintSite.from_dict(t)
                          for t in d.get("stream_draws", [])],
            clock_reads=[TaintSite.from_dict(t) for t in d["clock_reads"]],
            unordered_loops=[UnorderedLoop.from_dict(u)
                             for u in d["unordered_loops"]],
            global_writes=[TaintSite.from_dict(t)
                           for t in d.get("global_writes", [])],
            engine_emits=[EmitSite.from_dict(t)
                          for t in d.get("engine_emits", [])],
            digest_writes=[TaintSite.from_dict(t)
                           for t in d.get("digest_writes", [])],
            io_sites=[TaintSite.from_dict(t) for t in d.get("io_sites", [])],
            seed_derivations=[SeedSite.from_dict(s)
                              for s in d.get("seed_derivations", [])],
            raw_seed_sites=[TaintSite.from_dict(t)
                            for t in d.get("raw_seed_sites", [])],
            declared_effects=(list(d["declared_effects"])
                              if d.get("declared_effects") is not None
                              else None),
            hot_path=bool(d.get("hot_path", False)),
            shard_entry=d.get("shard_entry"),
            shard_merge=bool(d.get("shard_merge", False)),
        )


@dataclass
class ModuleSummary:
    """One module's contribution to the whole-program analysis."""

    module: str
    path: str
    rel_parts: Tuple[str, ...]
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    imported_modules: Set[str] = field(default_factory=set)
    #: imported module -> first line it is imported on (for findings).
    import_lines: Dict[str, int] = field(default_factory=dict)
    #: imports that only exist under ``if TYPE_CHECKING:`` — erased at
    #: runtime, so exempt from the layering rule (CG017).
    type_only_imports: Set[str] = field(default_factory=set)
    event_classes: List[EventClass] = field(default_factory=list)
    event_constructions: Set[str] = field(default_factory=set)
    defines_digest: bool = False
    #: module-level ``NAME = <int>`` bindings — the shard analyzer
    #: resolves named emit priorities (``priority=LIFECYCLE_PRIORITY``)
    #: against these without importing the module.
    int_constants: Dict[str, int] = field(default_factory=dict)
    suppressions: Suppressions = field(default_factory=Suppressions)

    @property
    def package(self) -> str:
        """Top-level subpackage the module lives in (``""`` at root)."""
        return self.rel_parts[0] if len(self.rel_parts) > 1 else ""

    def to_dict(self) -> dict:
        """JSON-serialisable view (for the incremental cache)."""
        return {
            "module": self.module,
            "path": self.path,
            "rel_parts": list(self.rel_parts),
            "functions": {q: f.to_dict() for q, f in self.functions.items()},
            "imported_modules": sorted(self.imported_modules),
            "import_lines": {m: self.import_lines[m]
                             for m in sorted(self.import_lines)},
            "type_only_imports": sorted(self.type_only_imports),
            "event_classes": [e.to_dict() for e in self.event_classes],
            "event_constructions": sorted(self.event_constructions),
            "defines_digest": self.defines_digest,
            "int_constants": {k: self.int_constants[k]
                              for k in sorted(self.int_constants)},
            "suppressions": {
                "file_level": sorted(self.suppressions.file_level),
                "by_line": {str(k): sorted(v)
                            for k, v in self.suppressions.by_line.items()},
            },
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleSummary":
        """Inverse of :meth:`to_dict`."""
        sup = Suppressions(
            file_level=set(d["suppressions"]["file_level"]),
            by_line={int(k): set(v)
                     for k, v in d["suppressions"]["by_line"].items()},
        )
        return cls(
            module=d["module"],
            path=d["path"],
            rel_parts=tuple(d["rel_parts"]),
            functions={q: FunctionSummary.from_dict(f)
                       for q, f in d["functions"].items()},
            imported_modules=set(d["imported_modules"]),
            import_lines={m: int(line)
                          for m, line in d.get("import_lines", {}).items()},
            type_only_imports=set(d.get("type_only_imports", [])),
            event_classes=[EventClass.from_dict(e)
                           for e in d["event_classes"]],
            event_constructions=set(d["event_constructions"]),
            defines_digest=bool(d["defines_digest"]),
            int_constants={k: int(v)
                           for k, v in d.get("int_constants", {}).items()},
            suppressions=sup,
        )


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ImportTable:
    """Module-level import aliases relevant to RNG/clock detection."""

    def __init__(self, tree: ast.Module):
        self.numpy: Set[str] = set()
        self.np_random: Set[str] = set()
        self.stdlib_random: Set[str] = set()
        self.time: Set[str] = set()
        self.datetime_mod: Set[str] = set()
        self.datetime_cls: Set[str] = set()
        #: bare names from-imported from the random modules that draw
        #: from global state when called.
        self.random_fns: Set[str] = set()
        #: bare names that are wall-clock reads when called.
        self.clock_fns: Set[str] = set()
        #: bare names bound to numpy's default_rng / repro's as_rng.
        self.rng_ctors: Set[str] = set()
        self.modules: Set[str] = set()
        #: module -> first line it is imported on.
        self.module_lines: Dict[str, int] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for target in (
                    [alias.name for alias in node.names]
                    if isinstance(node, ast.Import)
                    else ([node.module] if node.module else [])
                ):
                    if target not in self.module_lines:
                        self.module_lines[target] = node.lineno
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules.add(alias.name)
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self.np_random.add(alias.asname)
                        else:
                            self.numpy.add(bound)
                    elif alias.name == "random":
                        self.stdlib_random.add(bound)
                    elif alias.name == "time":
                        self.time.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        self.datetime_mod.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module:
                    self.modules.add(node.module)
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if node.module == "random":
                        if alias.name not in _STDLIB_RANDOM_ALLOWED:
                            self.random_fns.add(bound)
                    elif node.module == "numpy.random":
                        if alias.name == "default_rng":
                            self.rng_ctors.add(bound)
                        elif alias.name not in _NP_RANDOM_ALLOWED:
                            self.random_fns.add(bound)
                    elif node.module == "numpy" and alias.name == "random":
                        self.np_random.add(bound)
                    elif node.module == "time":
                        if alias.name in _WALL_CLOCK_FNS:
                            self.clock_fns.add(bound)
                    elif node.module == "datetime":
                        if alias.name in ("datetime", "date"):
                            self.datetime_cls.add(bound)
                    elif node.module is not None and (
                        node.module == "repro.util.rng"
                        or node.module.endswith("util.rng")
                    ):
                        if alias.name == "as_rng":
                            self.rng_ctors.add(bound)


def _type_only_imports(tree: ast.Module) -> Set[str]:
    """Modules imported *only* under a top-level ``if TYPE_CHECKING:``."""

    def collect(stmts: List[ast.stmt]) -> Set[str]:
        found: Set[str] = set()
        for stmt in stmts:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Import):
                    found.update(alias.name for alias in node.names)
                elif isinstance(node, ast.ImportFrom) and node.module:
                    found.add(node.module)
        return found

    guarded: Set[str] = set()
    runtime: Set[str] = set()
    for stmt in tree.body:
        test = getattr(stmt, "test", None)
        is_guard = isinstance(stmt, ast.If) and (
            (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING")
            or (isinstance(test, ast.Attribute)
                and test.attr == "TYPE_CHECKING")
        )
        if is_guard:
            guarded |= collect(stmt.body)
        else:
            runtime |= collect([stmt])
    return guarded - runtime


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names bound by assignments in the module body (shared state)."""
    names: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Tuple):
                names.update(e.id for e in target.elts
                             if isinstance(e, ast.Name))
    return names


def _const_int(node: ast.expr) -> Optional[int]:
    """The integer value of a literal (incl. unary minus), else ``None``.

    ``True``/``False`` are deliberately excluded: a ``priority=True``
    emit or ``as_rng(False)`` is not a numeric band / seed literal.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_int(node.operand)
        return -inner if inner is not None else None
    if (isinstance(node, ast.Constant)
            and isinstance(node.value, int)
            and not isinstance(node.value, bool)):
        return node.value
    return None


def _module_int_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int literal>`` bindings."""
    out: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target: ast.expr = stmt.targets[0]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
            value = stmt.value
        else:
            continue
        if not isinstance(target, ast.Name):
            continue
        const = _const_int(value)
        if const is not None:
            out[target.id] = const
    return out


def _root_name(node: ast.expr) -> Optional[str]:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class _Summarizer(ast.NodeVisitor):
    """One pass over a module AST producing its :class:`ModuleSummary`."""

    def __init__(self, summary: ModuleSummary, imports: _ImportTable,
                 tree: ast.Module):
        self.summary = summary
        self.imports = imports
        self._class_stack: List[str] = []
        self._fn_stack: List[FunctionSummary] = []
        body = FunctionSummary(qualname=MODULE_BODY, line=1)
        summary.functions[MODULE_BODY] = body
        self._module_body = body
        #: AST node ids whose iteration order was sanitised by a wrapper
        #: (``sorted(x.items())``) — skipped by the unordered check.
        self._sanitized: Set[int] = set()
        #: per-function map of local names to "set"/"dict" inferred from
        #: simple assignments.
        self._local_kinds: List[Dict[str, str]] = [{}]
        #: names bound at module level — a store through one of these
        #: from inside a function is shared-state mutation.
        self._module_names: Set[str] = _module_level_names(tree)
        #: classes defined anywhere in the module (``Cls.attr = v``).
        self._class_names: Set[str] = {
            node.name for node in ast.walk(tree)
            if isinstance(node, ast.ClassDef)
        }

    # -- scope bookkeeping ---------------------------------------------
    @property
    def _fn(self) -> FunctionSummary:
        return self._fn_stack[-1] if self._fn_stack else self._module_body

    def _enter_function(self, node: ast.AST, name: str) -> None:
        qual = ".".join(self._class_stack + [name])
        fn = FunctionSummary(qualname=qual, line=node.lineno)
        self.summary.functions[qual] = fn
        self._fn_stack.append(fn)
        self._local_kinds.append({})

    def _leave_function(self) -> None:
        self._fn_stack.pop()
        self._local_kinds.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    @staticmethod
    def _effects_decoration(
        node: ast.AST,
    ) -> Tuple[bool, Optional[List[str]], bool]:
        """Parse a decorator: ``(is_effects, declared_names, hot_path)``.

        Matches ``@effects(...)`` by terminal name — the decorator is
        designed to be introspected statically, so the analyzer never
        imports the decorated module.
        """
        if not (isinstance(node, ast.Call)
                and (_dotted(node.func) or "").split(".")[-1] == "effects"):
            return False, None, False
        declared = sorted({
            arg.value for arg in node.args
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
        })
        hot = any(
            kw.arg == "hot_path"
            and isinstance(kw.value, ast.Constant) and bool(kw.value.value)
            for kw in node.keywords
        )
        return True, declared, hot

    @staticmethod
    def _shard_decoration(
        node: ast.AST,
    ) -> Tuple[Optional[str], bool]:
        """Parse ``@shard_entry("g")`` / ``@shard_merge_point``.

        Returns ``(group, is_merge)``; ``(None, False)`` when the
        decorator is neither marker.  Matched by terminal name, like
        ``@effects(...)`` — the analyzer never imports the module.
        """
        if isinstance(node, ast.Call):
            terminal = (_dotted(node.func) or "").split(".")[-1]
            if terminal == "shard_entry":
                group = next(
                    (arg.value for arg in node.args
                     if isinstance(arg, ast.Constant)
                     and isinstance(arg.value, str)),
                    None,
                ) or next(
                    (kw.value.value for kw in node.keywords
                     if kw.arg == "group"
                     and isinstance(kw.value, ast.Constant)
                     and isinstance(kw.value.value, str)),
                    None,
                )
                if group is not None:
                    return group, False
            if terminal == "shard_merge_point":
                return None, True
            return None, False
        terminal = (_dotted(node) or "").split(".")[-1]
        if terminal == "shard_merge_point":
            return None, True
        return None, False

    def _handle_function(self, node: ast.AST) -> None:
        name = node.name  # type: ignore[attr-defined]
        if name == "digest":
            self.summary.defines_digest = True
        declared: Optional[List[str]] = None
        hot = False
        shard_group: Optional[str] = None
        shard_merge = False
        for dec in node.decorator_list:  # type: ignore[attr-defined]
            is_effects, names, dec_hot = self._effects_decoration(dec)
            if is_effects:
                declared, hot = names, hot or dec_hot
                continue
            group, is_merge = self._shard_decoration(dec)
            if group is not None or is_merge:
                shard_group = group if group is not None else shard_group
                shard_merge = shard_merge or is_merge
            else:
                # Decorators execute at import time: attribute their
                # calls (e.g. ``@register``) to the enclosing scope, not
                # to the function they decorate.
                self.visit(dec)
        self._enter_function(node, name)
        self._fn.declared_effects = declared
        self._fn.hot_path = hot
        self._fn.shard_entry = shard_group
        self._fn.shard_merge = shard_merge
        self.visit(node.args)  # type: ignore[attr-defined]
        for stmt in node.body:  # type: ignore[attr-defined]
            self.visit(stmt)
        self._leave_function()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.name.endswith("Event") and any(
            _dotted(d.func if isinstance(d, ast.Call) else d) in
            ("dataclass", "dataclasses.dataclass")
            for d in node.decorator_list
        ):
            self.summary.event_classes.append(
                EventClass(name=node.name, line=node.lineno)
            )
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    # -- unordered-collection iteration --------------------------------
    @staticmethod
    def _is_set_construct(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            callee = _dotted(node.func)
            return callee in ("set", "frozenset")
        return False

    @staticmethod
    def _is_dict_construct(node: ast.expr) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return True
        if isinstance(node, ast.Call):
            return _dotted(node.func) == "dict"
        return False

    def _classify_iter(self, node: ast.expr) -> Optional[Tuple[str, str]]:
        """``(kind, description)`` when ``node`` iterates unordered."""
        if id(node) in self._sanitized:
            return None
        if self._is_set_construct(node):
            return "set", "iteration over a set"
        if (isinstance(node, ast.Call) and not node.args
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("items", "keys", "values")):
            owner = _dotted(node.func.value) or "<dict>"
            return "dict", f"un-sorted iteration over {owner}.{node.func.attr}()"
        if isinstance(node, ast.Name):
            kind = self._local_kinds[-1].get(node.id)
            if kind == "set":
                return "set", f"iteration over set {node.id!r}"
            if kind == "dict":
                return "dict", f"un-sorted iteration over dict {node.id!r}"
        return None

    def _check_iter(self, node: ast.expr) -> None:
        classified = self._classify_iter(node)
        if classified is not None:
            kind, desc = classified
            self._fn.unordered_loops.append(UnorderedLoop(
                line=node.lineno, col=node.col_offset + 1,
                kind=kind, desc=desc,
            ))

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for gen in node.generators:  # type: ignore[attr-defined]
            self._check_iter(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comprehension(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if self._is_set_construct(node.value):
                self._local_kinds[-1][name] = "set"
            elif self._is_dict_construct(node.value):
                self._local_kinds[-1][name] = "dict"
            else:
                self._local_kinds[-1].pop(name, None)
        for target in node.targets:
            self._check_shared_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_shared_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_shared_store(node.target)
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        if self._fn_stack:
            for name in node.names:
                self._fn.global_writes.append(TaintSite(
                    line=node.lineno, col=node.col_offset + 1,
                    desc=f"'global {name}' rebinding of module-level state",
                ))
        self.generic_visit(node)

    def _record_global_write(self, node: ast.AST, desc: str) -> None:
        self._fn.global_writes.append(TaintSite(
            line=node.lineno, col=node.col_offset + 1, desc=desc,
        ))

    def _shared_root(self, node: ast.expr) -> Optional[str]:
        """Describe the shared binding an expression's root reaches.

        Returns e.g. ``"module-level '_CACHE'"`` when the chain starts
        at a module-body name, ``"class-level 'Config'"`` when it starts
        at a class defined in this module or at ``cls``; ``None`` for
        locals and ``self``.
        """
        root = _root_name(node)
        if root is None or root == "self":
            return None
        if root == "cls" or root in self._class_names:
            return f"class-level {root!r}"
        if root in self._module_names:
            return f"module-level {root!r}"
        return None

    def _check_shared_store(self, target: ast.expr) -> None:
        # A bare-name target is local rebinding (``global`` covers the
        # shared case); only stores *through* a chain mutate shared
        # state.  Module-body initialisation is definition, not mutation.
        if not self._fn_stack:
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        shared = self._shared_root(target)
        if shared is not None:
            self._record_global_write(target, f"store into {shared}")

    # -- calls, RNG draws, clock reads ---------------------------------
    def _record_draw(self, node: ast.AST, desc: str) -> None:
        self._fn.rng_draws.append(TaintSite(
            line=node.lineno, col=node.col_offset + 1, desc=desc,
        ))

    def _record_clock(self, node: ast.AST, desc: str) -> None:
        self._fn.clock_reads.append(TaintSite(
            line=node.lineno, col=node.col_offset + 1, desc=desc,
        ))

    def _check_rng(self, node: ast.Call, dotted: str) -> None:
        imp = self.imports
        parts = dotted.split(".")
        fn = parts[-1]
        prefix = ".".join(parts[:-1])
        if (
            (len(parts) == 3 and parts[1] == "random" and parts[0] in imp.numpy)
            or (len(parts) == 2 and prefix in imp.np_random)
        ):
            if fn not in _NP_RANDOM_ALLOWED:
                self._record_draw(node, f"numpy.random.{fn}() (global state)")
            elif fn == "default_rng" and not node.args:
                self._record_draw(node, "default_rng() with no seed (OS entropy)")
        elif len(parts) == 2 and prefix in imp.stdlib_random:
            if fn not in _STDLIB_RANDOM_ALLOWED:
                self._record_draw(node, f"random.{fn}() (global state)")
        elif len(parts) == 1:
            if fn in imp.random_fns:
                self._record_draw(node, f"{fn}() (global random state)")
            elif fn in imp.rng_ctors:
                unseeded = not node.args or (
                    isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded and not node.keywords:
                    self._record_draw(node, f"{fn}(None) (OS entropy)")

    def _check_clock(self, node: ast.Call, dotted: str) -> None:
        imp = self.imports
        parts = dotted.split(".")
        fn = parts[-1]
        prefix = ".".join(parts[:-1])
        if prefix in imp.time and fn in _WALL_CLOCK_FNS:
            self._record_clock(node, f"{dotted}() (wall clock)")
        elif prefix in imp.datetime_cls and fn in _DATETIME_CLASS_FNS:
            self._record_clock(node, f"{dotted}() (wall clock)")
        elif (len(parts) == 3 and parts[0] in imp.datetime_mod
              and parts[1] in ("datetime", "date")
              and fn in _DATETIME_CLASS_FNS):
            self._record_clock(node, f"{dotted}() (wall clock)")
        elif len(parts) == 1 and fn in imp.clock_fns:
            self._record_clock(node, f"{fn}() (wall clock)")

    def _emit_priority(
        self, node: ast.Call,
    ) -> Tuple[Optional[int], Optional[str], bool]:
        """``(priority, ref, explicit)`` of an engine-emit call."""
        for kw in node.keywords:
            if kw.arg != "priority":
                continue
            const = _const_int(kw.value)
            if const is not None:
                return const, None, True
            ref = _dotted(kw.value)
            if ref is not None and ref != "self" \
                    and not ref.startswith("self."):
                return None, ref.split(".")[-1], True
            return None, None, True
        return 0, None, False

    def _check_effect_seeds(self, node: ast.Call, dotted: str,
                            terminal: str) -> None:
        """Record the engine-emit / digest-write / io / mutation facts."""
        site = TaintSite(line=node.lineno, col=node.col_offset + 1,
                         desc=f"{dotted}()")
        is_method = isinstance(node.func, ast.Attribute)
        if is_method and terminal in _ENGINE_EMIT_METHODS:
            priority, ref, explicit = self._emit_priority(node)
            self._fn.engine_emits.append(EmitSite(
                site.line, site.col, f"{dotted}() schedules an engine event",
                priority=priority, ref=ref, explicit=explicit,
            ))
        if terminal == "derive_seed":
            namespace = None
            if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                    and isinstance(node.args[1].value, str):
                namespace = node.args[1].value
            self._fn.seed_derivations.append(SeedSite(
                line=site.line, col=site.col, namespace=namespace,
            ))
        if terminal in ("as_rng", "default_rng") and node.args:
            literal = _const_int(node.args[0])
            if literal is not None:
                self._fn.raw_seed_sites.append(TaintSite(
                    site.line, site.col,
                    f"{dotted}({literal}) builds an RNG from a fixed "
                    f"literal seed",
                ))
        if is_method and terminal in _DIGEST_WRITE_METHODS:
            self._fn.digest_writes.append(TaintSite(
                site.line, site.col,
                f"{dotted}() records into the telemetry/digest plane",
            ))
        if terminal in _IO_TERMINALS:
            self._fn.io_sites.append(TaintSite(
                site.line, site.col, f"{dotted}() performs I/O",
            ))
        if (is_method and terminal in _MUTATOR_METHODS
                and self._fn_stack):
            shared = self._shared_root(node.func.value)
            if shared is not None:
                self._record_global_write(
                    node, f"{dotted}() mutates {shared}",
                )
        if is_method:
            receiver = _dotted(node.func.value)
            last = receiver.split(".")[-1] if receiver else ""
            if last in ("rng", "_rng") or last.endswith("_rng"):
                self._fn.stream_draws.append(TaintSite(
                    site.line, site.col,
                    f"{dotted}() draws from a seeded stream",
                ))

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            terminal = dotted.split(".")[-1]
            if terminal in _ORDER_SANITIZERS:
                for arg in node.args:
                    self._sanitized.add(id(arg))
                    # one level deeper: sorted(x.items()) sanitises the
                    # .items() call; sorted(e for q in d.values()) the
                    # generator's iterables.
                    if isinstance(arg, ast.GeneratorExp):
                        for gen in arg.generators:
                            self._sanitized.add(id(gen.iter))
            if terminal not in _CALL_STOPLIST:
                on_self = (
                    isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                )
                self._fn.calls.append(CallSite(
                    name=terminal, line=node.lineno, on_self=on_self,
                ))
            if terminal.endswith("Event"):
                self.summary.event_constructions.add(terminal)
            self._check_rng(node, dotted)
            self._check_clock(node, dotted)
            self._check_effect_seeds(node, dotted, terminal)
        self.generic_visit(node)


def summarize_module(
    tree: ast.Module,
    *,
    path: str,
    rel_parts: Tuple[str, ...],
    suppressions: Suppressions,
) -> ModuleSummary:
    """Distill one parsed module into its :class:`ModuleSummary`."""
    summary = ModuleSummary(
        module=module_name_from_parts(rel_parts),
        path=path,
        rel_parts=rel_parts,
        suppressions=suppressions,
    )
    imports = _ImportTable(tree)
    summary.imported_modules = set(imports.modules)
    summary.import_lines = dict(imports.module_lines)
    summary.type_only_imports = _type_only_imports(tree)
    summary.int_constants = _module_int_constants(tree)
    _Summarizer(summary, imports, tree).visit(tree)
    return summary


class ProjectContext:
    """Every module summary plus the indexes the project rules query."""

    def __init__(self, modules: Dict[str, ModuleSummary]):
        #: dotted module name -> summary.
        self.modules = modules
        #: terminal function/method name -> node ids defining it, where a
        #: node id is ``"<module>::<qualname>"``.
        self.function_index: Dict[str, List[str]] = {}
        for mod in modules.values():
            for qual in mod.functions:
                terminal = qual.split(".")[-1]
                node_id = f"{mod.module}::{qual}"
                self.function_index.setdefault(terminal, []).append(node_id)

    def function(self, node_id: str) -> FunctionSummary:
        """Look a function summary up by its ``module::qualname`` id."""
        module, qual = node_id.split("::", 1)
        return self.modules[module].functions[qual]

    def module_of(self, node_id: str) -> ModuleSummary:
        """The summary of the module a function id belongs to."""
        return self.modules[node_id.split("::", 1)[0]]

    def functions_in(self, *packages: str) -> List[str]:
        """Function ids of every function under the given subpackages."""
        out: List[str] = []
        for name in sorted(self.modules):
            mod = self.modules[name]
            if mod.package in packages:
                out.extend(f"{name}::{q}" for q in sorted(mod.functions))
        return out

    def reverse_dependencies(self, module: str) -> Set[str]:
        """Modules that (transitively) import ``module``."""
        # Direct importers first, then close transitively.
        importers: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for name, mod in self.modules.items():
            for imported in mod.imported_modules:
                # Import targets may be absolute (repro.serve.slo) or
                # project-relative (serve.slo); normalise both.
                target = imported
                if target.startswith("repro."):
                    target = target[len("repro."):]
                if target in self.modules:
                    importers[target].add(name)
        seen: Set[str] = set()
        frontier = [module]
        while frontier:
            current = frontier.pop()
            for dep in importers.get(current, ()):
                if dep not in seen:
                    seen.add(dep)
                    frontier.append(dep)
        seen.discard(module)
        return seen


class ProjectRule:
    """Base class for whole-program rules (CG010–CG013, CG015–CG022).

    Subclasses set :attr:`rule_id`/:attr:`name`/:attr:`description`,
    are registered with
    :func:`repro.lint.registry.register_project`, and implement
    :meth:`check`, calling :meth:`report` per violation.  Pragma
    suppression uses the *reported module's* pragma table, so a
    ``# lint: disable=CG010`` works exactly like it does for per-file
    rules.
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def __init__(self, project: ProjectContext):
        self.project = project
        self.findings: List[Finding] = []

    def check(self) -> None:
        """Analyse the project; implemented by subclasses."""
        raise NotImplementedError

    def report(self, module: ModuleSummary, line: int, col: int,
               message: str) -> None:
        """Record one finding against ``module`` unless suppressed."""
        if module.suppressions.is_suppressed(self.rule_id, line):
            return
        self.findings.append(Finding(
            path=module.path, line=line, col=col,
            rule_id=self.rule_id, message=message,
        ))
