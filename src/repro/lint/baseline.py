"""Baseline files: fail CI only on *new* findings.

A baseline is a JSON list of finding fingerprints accepted at some
point in time.  ``cocg lint --baseline .lint_baseline.json`` subtracts
them from the report, so introducing the whole-program rules on a large
tree does not require fixing every historical finding in one PR — only
regressions fail the build.  ``--update-baseline`` rewrites the file
from the current findings.

Fingerprints deliberately exclude line/column: ``hash(path|rule|msg)``
survives unrelated edits shifting a finding a few lines, at the cost of
treating two identical messages in one file as the same finding — the
right trade for a tool whose messages embed the offending expression.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List

from repro.lint.findings import Finding

__all__ = ["fingerprint", "load_baseline", "write_baseline", "apply_baseline"]


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding across unrelated line shifts."""
    # Normalise the path separator so a baseline written on one OS
    # still matches on another.
    path = finding.path.replace("\\", "/")
    raw = f"{path}|{finding.rule_id}|{finding.message}"
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


def load_baseline(path: Path) -> Dict[str, dict]:
    """Read a baseline file into ``fingerprint -> recorded finding``.

    A missing file is an empty baseline (first run); a malformed one
    raises ``ValueError`` so CI fails loudly rather than reporting a
    falsely clean tree.
    """
    if not path.is_file():
        return {}
    payload = json.loads(path.read_text(encoding="utf-8"))
    if (not isinstance(payload, dict)
            or not isinstance(payload.get("findings"), list)):
        raise ValueError(f"malformed baseline file: {path}")
    out: Dict[str, dict] = {}
    for item in payload["findings"]:
        if not isinstance(item, dict) or "fingerprint" not in item:
            raise ValueError(f"malformed baseline entry in {path}: {item!r}")
        out[item["fingerprint"]] = item
    return out


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Overwrite ``path`` with the given findings; returns how many."""
    items = []
    seen = set()
    for finding in sorted(findings):
        fp = fingerprint(finding)
        if fp in seen:
            continue
        seen.add(fp)
        items.append({
            "fingerprint": fp,
            "rule_id": finding.rule_id,
            "path": finding.path.replace("\\", "/"),
            "message": finding.message,
        })
    payload = {"version": 1, "findings": items}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return len(items)


def apply_baseline(
    findings: Iterable[Finding],
    baseline: Dict[str, dict],
) -> List[Finding]:
    """Findings not covered by the baseline (i.e. the new ones)."""
    return [f for f in findings if fingerprint(f) not in baseline]
