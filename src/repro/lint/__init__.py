"""``repro.lint`` — two-phase static analyzer for the CoCG codebase.

The reproduction's correctness rests on conventions Python itself never
enforces: the *no global randomness* rule (:mod:`repro.util.rng`),
engine-clock-only time inside :mod:`repro.sim`, canonical
:data:`~repro.platform_.resources.DIMENSIONS` usage, exception hygiene
on scheduler/distributor decision paths, complete ``__all__`` exports,
and type-annotated public APIs.  This package parses the tree with
:mod:`ast` and enforces each convention in two phases:

* **per-file rules** (**CG001** – **CG009**, **CG014**) walk one AST
  at a time;
* **whole-program rules** (**CG010** – **CG013**) run
  taint/reachability queries over a project-wide call graph built from
  per-module summaries (:mod:`repro.lint.project`,
  :mod:`repro.lint.dataflow`), catching cross-module hazards — an
  unseeded RNG draw laundered through helpers into ``serve/``, a set
  iteration whose order reaches the fleet digest — that no single file
  reveals.  On the same graph, the **effect system**
  (:mod:`repro.lint.effects`, **CG015** – **CG018**) infers
  per-function effect signatures (:data:`EFFECT_NAMES`) by fixpoint
  propagation and checks shard-safety of the fleet path, drift against
  ``@effects(...)`` declarations (:mod:`repro.util.effects`), the
  architecture layering DAG, and hot-path purity; ``--effects-out``
  exports the signatures as a deterministic ``effects.json``.  On top
  of both, the **shard-interference analyzer**
  (:mod:`repro.lint.shards`, **CG019** – **CG022**) classifies every
  function reachable from a shard entry point (``@shard_entry(...)``
  or the fleet/serve conventions) as *shard-local*,
  *shard-shared-read*, or *shard-interfering*, flags cross-partition
  mutable reach, merge-order fragility, seed-stream partition leakage,
  and cross-shard digest writes, and exports the byte-stable
  ``shardplan.json`` certificate via ``--shard-plan-out``.  See
  ``docs/LINT.md``.

Use it three ways:

* ``python -m repro.lint src/`` or ``cocg lint`` from a shell/CI
  (exit code 1 when findings exist, ``--format json``/``sarif`` for
  machines, ``--changed``/``--baseline`` to scope what fails a run,
  and a content-hash incremental cache making warm runs re-analyze
  only changed modules);
* :func:`lint_paths` / :func:`lint_file` as a library;
* ``# lint: disable=CGxxx`` pragmas to suppress a finding at a line
  (trailing comment) or for a whole file (standalone comment).

Adding a per-file rule is ~30 lines: subclass :class:`Rule`, set
``rule_id`` / ``name`` / ``description``, optionally narrow
``applies_to``, implement ``visit_*`` methods that call
``self.report``, and decorate with :func:`register`.  Whole-program
rules subclass :class:`~repro.lint.project.ProjectRule` and are
decorated with :func:`~repro.lint.registry.register_project`.
"""

from repro.lint.baseline import (
    apply_baseline,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import LintCache, cache_signature, content_digest
from repro.lint.dataflow import (
    CallGraph,
    Witness,
    build_call_graph,
    reach_sinks,
    reach_taints,
)
from repro.lint.effects import (
    EFFECT_NAMES,
    EffectInference,
    infer_effects,
    render_effects,
)
from repro.lint.engine import LintResult, iter_python_files, lint_file, lint_paths
from repro.lint.findings import Finding
from repro.lint.pragmas import Suppressions, parse_suppressions
from repro.lint.project import (
    ModuleSummary,
    ProjectContext,
    ProjectRule,
    summarize_module,
)
from repro.lint.registry import (
    ANALYZER_VERSION,
    FileContext,
    Rule,
    UnknownRuleError,
    explain_rule,
    rule_class,
    all_project_rules,
    all_rules,
    register,
    register_project,
    resolve_project_rules,
    resolve_rules,
)
from repro.lint.reporters import render_json, render_sarif, render_text
from repro.lint.shards import (
    SHARD_CLASSES,
    ShardAnalysis,
    render_shard_plan,
    shard_analysis,
    shard_entry_points,
)

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "ProjectContext",
    "ModuleSummary",
    "CallGraph",
    "Witness",
    "build_call_graph",
    "reach_sinks",
    "reach_taints",
    "summarize_module",
    "EFFECT_NAMES",
    "EffectInference",
    "infer_effects",
    "render_effects",
    "SHARD_CLASSES",
    "ShardAnalysis",
    "shard_analysis",
    "shard_entry_points",
    "render_shard_plan",
    "explain_rule",
    "rule_class",
    "UnknownRuleError",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "resolve_rules",
    "resolve_project_rules",
    "ANALYZER_VERSION",
    "Suppressions",
    "parse_suppressions",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "LintCache",
    "cache_signature",
    "content_digest",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "render_text",
    "render_json",
    "render_sarif",
]
