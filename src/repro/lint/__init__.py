"""``repro.lint`` — AST-based invariant checker for the CoCG codebase.

The reproduction's correctness rests on conventions Python itself never
enforces: the *no global randomness* rule (:mod:`repro.util.rng`),
engine-clock-only time inside :mod:`repro.sim`, canonical
:data:`~repro.platform_.resources.DIMENSIONS` usage, exception hygiene
on scheduler/distributor decision paths, complete ``__all__`` exports,
and type-annotated public APIs.  This package parses the tree with
:mod:`ast` and enforces each convention as a named rule (**CG001** –
**CG007**; see ``docs/LINT.md``).

Use it three ways:

* ``python -m repro.lint src/`` or ``cocg lint`` from a shell/CI
  (exit code 1 when findings exist, ``--format json`` for machines);
* :func:`lint_paths` / :func:`lint_file` as a library;
* ``# lint: disable=CGxxx`` pragmas to suppress a finding at a line
  (trailing comment) or for a whole file (standalone comment).

Adding a rule is ~30 lines: subclass :class:`Rule`, set ``rule_id`` /
``name`` / ``description``, optionally narrow ``applies_to``, implement
``visit_*`` methods that call ``self.report``, and decorate with
:func:`register`.
"""

from repro.lint.engine import LintResult, iter_python_files, lint_file, lint_paths
from repro.lint.findings import Finding
from repro.lint.pragmas import Suppressions, parse_suppressions
from repro.lint.registry import (
    FileContext,
    Rule,
    UnknownRuleError,
    all_rules,
    register,
    resolve_rules,
)
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "UnknownRuleError",
    "register",
    "all_rules",
    "resolve_rules",
    "Suppressions",
    "parse_suppressions",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
]
