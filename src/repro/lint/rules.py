"""The CoCG invariant rules, CG001–CG009 and CG014.

Each rule protects one convention the interpreter cannot enforce but the
reproduction's correctness depends on (see ``docs/LINT.md`` for the full
rationale and ``docs/LINT.md#adding-a-rule`` for the extension recipe):

========  ==============================================================
CG001     no global-state randomness outside ``util/rng.py``
CG002     no mutable default arguments
CG003     public functions in ``core``/``mlkit``/``platform_`` are typed
CG004     ``__all__`` is present, accurate, and complete
CG005     no wall-clock reads inside ``sim`` (use the engine clock)
CG006     no bare/swallowed exceptions in scheduler/distributor paths
CG007     resource dimensions come from the canonical constants
CG008     fault paths re-raise, log to telemetry, or transition health
CG009     queues in ``serve``/``cluster`` declare an explicit bound
CG014     module-level counter/total aggregates in ``serve``/``cluster``
          /``faults`` go through the metrics registry
========  ==============================================================
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Union

from repro.lint.registry import FileContext, Rule, register

__all__ = [
    "NoGlobalRandomness",
    "NoMutableDefaults",
    "PublicFunctionsTyped",
    "DunderAllConsistency",
    "NoWallClockInSim",
    "ExceptionHygiene",
    "CanonicalDimensions",
    "FaultPathAccountability",
    "BoundedQueues",
    "RegistryBackedAggregates",
]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ----------------------------------------------------------------------
# CG001
# ----------------------------------------------------------------------

#: Deterministic constructors that are allowed anywhere: they create a
#: fresh, explicitly seeded stream rather than touching hidden state.
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "BitGenerator", "SeedSequence",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})
_STDLIB_RANDOM_ALLOWED = frozenset({"Random", "SystemRandom"})


@register
class NoGlobalRandomness(Rule):
    """CG001 — the *no global randomness* rule from ``util/rng.py``.

    Flags calls through the ``numpy.random`` and stdlib ``random``
    *module* namespaces (``np.random.uniform(...)``, ``random.choice``)
    everywhere except ``util/rng.py`` itself.  Such calls draw from
    hidden process-global state, so results silently depend on import
    order and on every other component's draw history.  Stochastic code
    must accept a :data:`repro.util.rng.Seed` and go through
    :func:`repro.util.rng.as_rng` / :func:`~repro.util.rng.spawn_rngs`.
    Seeded constructors (``default_rng``, ``Generator``, bit
    generators) are allowed; method calls on a threaded ``Generator``
    instance are of course fine.

    Fix: accept a ``Seed``/``Generator`` parameter and normalise it
    with :func:`repro.util.rng.as_rng`; derive child streams with
    :func:`~repro.util.rng.spawn_rngs` instead of drawing globally.
    """

    rule_id = "CG001"
    name = "no-global-randomness"
    description = ("global numpy.random / random call outside util/rng.py; "
                   "thread a Seed/Generator instead")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return not ctx.is_module("util", "rng.py")

    def check(self) -> None:
        # Pre-pass: learn what the random modules are called locally.
        self._numpy_aliases: set[str] = set()       # e.g. {"np", "numpy"}
        self._np_random_aliases: set[str] = set()   # bound to numpy.random
        self._stdlib_aliases: set[str] = set()      # bound to stdlib random
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    if alias.name == "numpy" or alias.name.startswith("numpy."):
                        if alias.name == "numpy.random" and alias.asname:
                            self._np_random_aliases.add(alias.asname)
                        else:
                            self._numpy_aliases.add(bound)
                    elif alias.name == "random":
                        self._stdlib_aliases.add(bound)
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self._np_random_aliases.add(alias.asname or "random")
        self.visit(self.ctx.tree)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            bad = [a.name for a in node.names
                   if a.name not in _STDLIB_RANDOM_ALLOWED]
            if bad:
                self.report(node, f"import of global-state random function(s) "
                                  f"{', '.join(sorted(bad))} from the random module")
        elif node.module == "numpy.random":
            bad = [a.name for a in node.names
                   if a.name not in _NP_RANDOM_ALLOWED]
            if bad:
                self.report(node, f"import of global-state numpy.random "
                                  f"function(s) {', '.join(sorted(bad))}")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            fn = parts[-1]
            prefix = ".".join(parts[:-1])
            if (
                (len(parts) == 3 and parts[1] == "random"
                 and parts[0] in self._numpy_aliases)
                or (len(parts) == 2 and prefix in self._np_random_aliases)
            ):
                if fn not in _NP_RANDOM_ALLOWED:
                    self.report(node, f"call to global-state numpy.random.{fn}; "
                                      f"use util.rng.as_rng and Generator methods")
            elif len(parts) == 2 and prefix in self._stdlib_aliases:
                if fn not in _STDLIB_RANDOM_ALLOWED:
                    self.report(node, f"call to global-state random.{fn}; "
                                      f"use util.rng.as_rng and Generator methods")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# CG002
# ----------------------------------------------------------------------

_MUTABLE_DISPLAY = (ast.List, ast.Dict, ast.Set,
                    ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "bytearray",
    "defaultdict", "Counter", "deque", "OrderedDict",
})


@register
class NoMutableDefaults(Rule):
    """CG002 — no mutable default arguments.

    A mutable default is evaluated once at definition time and shared by
    every call, so state leaks between supposedly independent sessions,
    experiments, and simulator runs.  Use ``None`` and materialise inside
    the function body.

    Fix: default to ``None`` and materialise the container inside the
    function body (``xs = [] if xs is None else xs``).
    """

    rule_id = "CG002"
    name = "no-mutable-defaults"
    description = "mutable default argument (shared across calls); default to None"

    def _check_defaults(self, node: Union[_FunctionNode, ast.Lambda],
                        label: str) -> None:
        defaults = list(node.args.defaults)
        defaults += [d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, _MUTABLE_DISPLAY):
                self.report(default, f"mutable default in {label}")
            elif isinstance(default, ast.Call):
                callee = _dotted_name(default.func)
                if callee is not None and callee.split(".")[-1] in _MUTABLE_CALLS:
                    self.report(default,
                                f"mutable default {callee}(...) in {label}")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, f"function {node.name!r}")
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, f"function {node.name!r}")
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, "lambda")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# CG003
# ----------------------------------------------------------------------

@register
class PublicFunctionsTyped(Rule):
    """CG003 — public API in ``core``/``mlkit``/``platform_`` is typed.

    Every public module-level function and every public method of a
    public class must annotate all parameters (``self``/``cls`` exempt)
    and the return type.  These are the packages downstream code builds
    on; annotations there are what makes the ``py.typed`` marker honest.

    Fix: annotate every public parameter and the return type; prefix
    genuinely internal helpers with ``_`` instead.
    """

    rule_id = "CG003"
    name = "public-functions-typed"
    description = ("public function in core/mlkit/platform_ missing "
                   "parameter or return annotations")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.in_subpackage("core", "mlkit", "platform_")

    def check(self) -> None:
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(stmt, method=False)
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._check_function(sub, method=True)

    def _check_function(self, node: _FunctionNode, *, method: bool) -> None:
        public = not node.name.startswith("_") or node.name == "__init__"
        if not public:
            return
        args = list(node.args.posonlyargs) + list(node.args.args)
        if method and args and args[0].arg in ("self", "cls"):
            args = args[1:]
        args += list(node.args.kwonlyargs)
        for extra in (node.args.vararg, node.args.kwarg):
            if extra is not None:
                args.append(extra)
        missing = [a.arg for a in args if a.annotation is None]
        if missing:
            self.report(node, f"public function {node.name!r} has unannotated "
                              f"parameter(s): {', '.join(missing)}")
        if node.returns is None and node.name != "__init__":
            self.report(node, f"public function {node.name!r} has no "
                              f"return annotation")


# ----------------------------------------------------------------------
# CG004
# ----------------------------------------------------------------------

@register
class DunderAllConsistency(Rule):
    """CG004 — ``__all__`` is present, accurate, and complete.

    Three checks per module: the module declares ``__all__`` when it
    defines public functions/classes; every exported name actually
    exists at module level; and every public function/class is exported.
    Recognises literal ``__all__ = [...]`` plus ``+=`` / ``.append`` /
    ``.extend`` augmentation with string literals.

    Fix: add the missing public names to ``__all__`` (or prefix them
    with ``_``); keep ``__all__`` a literal list of strings.
    """

    rule_id = "CG004"
    name = "dunder-all-consistency"
    description = "__all__ missing, exports a nonexistent name, or omits a public def"

    def check(self) -> None:
        exported: list[str] = []
        declaration: Optional[ast.stmt] = None
        opaque = False          # __all__ built dynamically; skip the file
        star_import = False
        bound: set[str] = set()
        public_defs: list[Union[_FunctionNode, ast.ClassDef]] = []

        def literal_names(node: ast.AST) -> Optional[list[str]]:
            if isinstance(node, (ast.List, ast.Tuple)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in node.elts
            ):
                return [e.value for e in node.elts]  # type: ignore[union-attr]
            return None

        def scan(statements: list[ast.stmt]) -> None:
            nonlocal declaration, opaque, star_import
            for stmt in statements:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.ClassDef)):
                    bound.add(stmt.name)
                    if not stmt.name.startswith("_"):
                        public_defs.append(stmt)
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                bound.add(name_node.id)
                    if any(isinstance(t, ast.Name) and t.id == "__all__"
                           for t in stmt.targets):
                        declaration = declaration or stmt
                        names = literal_names(stmt.value)
                        if names is None:
                            opaque = True
                        else:
                            exported.extend(names)
                elif isinstance(stmt, ast.AnnAssign):
                    if isinstance(stmt.target, ast.Name):
                        bound.add(stmt.target.id)
                elif isinstance(stmt, ast.AugAssign):
                    if (isinstance(stmt.target, ast.Name)
                            and stmt.target.id == "__all__"):
                        names = literal_names(stmt.value)
                        if names is None:
                            opaque = True
                        else:
                            exported.extend(names)
                elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
                    call = stmt.value
                    dotted = _dotted_name(call.func)
                    if dotted == "__all__.append":
                        if (len(call.args) == 1
                                and isinstance(call.args[0], ast.Constant)
                                and isinstance(call.args[0].value, str)):
                            exported.append(call.args[0].value)
                        else:
                            opaque = True
                    elif dotted == "__all__.extend":
                        names = (literal_names(call.args[0])
                                 if len(call.args) == 1 else None)
                        if names is None:
                            opaque = True
                        else:
                            exported.extend(names)
                elif isinstance(stmt, ast.Import):
                    for alias in stmt.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(stmt, ast.ImportFrom):
                    for alias in stmt.names:
                        if alias.name == "*":
                            star_import = True
                        else:
                            bound.add(alias.asname or alias.name)
                elif isinstance(stmt, ast.If):
                    scan(stmt.body)
                    scan(stmt.orelse)
                elif isinstance(stmt, ast.Try):
                    scan(stmt.body)
                    scan(stmt.orelse)
                    scan(stmt.finalbody)
                    for handler in stmt.handlers:
                        scan(handler.body)
                elif isinstance(stmt, (ast.With, ast.For, ast.While)):
                    scan(stmt.body)
                    scan(getattr(stmt, "orelse", []))

        scan(self.ctx.tree.body)
        if opaque:
            return  # dynamically built __all__; nothing safe to assert
        if declaration is None:
            if public_defs:
                self.report(self.ctx.tree, "module defines public names but "
                                           "declares no __all__")
            return
        if not star_import:
            for name in exported:
                if name not in bound:
                    self.report(declaration,
                                f"__all__ exports {name!r} which is not "
                                f"defined at module level")
        export_set = set(exported)
        for definition in public_defs:
            if definition.name not in export_set:
                self.report(definition, f"public definition "
                                        f"{definition.name!r} missing from __all__")


# ----------------------------------------------------------------------
# CG005
# ----------------------------------------------------------------------

_WALL_CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns",
    "localtime", "gmtime", "ctime",
})
_DATETIME_CLASS_FNS = frozenset({"now", "utcnow", "today"})


@register
class NoWallClockInSim(Rule):
    """CG005 — simulation code never reads the wall clock.

    Everything under ``sim/`` must take its notion of time from the
    engine clock (:class:`repro.sim.engine.SimulationEngine`), never
    from ``time.time()`` and friends: a wall-clock read makes simulated
    timelines irreproducible and couples results to host load.

    Fix: take the current time as a parameter or read the simulation
    engine's clock (``engine.now``); wall-clock reads belong outside
    the deterministic core.
    """

    rule_id = "CG005"
    name = "no-wall-clock-in-sim"
    description = "wall-clock read inside sim/; use the engine clock"

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.in_subpackage("sim")

    def check(self) -> None:
        self._time_aliases: set[str] = set()
        self._datetime_mod_aliases: set[str] = set()
        self._datetime_cls_aliases: set[str] = set()
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        self._time_aliases.add(alias.asname or "time")
                    elif alias.name == "datetime":
                        self._datetime_mod_aliases.add(alias.asname or "datetime")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "datetime":
                    for alias in node.names:
                        if alias.name in ("datetime", "date"):
                            self._datetime_cls_aliases.add(alias.asname or alias.name)
        self.visit(self.ctx.tree)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            bad = [a.name for a in node.names if a.name in _WALL_CLOCK_FNS]
            if bad:
                self.report(node, f"import of wall-clock function(s) "
                                  f"{', '.join(sorted(bad))} from the time module")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None:
            parts = dotted.split(".")
            fn = parts[-1]
            prefix = ".".join(parts[:-1])
            if prefix in self._time_aliases and fn in _WALL_CLOCK_FNS:
                self.report(node, f"wall-clock call {dotted}() in sim/")
            elif (prefix in self._datetime_cls_aliases
                  and fn in _DATETIME_CLASS_FNS):
                self.report(node, f"wall-clock call {dotted}() in sim/")
            elif (len(parts) == 3 and parts[0] in self._datetime_mod_aliases
                  and parts[1] in ("datetime", "date")
                  and fn in _DATETIME_CLASS_FNS):
                self.report(node, f"wall-clock call {dotted}() in sim/")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# CG006
# ----------------------------------------------------------------------

@register
class ExceptionHygiene(Rule):
    """CG006 — no bare or swallowed exceptions on control paths.

    Bare ``except:`` is flagged everywhere (it catches ``SystemExit``
    and ``KeyboardInterrupt`` too).  In scheduler/distributor/cluster
    paths — where a silently ignored error becomes a wrong placement
    decision rather than a crash — a handler for ``Exception`` /
    ``BaseException`` whose body is only ``pass``/``...``/``continue``
    is also flagged: handle, log, or re-raise.

    Fix: catch the narrowest exception type that the decision path can
    actually raise, and either handle it or re-raise with context —
    never ``except Exception: pass``.
    """

    rule_id = "CG006"
    name = "exception-hygiene"
    description = "bare except, or swallowed exception in scheduler/distributor paths"

    def _in_control_path(self) -> bool:
        parts = self.ctx.rel_parts
        if parts and parts[0] == "cluster":
            return True
        filename = parts[-1] if parts else ""
        return "scheduler" in filename or "distributor" in filename

    @staticmethod
    def _is_broad(handler_type: Optional[ast.expr]) -> bool:
        if handler_type is None:
            return True
        names = []
        if isinstance(handler_type, ast.Tuple):
            names = [_dotted_name(e) for e in handler_type.elts]
        else:
            names = [_dotted_name(handler_type)]
        return any(n in ("Exception", "BaseException") for n in names if n)

    @staticmethod
    def _swallows(body: list[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Continue):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring or bare ...
            return False
        return True

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(node, "bare except: catches SystemExit/KeyboardInterrupt; "
                              "name the exception type")
        elif (self._in_control_path() and self._is_broad(node.type)
              and self._swallows(node.body)):
            self.report(node, "swallowed exception on a scheduler/distributor "
                              "path; handle, log, or re-raise")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# CG007
# ----------------------------------------------------------------------

#: Mirrors repro.platform_.resources.DIMENSIONS.  Kept as literals here —
#: the linter must not import the code under analysis.
_DIM_LITERALS = frozenset({"cpu", "gpu", "gpu_mem", "ram"})  # lint: disable=CG007


def _dim_constant(node: ast.AST) -> Optional[str]:
    if (isinstance(node, ast.Constant) and isinstance(node.value, str)
            and node.value in _DIM_LITERALS):
        return node.value
    return None


@register
class CanonicalDimensions(Rule):
    """CG007 — resource dimensions come from the canonical constants.

    Indexing, comparing, or enumerating resource dimensions with ad-hoc
    string literals (``vec["gpu"]``, ``dim == "cpu"``,
    ``("cpu", "gpu", ...)``) silently diverges the moment a dimension is
    added or renamed.  Use :data:`repro.platform_.resources.DIMENSIONS`
    and the ``CPU``/``GPU``/``GPU_MEM``/``RAM`` index constants, which
    exist precisely so there is one definition site.  Keyword/mapping
    construction (``ResourceVector(cpu=35)``) is the sanctioned API and
    is not flagged.

    Fix: build vectors through
    :class:`repro.platform_.resources.ResourceVector` and index by the
    canonical :data:`~repro.platform_.resources.DIMENSIONS` names.
    """

    rule_id = "CG007"
    name = "canonical-dimensions"
    description = ("resource-dimension string literal; use "
                   "platform_.resources.DIMENSIONS / index constants")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return not ctx.is_module("platform_", "resources.py")

    def visit_Subscript(self, node: ast.Subscript) -> None:
        dim = _dim_constant(node.slice)
        if dim is not None:
            self.report(node.slice, f"subscript by dimension literal {dim!r}; "
                                    f"use the CPU/GPU/GPU_MEM/RAM constants")
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for operand in [node.left, *node.comparators]:
            dim = _dim_constant(operand)
            if dim is not None:
                self.report(operand, f"comparison against dimension literal "
                                     f"{dim!r}; use the canonical constants")
        self.generic_visit(node)

    def _check_sequence(self, node: Union[ast.List, ast.Tuple, ast.Set]) -> None:
        dims = [d for d in (_dim_constant(e) for e in node.elts) if d is not None]
        if len(dims) >= 2:
            self.report(node, "ad-hoc dimension sequence literal; use "
                              "platform_.resources.DIMENSIONS")

    def visit_List(self, node: ast.List) -> None:
        self._check_sequence(node)
        self.generic_visit(node)

    def visit_Tuple(self, node: ast.Tuple) -> None:
        self._check_sequence(node)
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._check_sequence(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if (dotted is not None and dotted.endswith(".index")
                and len(node.args) == 1):
            dim = _dim_constant(node.args[0])
            if dim is not None:
                self.report(node.args[0], f".index({dim!r}) on a dimension "
                                          f"literal; use the index constants")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# CG008
# ----------------------------------------------------------------------

#: Method names whose invocation inside a handler counts as *accounting
#: for* the fault: telemetry/log sinks and health-state transitions.
_FAULT_ACCOUNTING_CALLS = frozenset({
    "record_fault_event", "record_failure", "record_success",
    "note_degraded", "crash", "recover", "drain",
    "crash_node", "recover_node", "drain_node",
    "_log", "log", "warning", "error", "exception", "report",
})


@register
class FaultPathAccountability(Rule):
    """CG008 — fault paths re-raise, log to telemetry, or move health.

    On the resilience-critical paths — ``faults/``, ``cluster/``, and
    ``core/scheduler.py`` — a handler that catches *everything* (bare
    ``except:``, ``Exception``, ``BaseException``) must visibly account
    for the error: re-raise it, log it to telemetry or the decision log,
    or transition a health state (breaker trip, node down, …).  A broad
    handler that quietly substitutes a value is exactly how an injected
    fault disappears from the QoS accounting, so the degradation claims
    become untestable.  CG006 bans the empty swallow; this rule demands
    positive evidence of accounting.

    Fix: record the injected fault through the telemetry recorder
    (``record_fault_event``) in the same code path that mutates state,
    so the digest explains every divergence.
    """

    rule_id = "CG008"
    name = "fault-path-accountability"
    description = ("broad exception handler on a fault path with no "
                   "re-raise, telemetry log, or health transition")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        parts = ctx.rel_parts
        if parts and parts[0] in ("faults", "cluster"):
            return True
        return ctx.is_module("core", "scheduler.py")

    @staticmethod
    def _accounts(body: list[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    dotted = _dotted_name(node.func)
                    if dotted is not None and (
                        dotted.split(".")[-1] in _FAULT_ACCOUNTING_CALLS
                    ):
                        return True
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (isinstance(target, ast.Attribute)
                                and target.attr in ("health", "_state")):
                            return True
        return False

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = node.type is None or ExceptionHygiene._is_broad(node.type)
        if broad and not self._accounts(node.body):
            self.report(node, "broad handler on a fault path must re-raise, "
                              "log to telemetry, or transition a health state")
        self.generic_visit(node)


# ----------------------------------------------------------------------
# CG009
# ----------------------------------------------------------------------

_QUEUE_NAME = re.compile(r"queue|backlog", re.IGNORECASE)


@register
class BoundedQueues(Rule):
    """CG009 — queues on the serving path declare an explicit bound.

    An unbounded queue in ``serve/`` or ``cluster/`` is a latent OOM and
    an unbounded-latency bug: under the open-loop arrival rates the
    serve layer exists to survive, anything that buffers requests
    without a capacity silently converts overload into memory growth
    and multi-minute queueing delays instead of an explicit *shed*
    verdict.  Two shapes are flagged:

    * ``deque(...)`` constructed without a ``maxlen=`` keyword
      (including ``collections.deque`` and import aliases);
    * an empty-list initialiser (``x = []`` / ``x = list()``) whose
      target name contains ``queue`` or ``backlog``.

    Queues whose bound is enforced elsewhere (e.g. a capacity check in
    the producer) carry a pragma naming the bound::

        self._queue = []  # lint: disable=CG009 - bounded by queue_limit in submit()

    Fix: give the queue an explicit ``maxlen``/capacity and a defined
    overflow policy (reject, drop-oldest, or backpressure).
    """

    rule_id = "CG009"
    name = "bounded-queues"
    description = ("unbounded queue in serve/cluster: deque without maxlen, "
                   "or queue/backlog-named list; declare the bound or pragma it")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.in_subpackage("serve", "cluster")

    def check(self) -> None:
        self._deque_aliases: set[str] = set()       # from collections import deque
        self._collections_aliases: set[str] = set()  # import collections [as c]
        for node in ast.walk(self.ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "collections":
                        self._collections_aliases.add(alias.asname or "collections")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "collections":
                    for alias in node.names:
                        if alias.name == "deque":
                            self._deque_aliases.add(alias.asname or "deque")
        self.visit(self.ctx.tree)

    def _is_deque_call(self, node: ast.Call) -> bool:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return False
        parts = dotted.split(".")
        if len(parts) == 1:
            return parts[0] in self._deque_aliases
        return (len(parts) == 2 and parts[0] in self._collections_aliases
                and parts[1] == "deque")

    def visit_Call(self, node: ast.Call) -> None:
        if self._is_deque_call(node):
            if not any(kw.arg == "maxlen" for kw in node.keywords):
                self.report(node, "deque without maxlen= on the serving path; "
                                  "declare the bound (or pragma the external one)")
        self.generic_visit(node)

    @staticmethod
    def _target_name(target: ast.expr) -> Optional[str]:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            return target.attr
        return None

    @staticmethod
    def _is_empty_list(value: Optional[ast.expr]) -> bool:
        if isinstance(value, ast.List) and not value.elts:
            return True
        return (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "list"
                and not value.args and not value.keywords)

    def _check_assign_target(self, target: ast.expr,
                             value: Optional[ast.expr]) -> None:
        name = self._target_name(target)
        if (name is not None and _QUEUE_NAME.search(name)
                and self._is_empty_list(value)):
            self.report(target, f"queue-named list {name!r} has no bound; "
                                f"use deque(maxlen=...) or pragma the "
                                f"enforced capacity")

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_assign_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_assign_target(node.target, node.value)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# CG014
# ----------------------------------------------------------------------

_AGGREGATE_NAME = re.compile(r"count|counter|total|stats|metric|tally",
                             re.IGNORECASE)
_AGGREGATE_CALLS = frozenset({
    "dict", "list", "set", "defaultdict", "Counter", "OrderedDict",
})


@register
class RegistryBackedAggregates(Rule):
    """CG014 — counter-like aggregates go through the metrics registry.

    A bare module-level dict/list named like a counter (``_totals = {}``,
    ``STATS = defaultdict(int)``) in ``serve/``, ``cluster/`` or
    ``faults/`` is invisible observability: it accumulates process-global
    state the exporters never see, it survives across experiments inside
    one process (two runs share the tally, breaking same-seed
    determinism), and nothing stamps it with simulation time.  Mutable
    aggregate accounting on these paths belongs in a
    :class:`repro.obs.metrics.MetricsRegistry` — registered once by
    canonical name, labeled, sim-time-stamped, and exported
    deterministically.

    Flagged: a module **top-level** ``Assign``/``AnnAssign`` whose
    target name matches ``count|counter|total|stats|metric|tally``
    (case-insensitive) and whose value is a mutable aggregate — a
    dict/list/set display or comprehension, or a call to ``dict`` /
    ``list`` / ``set`` / ``defaultdict`` / ``Counter`` /
    ``OrderedDict``.  Class- and function-scoped state is exempt (it
    dies with its owner); genuinely non-metric tables carry a pragma::

        _STAT_NAMES = {...}  # lint: disable=CG014 -- static lookup table, never mutated

    Fix: register the aggregate on the shared
    :class:`repro.obs.registry.MetricsRegistry` (``obs.counter`` /
    ``obs.gauge``) instead of keeping a module-level tally.
    """

    rule_id = "CG014"
    name = "registry-backed-aggregates"
    description = ("module-level counter/total aggregate in serve/cluster/"
                   "faults; use MetricsRegistry (repro.obs) or pragma it")

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        return ctx.in_subpackage("serve", "cluster", "faults")

    @staticmethod
    def _is_mutable_aggregate(value: Optional[ast.expr]) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set,
                              ast.DictComp, ast.ListComp, ast.SetComp)):
            return True
        if isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if dotted is not None:
                return dotted.split(".")[-1] in _AGGREGATE_CALLS
        return False

    def _check_target(self, target: ast.expr,
                      value: Optional[ast.expr]) -> None:
        if (isinstance(target, ast.Name)
                and _AGGREGATE_NAME.search(target.id)
                and self._is_mutable_aggregate(value)):
            self.report(
                target,
                f"module-level aggregate {target.id!r} bypasses the metrics "
                f"registry; register it in repro.obs (or pragma a genuinely "
                f"static table)",
            )

    def check(self) -> None:
        # Module top level only: deliberately no recursion into class or
        # function bodies, whose state dies with its owner.
        for stmt in self.ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._check_target(target, stmt.value)
            elif isinstance(stmt, ast.AnnAssign):
                self._check_target(stmt.target, stmt.value)
