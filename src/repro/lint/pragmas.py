"""``# lint: disable=CGxxx`` pragma parsing.

Two suppression scopes, decided by comment placement:

* **trailing** — a pragma sharing a line with code suppresses the named
  rules on that line only::

      usage = demand["gpu"]  # lint: disable=CG007

* **standalone** — a pragma on a line of its own suppresses the named
  rules for the whole file (conventionally placed near the top)::

      # lint: disable=CG003

``# lint: disable`` with no rule list suppresses *every* rule in its
scope.  Comments are located with :mod:`tokenize`, so a ``#`` inside a
string literal never reads as a pragma.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["Suppressions", "parse_suppressions"]

#: Matches ``lint: disable`` / ``lint: disable=CG001,CG002`` inside a comment.
_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*disable(?:\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+))?"
)

#: Wildcard marker meaning "all rules".
_ALL = "*"


@dataclass
class Suppressions:
    """Per-file suppression table built from pragma comments."""

    #: Rules disabled for the entire file (may contain ``"*"``).
    file_level: set[str] = field(default_factory=set)
    #: line number -> rules disabled on that line (may contain ``"*"``).
    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: every explicitly named rule token with the line its pragma sits
    #: on, wildcards excluded — the engine's pragma-hygiene check flags
    #: tokens that name no registered rule (a typo'd pragma otherwise
    #: silently suppresses nothing).  Transient: not serialised into
    #: the incremental cache (the resulting CG000 findings are).
    declared: list[tuple[int, str]] = field(default_factory=list)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is disabled at ``line``."""
        if _ALL in self.file_level or rule_id in self.file_level:
            return True
        rules = self.by_line.get(line)
        if rules is None:
            return False
        return _ALL in rules or rule_id in rules


def _parse_rule_list(raw: str | None) -> set[str]:
    if raw is None:
        return {_ALL}
    rules = {part.strip() for part in raw.split(",") if part.strip()}
    return rules or {_ALL}


def parse_suppressions(source: str) -> Suppressions:
    """Extract the pragma table from a module's source text.

    Tolerates tokenisation failures (the caller reports the syntax error
    separately) by returning an empty table.
    """
    table = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return table
    lines = source.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA_RE.search(tok.string)
        if match is None:
            continue
        rules = _parse_rule_list(match.group("rules"))
        row, col = tok.start
        text_before = lines[row - 1][:col] if row - 1 < len(lines) else ""
        if text_before.strip():
            table.by_line.setdefault(row, set()).update(rules)
        else:
            table.file_level.update(rules)
        table.declared.extend(
            (row, rule) for rule in sorted(rules) if rule != _ALL
        )
    return table
