"""Rule base class, per-file context, and the rule registry.

A rule is an :class:`ast.NodeVisitor` subclass decorated with
:func:`register`.  The engine instantiates each enabled rule once per
file with a :class:`FileContext` and calls :meth:`Rule.check`; the rule
walks the tree and calls :meth:`Rule.report` on violations.  Pragma
suppression and finding collection live in the context, so a new rule is
typically ~30 lines: a class-level id/description, an optional
:meth:`Rule.applies_to` scope, and one or two ``visit_*`` methods.
"""

from __future__ import annotations

import ast
import inspect
from typing import ClassVar, Iterable, Optional, Type

from repro.lint.findings import Finding
from repro.lint.pragmas import Suppressions

__all__ = [
    "FileContext",
    "Rule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "resolve_rules",
    "resolve_project_rules",
    "rule_class",
    "explain_rule",
    "UnknownRuleError",
    "ANALYZER_VERSION",
]

#: Bumped whenever a rule's behaviour changes; part of the incremental
#: cache signature so stale findings never survive a rule upgrade.
#: v4: module summaries grew the effect-system facts (global/engine/
#: digest/io seeds, stream draws, @effects declarations, import lines).
#: v5: shard-certification facts (emit priorities, derive_seed
#: namespaces, raw-seed sites, @shard_entry/@shard_merge_point
#: decorations, module int constants).
ANALYZER_VERSION = 5


class FileContext:
    """Everything a rule may consult about the file under analysis."""

    def __init__(
        self,
        *,
        path: str,
        rel_parts: tuple[str, ...],
        tree: ast.Module,
        suppressions: Suppressions,
    ):
        self.path = path
        #: Path components relative to the ``repro`` package root, e.g.
        #: ``("core", "scheduler.py")``.  Rules scope themselves on this
        #: rather than on absolute paths so fixture trees lint the same
        #: way as the installed package.
        self.rel_parts = rel_parts
        self.tree = tree
        self.suppressions = suppressions
        self.findings: list[Finding] = []

    def report(self, rule_id: str, node: ast.AST, message: str) -> None:
        """Record a finding unless a pragma suppresses it."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if self.suppressions.is_suppressed(rule_id, line):
            return
        self.findings.append(
            Finding(path=self.path, line=line, col=col + 1,
                    rule_id=rule_id, message=message)
        )

    def in_subpackage(self, *names: str) -> bool:
        """True when the file lives under one of the given top-level
        subpackages (``core``, ``sim``, …)."""
        return bool(self.rel_parts) and self.rel_parts[0] in names

    def is_module(self, *parts: str) -> bool:
        """True when the file's relative path is exactly ``parts``."""
        return self.rel_parts == parts


class Rule(ast.NodeVisitor):
    """Base class for all lint rules.

    Subclasses set :attr:`rule_id`, :attr:`name`, :attr:`description`
    (shown by ``--list-rules`` and in :doc:`docs/LINT.md`), optionally
    narrow :meth:`applies_to`, and implement ``visit_*`` methods that
    call :meth:`report`.
    """

    rule_id: ClassVar[str] = ""
    name: ClassVar[str] = ""
    description: ClassVar[str] = ""

    def __init__(self, ctx: FileContext):
        self.ctx = ctx

    @classmethod
    def applies_to(cls, ctx: FileContext) -> bool:
        """Whether the rule runs on this file at all (default: yes)."""
        return True

    def check(self) -> None:
        """Walk the file's AST once, reporting violations."""
        self.visit(self.ctx.tree)

    def report(self, node: ast.AST, message: str) -> None:
        """Record one violation at ``node``'s location."""
        self.ctx.report(self.rule_id, node, message)


#: rule id -> rule class, in registration order.
_REGISTRY: dict[str, Type[Rule]] = {}

#: rule id -> whole-program rule class (see
#: :class:`repro.lint.project.ProjectRule`), in registration order.
_PROJECT_REGISTRY: dict[str, type] = {}


class UnknownRuleError(ValueError):
    """Raised when ``--select``/``--ignore`` names a rule that does not
    exist."""


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} must set a rule_id")
    if cls.rule_id in _REGISTRY or cls.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def register_project(cls: type) -> type:
    """Class decorator adding a whole-program rule to the registry."""
    rule_id = getattr(cls, "rule_id", "")
    if not rule_id:
        raise ValueError(f"{cls.__name__} must set a rule_id")
    if rule_id in _REGISTRY or rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    _PROJECT_REGISTRY[rule_id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """The registry, id -> class (copy; registration order preserved)."""
    return dict(_REGISTRY)


def all_project_rules() -> dict[str, type]:
    """The whole-program registry, id -> class (copy)."""
    return dict(_PROJECT_REGISTRY)


def _resolve(
    registry: dict,
    select: Optional[Iterable[str]],
    ignore: Optional[Iterable[str]],
) -> list:
    """Shared select/ignore filtering over one registry.

    Unknown-id validation spans *both* registries: ``--select CG010``
    must not error merely because CG010 is a whole-program rule, and a
    typo must fail loudly instead of silently linting nothing.
    """
    known = set(_REGISTRY) | set(_PROJECT_REGISTRY)
    chosen = dict(registry)
    if select is not None:
        wanted = list(select)
        unknown = [r for r in wanted if r not in known]
        if unknown:
            raise UnknownRuleError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = {r: registry[r] for r in registry if r in set(wanted)}
    if ignore is not None:
        dropped = list(ignore)
        unknown = [r for r in dropped if r not in known]
        if unknown:
            raise UnknownRuleError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
        chosen = {r: c for r, c in chosen.items() if r not in set(dropped)}
    return list(chosen.values())


def resolve_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list[Type[Rule]]:
    """Resolve enable/disable options into the per-file rules to run.

    ``select`` keeps only the named rules; ``ignore`` then removes rules
    from whatever ``select`` produced.  Unknown ids raise
    :class:`UnknownRuleError` so typos fail loudly instead of silently
    linting nothing.
    """
    return _resolve(_REGISTRY, select, ignore)


def resolve_project_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> list:
    """Same select/ignore semantics for the whole-program rules."""
    return _resolve(_PROJECT_REGISTRY, select, ignore)


#: CG000 is synthesised by the engine, not registered; give it a
#: describable identity anyway so ``--explain CG000`` works.
_SYNTAX_RULE_EXPLANATION = """\
The file does not parse (SyntaxError / bad encoding).  Every other rule
needs an AST, so a non-parsing file produces exactly this one finding at
the failure location and is excluded from the whole-program phase.

Fix: make the file valid Python (the finding message carries the
parser's reason); there is no pragma — a file that cannot parse cannot
carry one."""


def rule_class(rule_id: str) -> type:
    """The rule class (per-file or whole-program) behind an id."""
    cls = _REGISTRY.get(rule_id) or _PROJECT_REGISTRY.get(rule_id)
    if cls is None:
        raise UnknownRuleError(f"unknown rule id: {rule_id}")
    return cls


def explain_rule(rule_id: str) -> str:
    """Human-readable rationale + fix recipe for one rule.

    Backs ``cocg lint --explain CGnnn``: header line (id · name), the
    one-line description, then the rule class's docstring — which by
    convention states *why* the rule exists and ends with a ``Fix:``
    recipe.
    """
    if rule_id == "CG000":
        return (f"CG000 · syntax-error\n  file does not parse\n\n"
                f"{_SYNTAX_RULE_EXPLANATION}")
    cls = rule_class(rule_id)
    doc = inspect.cleandoc(cls.__doc__ or "(no rationale recorded)")
    scope = ("whole-program" if rule_id in _PROJECT_REGISTRY
             else "per-file")
    return (f"{rule_id} · {cls.name} ({scope})\n"
            f"  {cls.description}\n\n{doc}")
