"""File discovery, parsing, and rule dispatch.

:func:`lint_paths` is the library entry point: it expands files and
directories into ``*.py`` targets, parses each with :mod:`ast`, builds a
:class:`~repro.lint.registry.FileContext` (including the pragma table),
runs every applicable rule, and returns a :class:`LintResult`.

Rules scope themselves on the file's path *relative to the package
root*; :func:`_rel_parts` recovers that for installed trees
(``…/src/repro/core/x.py`` → ``("core", "x.py")``) and for fixture trees
(``tmp/core/x.py`` linted with root ``tmp`` → the same), so tests can
exercise path-scoped rules without a full package checkout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Type

from repro.lint.findings import Finding
from repro.lint.pragmas import parse_suppressions
from repro.lint.registry import FileContext, Rule, resolve_rules

# Importing the rules module populates the registry.
import repro.lint.rules  # noqa: F401  (side-effect import)

__all__ = ["LintResult", "lint_file", "lint_paths", "iter_python_files"]

#: Rule id used for files that do not parse at all.
_SYNTAX_RULE_ID = "CG000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules",
                   ".mypy_cache", ".ruff_cache", ".pytest_cache"}


@dataclass
class LintResult:
    """Findings plus how much was looked at to produce them."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        """True when no rule fired."""
        return not self.findings


def iter_python_files(paths: Sequence[Path]) -> list[tuple[Path, Path]]:
    """Expand files/directories into ``(file, root)`` pairs.

    ``root`` is the directory the file was discovered under (the file's
    parent for explicit file arguments); rules use it to locate the file
    within the package when the path carries no ``repro`` component.
    """
    out: list[tuple[Path, Path]] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIR_NAMES for part in file.parts):
                    continue
                out.append((file, path))
        elif path.is_file():
            out.append((path, path.parent))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return out


#: Top-level subpackages of ``repro`` that path-scoped rules key on.
_KNOWN_SUBPACKAGES = {
    "analysis", "baselines", "cluster", "core", "games", "lint",
    "mlkit", "platform_", "sim", "streaming", "util", "workloads",
}


def _rel_parts(file: Path, root: Path) -> tuple[str, ...]:
    """Path components of ``file`` relative to the ``repro`` package."""
    resolved = file.resolve().parts
    if "repro" in resolved:
        # Last occurrence: the package dir even when a parent dir is
        # also called "repro".
        idx = len(resolved) - 1 - resolved[::-1].index("repro")
        parts = resolved[idx + 1:]
        if parts:
            return tuple(parts)
    try:
        parts = file.resolve().relative_to(root.resolve()).parts
    except ValueError:
        parts = (file.name,)
    while parts and parts[0] in ("src", "repro"):
        parts = parts[1:]
    if len(parts) <= 1:
        # An explicit file argument carries no tree context; recover the
        # subpackage from any known directory name in the full path so
        # `lint core/x.py` scopes the same way as `lint core/`.
        dirs = resolved[:-1]
        for i in range(len(dirs) - 1, -1, -1):
            if dirs[i] in _KNOWN_SUBPACKAGES:
                return tuple(resolved[i:])
    return tuple(parts) if parts else (file.name,)


def lint_file(
    file: Path,
    *,
    root: Optional[Path] = None,
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> list[Finding]:
    """Lint one file and return its findings, sorted by location."""
    if rules is None:
        rules = resolve_rules()
    root = root if root is not None else file.parent
    display = str(file)
    try:
        source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
    except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 1
        reason = getattr(exc, "msg", None) or str(exc)
        return [Finding(path=display, line=int(line), col=int(col),
                        rule_id=_SYNTAX_RULE_ID,
                        message=f"file does not parse: {reason}")]
    ctx = FileContext(
        path=display,
        rel_parts=_rel_parts(file, root),
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    for rule_cls in rules:
        if rule_cls.applies_to(ctx):
            rule_cls(ctx).check()
    return sorted(ctx.findings)


def lint_paths(
    paths: Sequence[object],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint files and directory trees.

    Parameters
    ----------
    paths:
        Files and/or directories (``str`` or :class:`~pathlib.Path`).
    select / ignore:
        Optional rule-id filters, as in
        :func:`repro.lint.registry.resolve_rules`.
    """
    rules = resolve_rules(select, ignore)
    result = LintResult()
    for file, root in iter_python_files([Path(p) for p in paths]):
        result.findings.extend(lint_file(file, root=root, rules=rules))
        result.files_checked += 1
    result.findings.sort()
    return result
