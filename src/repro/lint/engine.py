"""File discovery, parsing, and two-phase rule dispatch.

:func:`lint_paths` is the library entry point.  It runs in two phases:

1. **Per-file** — expand files and directories into ``*.py`` targets,
   parse each with :mod:`ast`, build a
   :class:`~repro.lint.registry.FileContext` (including the pragma
   table), and run every applicable CG001–CG009 rule.  Each parsed
   module is also distilled into a
   :class:`~repro.lint.project.ModuleSummary` for phase two.  With an
   incremental :class:`~repro.lint.cache.LintCache`, files whose
   content hash is unchanged skip this phase entirely — findings and
   summary come from the cache, and only changed files are re-parsed
   (:attr:`LintResult.files_reparsed` counts them).

2. **Whole-program** — the summaries form a
   :class:`~repro.lint.project.ProjectContext` over which the
   CG010–CG013 rules run taint/reachability queries.  This phase is
   cheap graph work and is recomputed every run, cached summaries
   included: a changed module can shift reachability for *unchanged*
   reverse dependencies, so their project findings must never be
   replayed from cache.

Rules scope themselves on the file's path *relative to the package
root*; :func:`_rel_parts` recovers that for installed trees
(``…/src/repro/core/x.py`` → ``("core", "x.py")``) and for fixture trees
(``tmp/core/x.py`` linted with root ``tmp`` → the same), so tests can
exercise path-scoped rules without a full package checkout.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Set, Tuple, Type

from repro.lint.cache import CacheEntry, LintCache, content_digest, project_key
from repro.lint.findings import Finding
from repro.lint.pragmas import Suppressions, parse_suppressions
from repro.lint.project import (
    ModuleSummary,
    ProjectContext,
    summarize_module,
)
from repro.lint.registry import (
    FileContext,
    Rule,
    all_project_rules,
    all_rules,
    resolve_project_rules,
    resolve_rules,
)

# Importing the rule modules populates both registries.
import repro.lint.rules  # noqa: F401  (side-effect import)
import repro.lint.project_rules  # noqa: F401  (side-effect import)
import repro.lint.shards as _shards  # registers CG019-CG022
import repro.lint.effects as _effects  # registers CG015-CG018

__all__ = ["LintResult", "lint_file", "lint_paths", "iter_python_files"]

#: Rule id used for files that do not parse at all.
_SYNTAX_RULE_ID = "CG000"

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".venv", "node_modules",
                   ".mypy_cache", ".ruff_cache", ".pytest_cache"}


@dataclass
class LintResult:
    """Findings plus how much was looked at to produce them."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files actually parsed this run — equal to :attr:`files_checked`
    #: on a cold run, and only the changed files on a warm cached run
    #: (the whole-program phase reuses cached summaries for the rest).
    files_reparsed: int = 0
    #: The ``effects.json`` artifact text (sorted, deterministic) when
    #: the run was asked for it (``lint_paths(..., effects=True)``).
    effects: Optional[str] = None
    #: The ``shardplan.json`` certificate text when the run was asked
    #: for it (``lint_paths(..., shard_plan=True)``).
    shard_plan: Optional[str] = None
    #: True when :attr:`shard_plan` was served from the incremental
    #: cache's project-phase memo instead of being re-derived.
    shard_plan_from_cache: bool = False

    @property
    def ok(self) -> bool:
        """True when no rule fired."""
        return not self.findings


def iter_python_files(paths: Sequence[Path]) -> list[tuple[Path, Path]]:
    """Expand files/directories into ``(file, root)`` pairs.

    ``root`` is the directory the file was discovered under (the file's
    parent for explicit file arguments); rules use it to locate the file
    within the package when the path carries no ``repro`` component.
    """
    out: list[tuple[Path, Path]] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if any(part in _SKIP_DIR_NAMES for part in file.parts):
                    continue
                out.append((file, path))
        elif path.is_file():
            out.append((path, path.parent))
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return out


#: Top-level subpackages of ``repro`` that path-scoped rules key on.
_KNOWN_SUBPACKAGES = {
    "analysis", "baselines", "cluster", "core", "faults", "fleet",
    "games", "lint", "mlkit", "platform_", "serve", "sim", "streaming",
    "util", "workloads",
}


def _rel_parts(file: Path, root: Path) -> tuple[str, ...]:
    """Path components of ``file`` relative to the ``repro`` package."""
    resolved = file.resolve().parts
    if "repro" in resolved:
        # Last occurrence: the package dir even when a parent dir is
        # also called "repro".
        idx = len(resolved) - 1 - resolved[::-1].index("repro")
        parts = resolved[idx + 1:]
        if parts:
            return tuple(parts)
    try:
        parts = file.resolve().relative_to(root.resolve()).parts
    except ValueError:
        parts = (file.name,)
    while parts and parts[0] in ("src", "repro"):
        parts = parts[1:]
    if len(parts) <= 1:
        # An explicit file argument carries no tree context; recover the
        # subpackage from any known directory name in the full path so
        # `lint core/x.py` scopes the same way as `lint core/`.
        dirs = resolved[:-1]
        for i in range(len(dirs) - 1, -1, -1):
            if dirs[i] in _KNOWN_SUBPACKAGES:
                return tuple(resolved[i:])
    return tuple(parts) if parts else (file.name,)


def _pragma_hygiene(path: str, suppressions: Suppressions) -> list[Finding]:
    """CG000 findings for pragmas naming unknown rule ids.

    A ``# lint: disable=CG199`` suppresses nothing — silently.  That is
    the worst failure mode a suppression system can have (the author
    believes a rule is off), so an unknown id is a loud CG000-level
    finding listing the valid ids, exactly like ``--explain`` fails on
    an unknown id.  CG000 findings are never themselves suppressible.
    """
    known = set(all_rules()) | set(all_project_rules()) | {_SYNTAX_RULE_ID}
    out: list[Finding] = []
    valid = ", ".join(sorted(known))
    for line, token in suppressions.declared:
        if token not in known:
            out.append(Finding(
                path=path, line=line, col=1, rule_id=_SYNTAX_RULE_ID,
                message=(f"pragma names unknown rule id {token!r}; "
                         f"valid ids: {valid}"),
            ))
    return out


def _analyze_file(
    file: Path,
    *,
    root: Path,
    rules: Iterable[Type[Rule]],
    source: Optional[str] = None,
) -> Tuple[list[Finding], Optional[ModuleSummary]]:
    """Parse one file, run the per-file rules, and summarise it.

    Returns the sorted findings plus the module's whole-program summary
    (``None`` when the file does not parse — the CG000 finding stands
    in for it).
    """
    display = str(file)
    rel = _rel_parts(file, root)
    try:
        if source is None:
            source = file.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
    except (SyntaxError, ValueError, UnicodeDecodeError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 1
        reason = getattr(exc, "msg", None) or str(exc)
        return [Finding(path=display, line=int(line), col=int(col),
                        rule_id=_SYNTAX_RULE_ID,
                        message=f"file does not parse: {reason}")], None
    suppressions = parse_suppressions(source)
    ctx = FileContext(
        path=display, rel_parts=rel, tree=tree, suppressions=suppressions,
    )
    for rule_cls in rules:
        if rule_cls.applies_to(ctx):
            rule_cls(ctx).check()
    ctx.findings.extend(_pragma_hygiene(display, suppressions))
    summary = summarize_module(
        tree, path=display, rel_parts=rel, suppressions=suppressions,
    )
    return sorted(ctx.findings), summary


def lint_file(
    file: Path,
    *,
    root: Optional[Path] = None,
    rules: Optional[Iterable[Type[Rule]]] = None,
) -> list[Finding]:
    """Lint one file (per-file phase only), findings sorted by location."""
    if rules is None:
        rules = resolve_rules()
    root = root if root is not None else file.parent
    findings, _summary = _analyze_file(file, root=root, rules=rules)
    return findings


def lint_paths(
    paths: Sequence[object],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    whole_program: bool = True,
    cache: Optional[LintCache] = None,
    only_paths: Optional[Iterable[object]] = None,
    effects: bool = False,
    shard_plan: bool = False,
) -> LintResult:
    """Lint files and directory trees, both phases.

    Parameters
    ----------
    paths:
        Files and/or directories (``str`` or :class:`~pathlib.Path`).
    select / ignore:
        Optional rule-id filters, as in
        :func:`repro.lint.registry.resolve_rules`; they apply to both
        phases (``--select CG011`` runs only the whole-program RNG
        rule).
    whole_program:
        Run the CG010–CG013 project phase (default).  Per-file-only
        mode exists for fixtures that are not meaningful as a project.
    cache:
        A loaded :class:`~repro.lint.cache.LintCache`.  The engine
        consults and updates it; the caller owns
        :meth:`~repro.lint.cache.LintCache.save`.
    only_paths:
        When given, *reported* findings are filtered to these files —
        the analysis itself still covers every path in ``paths`` so the
        whole-program phase sees full cross-module context (this backs
        ``cocg lint --changed``).
    effects:
        Additionally render the inferred effect signatures
        (:func:`repro.lint.effects.render_effects`) into
        :attr:`LintResult.effects` (backs ``--effects-out``).  Implies
        nothing about rule selection — the inference runs even when
        CG015–CG018 are deselected.
    shard_plan:
        Additionally render the shard-interference certificate
        (:func:`repro.lint.shards.render_shard_plan`) into
        :attr:`LintResult.shard_plan` (backs ``--shard-plan-out``).
        With a cache, the certificate is memoised keyed on the summary
        content hashes: a warm run with no changed files serves the
        byte-identical text without re-deriving the call graph
        (:attr:`LintResult.shard_plan_from_cache`).
    """
    select = list(select) if select is not None else None
    ignore = list(ignore) if ignore is not None else None
    rules = resolve_rules(select, ignore)
    project_rules = resolve_project_rules(select, ignore) if whole_program else []
    result = LintResult()
    summaries: dict[str, ModuleSummary] = {}
    digests: dict[str, str] = {}
    live_keys: list[str] = []
    keep: Optional[Set[str]] = None
    if only_paths is not None:
        keep = {str(Path(p).resolve()) for p in only_paths}
    resolved_of: dict[str, str] = {}

    for file, root in iter_python_files([Path(p) for p in paths]):
        result.files_checked += 1
        key = str(file.resolve())
        live_keys.append(key)
        data = file.read_bytes()
        digest = content_digest(data)
        entry = cache.get(key, digest) if cache is not None else None
        if entry is None:
            try:
                source: Optional[str] = data.decode("utf-8")
            except UnicodeDecodeError:
                source = None  # _analyze_file re-reads and reports CG000
            findings, summary = _analyze_file(
                file, root=root, rules=rules, source=source,
            )
            result.files_reparsed += 1
            if cache is not None:
                cache.put(key, CacheEntry(
                    digest=digest, findings=findings, summary=summary,
                ))
        else:
            findings, summary = entry.findings, entry.summary
        resolved_of[str(file)] = key
        if summary is not None:
            resolved_of[summary.path] = key
            summaries[summary.module] = summary
            digests[summary.module] = digest
        result.findings.extend(findings)

    if (project_rules or effects or shard_plan) and summaries:
        project = ProjectContext(summaries)
        for rule_cls in project_rules:
            rule = rule_cls(project)
            rule.check()
            result.findings.extend(rule.findings)
        if effects:
            result.effects = _effects.render_effects(project)
        if shard_plan:
            memo_key = project_key(digests)
            cached = (cache.get_project(memo_key)
                      if cache is not None else None)
            if cached is not None:
                result.shard_plan = cached
                result.shard_plan_from_cache = True
            else:
                result.shard_plan = _shards.render_shard_plan(project)
                if cache is not None:
                    cache.put_project(memo_key, result.shard_plan)

    if cache is not None:
        cache.prune(live_keys)

    if keep is not None:
        result.findings = [
            f for f in result.findings
            if resolved_of.get(f.path, str(Path(f.path).resolve())) in keep
        ]
    result.findings.sort()
    return result
