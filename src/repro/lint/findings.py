"""The :class:`Finding` value type emitted by every lint rule.

A finding pins one rule violation to a ``file:line:col`` location.  The
type is deliberately tiny and serialisable — the JSON reporter emits
:meth:`Finding.to_dict` verbatim, and CI greps the text rendering.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Orders by ``(path, line, col, rule_id)`` so reports are stable
    regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Render as ``path:line:col: CGxxx message`` (grep-friendly)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """Plain-dict view for the JSON reporter."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }
