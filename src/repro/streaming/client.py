"""Client-side decode/display model.

The GA client decodes the stream and displays it; decode cost depends on
the codec and the client device class.  Thin clients (phones, TV sticks)
decode more slowly, adding to the end-to-end latency budget.
"""

from __future__ import annotations

from repro.util.validation import check_in

__all__ = ["ClientModel"]

#: Decode speed multiplier per device class (1.0 = desktop-class).
_DEVICE_FACTORS = {
    "desktop": 1.0,
    "laptop": 1.3,
    "phone": 1.8,
    "tv-stick": 2.4,
}

#: Base decode latency per frame (ms) per codec at desktop speed.
_DECODE_BASE_MS = {
    "h264": 1.2,
    "h265": 1.9,
    "av1": 2.8,
}


class ClientModel:
    """A player's terminal device.

    Parameters
    ----------
    device:
        ``"desktop"``, ``"laptop"``, ``"phone"`` or ``"tv-stick"``.
    display_latency_ms:
        Fixed present/scan-out latency of the display path.
    """

    def __init__(self, *, device: str = "desktop", display_latency_ms: float = 1.0):
        check_in("device", device, _DEVICE_FACTORS)
        if display_latency_ms < 0:
            raise ValueError(
                f"display_latency_ms must be >= 0, got {display_latency_ms}"
            )
        self.device = device
        self.display_latency_ms = float(display_latency_ms)

    def decode_latency_ms(self, codec: str) -> float:
        """Per-frame decode latency for a codec on this device."""
        check_in("codec", codec, _DECODE_BASE_MS)
        return _DECODE_BASE_MS[codec] * _DEVICE_FACTORS[self.device]

    def total_client_latency_ms(self, codec: str) -> float:
        """Decode plus display latency."""
        return self.decode_latency_ms(codec) + self.display_latency_ms
