"""Server-side video encoder model.

Encoding cost scales with pixel throughput (resolution × frame rate) and
with the codec's complexity.  The model returns both the CPU overhead the
session adds to the host and the per-frame encode latency — the two terms
the scheduler and the latency budget consume.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in, check_positive

__all__ = ["EncoderModel", "EncodeResult"]

#: (relative complexity, compression ratio) per supported codec.
_CODECS = {
    "h264": (1.0, 100.0),
    "h265": (1.6, 160.0),
    "av1": (2.4, 200.0),
}


@dataclass(frozen=True)
class EncodeResult:
    """Outcome of encoding one second of video."""

    cpu_overhead: float  # percent of the host CPU
    per_frame_latency_ms: float
    bitrate_mbps: float


class EncoderModel:
    """Software encoder cost model.

    Parameters
    ----------
    codec:
        ``"h264"``, ``"h265"`` or ``"av1"``.
    width, height:
        Stream resolution in pixels.
    cpu_per_megapixel_per_fps:
        CPU percentage consumed per (megapixel × fps) unit at h264
        complexity — the calibration constant.  The default (0.006)
        makes a 1080p60 h264 stream cost ≈ 0.75 % CPU, in line with
        hardware-assisted encode paths on the paper's testbed.
    """

    def __init__(
        self,
        *,
        codec: str = "h264",
        width: int = 1920,
        height: int = 1080,
        cpu_per_megapixel_per_fps: float = 0.006,
    ):
        check_in("codec", codec, _CODECS)
        if width <= 0 or height <= 0:
            raise ValueError(f"resolution must be positive, got {width}x{height}")
        check_positive("cpu_per_megapixel_per_fps", cpu_per_megapixel_per_fps)
        self.codec = codec
        self.width = int(width)
        self.height = int(height)
        self.cpu_per_megapixel_per_fps = float(cpu_per_megapixel_per_fps)

    @property
    def megapixels(self) -> float:
        """Frame size in megapixels."""
        return self.width * self.height / 1e6

    def encode_second(self, fps: float) -> EncodeResult:
        """Cost of encoding one second of video at ``fps`` frames.

        A zero-FPS second (fully stalled stream) costs nothing.
        """
        if fps < 0:
            raise ValueError(f"fps must be >= 0, got {fps}")
        complexity, compression = _CODECS[self.codec]
        cpu = self.cpu_per_megapixel_per_fps * self.megapixels * fps * complexity
        # Raw RGB24 pixel rate divided by the codec's compression ratio.
        raw_mbps = self.megapixels * fps * 24 / compression
        if fps == 0:
            latency = 0.0
        else:
            # Encoding a frame takes a slice of the per-frame budget that
            # grows with codec complexity.
            latency = (1000.0 / fps) * 0.12 * complexity
        return EncodeResult(
            cpu_overhead=float(cpu),
            per_frame_latency_ms=float(latency),
            bitrate_mbps=float(raw_mbps),
        )

    def cpu_overhead(self, fps: float) -> float:
        """Just the CPU percentage of :meth:`encode_second`."""
        return self.encode_second(fps).cpu_overhead
