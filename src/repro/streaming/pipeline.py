"""End-to-end streaming pipeline: capture → encode → network → decode.

Ties the encoder, network and client models together into the Fig-1
workflow and produces a per-second latency breakdown plus the CPU
overhead each hosted stream adds to the server — which the co-location
experiments charge against the host CPU budget.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.streaming.client import ClientModel
from repro.streaming.encoder import EncoderModel
from repro.streaming.network import NetworkModel

__all__ = ["LatencyBreakdown", "StreamingPipeline"]

#: Frame capture/copy latency on the server (ms per frame).
_CAPTURE_MS = 0.5


@dataclass(frozen=True)
class LatencyBreakdown:
    """Per-frame latency contributions in milliseconds."""

    capture_ms: float
    encode_ms: float
    network_ms: float
    decode_ms: float
    display_ms: float

    @property
    def total_ms(self) -> float:
        """Glass-to-glass latency: the sum of every component."""
        return (
            self.capture_ms
            + self.encode_ms
            + self.network_ms
            + self.decode_ms
            + self.display_ms
        )

    def interaction_grade(self, budget_ms: float = 50.0) -> bool:
        """Whether the glass-to-glass latency fits an interaction budget."""
        return self.total_ms <= budget_ms


class StreamingPipeline:
    """One hosted stream's full path.

    Parameters
    ----------
    encoder, network, client:
        Component models; defaults build a 1080p h264 stream over a
        100 Mbps link to a desktop client.
    """

    def __init__(
        self,
        *,
        encoder: EncoderModel | None = None,
        network: NetworkModel | None = None,
        client: ClientModel | None = None,
    ):
        self.encoder = encoder if encoder is not None else EncoderModel()
        self.network = network if network is not None else NetworkModel()
        self.client = client if client is not None else ClientModel()

    def stream_second(self, fps: float) -> tuple[LatencyBreakdown, float]:
        """Stream one second at ``fps``.

        Returns
        -------
        (LatencyBreakdown, cpu_overhead)
            The per-frame latency decomposition and the server CPU
            percentage the encode consumed this second.
        """
        enc = self.encoder.encode_second(fps)
        net = self.network.transmit_second(enc.bitrate_mbps)
        breakdown = LatencyBreakdown(
            capture_ms=_CAPTURE_MS if fps > 0 else 0.0,
            encode_ms=enc.per_frame_latency_ms,
            network_ms=net.latency_ms if fps > 0 else 0.0,
            decode_ms=self.client.decode_latency_ms(self.encoder.codec) if fps > 0 else 0.0,
            display_ms=self.client.display_latency_ms if fps > 0 else 0.0,
        )
        return breakdown, enc.cpu_overhead
