"""GamingAnywhere-style streaming pipeline model.

The paper hosts games under GamingAnywhere (§V-A): the server captures
rendered frames, encodes, and streams them; the client decodes, displays,
and sends input commands back.  For scheduling, the pipeline matters in
two ways, and this package models both:

* the **encoder** consumes server CPU in proportion to pixel rate — an
  overhead the co-location budget must carry per hosted session;
* the **end-to-end latency** (capture → encode → network → decode) is a
  QoS term on top of FPS; the paper cites a < 3 ms network target for
  interaction-grade play.
"""

from repro.streaming.encoder import EncoderModel, EncodeResult
from repro.streaming.network import NetworkModel, NetworkSample
from repro.streaming.client import ClientModel
from repro.streaming.pipeline import StreamingPipeline, LatencyBreakdown

__all__ = [
    "EncoderModel",
    "EncodeResult",
    "NetworkModel",
    "NetworkSample",
    "ClientModel",
    "StreamingPipeline",
    "LatencyBreakdown",
]
