"""Network model: latency, jitter and bandwidth between server and client.

The operator-managed connection contributes propagation latency plus
queueing when the stream's bitrate approaches the link bandwidth.  The
paper quotes a < 3 ms network target for interaction-grade cloud play;
the model makes that a checkable property.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import Seed, as_rng
from repro.util.validation import check_nonnegative, check_positive

__all__ = ["NetworkModel", "NetworkSample"]


@dataclass(frozen=True)
class NetworkSample:
    """One observation of the link."""

    latency_ms: float
    delivered_mbps: float
    dropped: bool


class NetworkModel:
    """A stochastic last-mile link.

    Parameters
    ----------
    base_latency_ms:
        Propagation + switching latency.
    jitter_ms:
        Half-normal jitter scale added on top.
    bandwidth_mbps:
        Link capacity; offered load beyond it is dropped and queueing
        delay grows sharply as utilisation approaches 1.
    loss_rate:
        Independent packet-level drop probability per sample.
    seed:
        Randomness for jitter and loss.
    """

    def __init__(
        self,
        *,
        base_latency_ms: float = 2.0,
        jitter_ms: float = 0.4,
        bandwidth_mbps: float = 100.0,
        loss_rate: float = 0.001,
        seed: Seed = 0,
    ):
        check_positive("base_latency_ms", base_latency_ms)
        check_nonnegative("jitter_ms", jitter_ms)
        check_positive("bandwidth_mbps", bandwidth_mbps)
        if not (0.0 <= loss_rate < 1.0):
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.base_latency_ms = float(base_latency_ms)
        self.jitter_ms = float(jitter_ms)
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.loss_rate = float(loss_rate)
        self._rng = as_rng(seed)

    def transmit_second(self, offered_mbps: float) -> NetworkSample:
        """Carry one second of stream at ``offered_mbps``."""
        check_nonnegative("offered_mbps", offered_mbps)
        delivered = min(offered_mbps, self.bandwidth_mbps)
        utilisation = min(offered_mbps / self.bandwidth_mbps, 0.999)
        # M/M/1-flavoured queueing inflation of the base latency.
        queueing = self.base_latency_ms * utilisation / (1.0 - utilisation)
        jitter = abs(self._rng.normal(scale=self.jitter_ms)) if self.jitter_ms else 0.0
        dropped = bool(self._rng.random() < self.loss_rate) or (
            offered_mbps > self.bandwidth_mbps
        )
        return NetworkSample(
            latency_ms=float(self.base_latency_ms + queueing + jitter),
            delivered_mbps=float(delivered),
            dropped=dropped,
        )

    def meets_paper_target(self, offered_mbps: float, *, target_ms: float = 3.0,
                           samples: int = 100) -> bool:
        """Check the paper's < 3 ms network requirement at a load level.

        Uses the median of ``samples`` draws so jitter outliers don't
        dominate.
        """
        lat = [self.transmit_second(offered_mbps).latency_ms for _ in range(samples)]
        return float(np.median(lat)) < target_ms
