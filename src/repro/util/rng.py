"""Seeded random-number-generator helpers.

The whole library follows one rule: *no global randomness*.  Every
stochastic component accepts a ``seed`` argument which may be

* ``None`` — a fresh, OS-seeded generator (non-reproducible; only for
  interactive exploration),
* an ``int`` — a deterministic :class:`numpy.random.Generator`,
* an existing :class:`numpy.random.Generator` — used as-is (shared state).

Components that own several independent random streams (e.g. one per
co-located game session) should split their generator with
:func:`spawn_rngs` instead of reusing a single stream, so that adding a
session never perturbs the samples drawn by its neighbours.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

Seed = Union[None, int, np.random.Generator]

__all__ = ["Seed", "as_rng", "spawn_rngs", "stable_hash"]


def as_rng(seed: Seed = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None``, an integer seed, or an existing generator.

    Returns
    -------
    numpy.random.Generator
        A generator.  When ``seed`` is already a generator it is returned
        unchanged (not copied), so the caller shares its state.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: Seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    independent of each other *and* of the parent stream.

    Parameters
    ----------
    seed:
        Parent seed or generator.
    n:
        Number of children, ``n >= 0``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the parent's bit generator state by drawing
        # one 64-bit word per child; deterministic given the parent state.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def stable_hash(text: str, mod: Optional[int] = None) -> int:
    """Deterministic non-cryptographic string hash (FNV-1a, 64-bit).

    Python's builtin :func:`hash` is salted per process, which would break
    reproducibility whenever a seed is derived from a name (e.g. a game
    title or player id).  This hash is stable across processes and runs.

    Parameters
    ----------
    text:
        String to hash.
    mod:
        Optional modulus; when given the result is reduced into
        ``[0, mod)``.
    """
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h ^= byte
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    if mod is not None:
        if mod <= 0:
            raise ValueError(f"mod must be positive, got {mod}")
        h %= mod
    return h


def derive_seed(seed: Seed, *names: str) -> int:
    """Derive a deterministic integer seed from a base seed and names.

    Useful to give each named entity (game, player, server) its own
    reproducible stream: ``derive_seed(1234, "genshin", "player-7")``.
    """
    base = 0 if seed is None else (seed if isinstance(seed, int) else 0)
    h = base & 0xFFFFFFFFFFFFFFFF
    for name in names:
        h = (h * 0x9E3779B97F4A7C15 + stable_hash(name)) & 0xFFFFFFFFFFFFFFFF
    return h


__all__.append("derive_seed")


def region_seed(seed: Seed, name: str) -> int:
    """The seed of one regional shard's randomness.

    Every stream a region owns — arrivals, session seeds, node
    telemetry noise — descends from ``derive_seed(seed, "region",
    name)``, so two regions of the same fleet never draw correlated
    samples and a region is replayable from ``(base seed, name)``
    alone.  Centralised here so the ``"region"`` namespace has exactly
    one owner (rule CG021 flags namespaces shared across modules).
    """
    return derive_seed(seed, "region", name)


__all__.append("region_seed")
