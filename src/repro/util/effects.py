"""Declared effect signatures — the contract half of the effect system.

The lint analyzer (:mod:`repro.lint.effects`) *infers* what a function
does — RNG draws, clock reads, module/class-level state writes, engine
event emission, digest writes, file/console I/O — by a fixpoint over the
project call graph.  :func:`effects` is the matching *declaration*: a
zero-runtime-cost decorator that states the effects a function is
allowed to have, so rule **CG016** can fail the build when the two
drift apart, and rule **CG018** can hold the Algorithm-1/rollout hot
path to purity (no effects beyond declared RNG), which is what makes a
future vectorised or compiled kernel swap provably behaviour-preserving.

"Zero runtime cost" is literal: the decorator stores two attributes on
the function object at import time and returns the function unchanged —
no wrapper, no extra frame, nothing on the call path.  The analyzer
never imports the decorated module at all; it reads the decoration
statically from the AST.

Usage::

    from repro.util.effects import effects

    @effects()                       # declared pure
    def score(xs): ...

    @effects("rng")                  # may draw from a (seeded) stream
    def sample(rng): ...

    @effects("rng", hot_path=True)   # pure-but-RNG *and* on the hot path
    def rollout(...): ...            # (CG018 enforces the purity)
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional, TypeVar

__all__ = ["EFFECTS", "EffectError", "effects", "declared_effects",
           "is_hot_path"]

#: The effect alphabet, in canonical (report) order.  A signature is a
#: subset of this; the lattice is subset inclusion with union as join.
EFFECTS = (
    "rng",           # draws from a random stream
    "clock",         # reads the wall clock
    "global_write",  # writes module- or class-level mutable state
    "engine_emit",   # schedules simulation-engine events
    "digest_write",  # records into the replay digest / telemetry plane
    "io",            # file or console I/O
)

_EFFECT_SET = frozenset(EFFECTS)

#: Attribute names the decorator stores (and the analyzer mirrors).
ATTR_EFFECTS = "__cocg_effects__"
ATTR_HOT_PATH = "__cocg_hot_path__"

_F = TypeVar("_F", bound=Callable)


class EffectError(ValueError):
    """An ``@effects(...)`` declaration names an unknown effect."""


def effects(*names: str, hot_path: bool = False) -> Callable[[_F], _F]:
    """Declare a function's effect signature.

    Parameters
    ----------
    names:
        Effects the function (including everything it calls) is allowed
        to have, drawn from :data:`EFFECTS`.  No names declares the
        function pure.
    hot_path:
        Mark the function as part of the Algorithm-1/rollout hot path.
        CG018 then requires its *inferred* signature to be empty except
        for declared ``rng``.

    The decorator validates eagerly at import time — a typo'd effect
    name fails the first test run, not a later lint pass — then returns
    the function unchanged.
    """
    unknown = sorted(set(names) - _EFFECT_SET)
    if unknown:
        raise EffectError(
            f"unknown effect(s) {', '.join(unknown)}; "
            f"expected a subset of {{{', '.join(EFFECTS)}}}"
        )
    declared = frozenset(names)

    def decorate(fn: _F) -> _F:
        setattr(fn, ATTR_EFFECTS, declared)
        setattr(fn, ATTR_HOT_PATH, bool(hot_path))
        return fn

    return decorate


def declared_effects(fn: Callable) -> Optional[FrozenSet[str]]:
    """The declared signature, or ``None`` when ``fn`` is undeclared."""
    return getattr(fn, ATTR_EFFECTS, None)


def is_hot_path(fn: Callable) -> bool:
    """Whether ``fn`` was declared ``hot_path=True``."""
    return bool(getattr(fn, ATTR_HOT_PATH, False))
