"""Declared effect signatures — the contract half of the effect system.

The lint analyzer (:mod:`repro.lint.effects`) *infers* what a function
does — RNG draws, clock reads, module/class-level state writes, engine
event emission, digest writes, file/console I/O — by a fixpoint over the
project call graph.  :func:`effects` is the matching *declaration*: a
zero-runtime-cost decorator that states the effects a function is
allowed to have, so rule **CG016** can fail the build when the two
drift apart, and rule **CG018** can hold the Algorithm-1/rollout hot
path to purity (no effects beyond declared RNG), which is what makes a
future vectorised or compiled kernel swap provably behaviour-preserving.

"Zero runtime cost" is literal: the decorator stores two attributes on
the function object at import time and returns the function unchanged —
no wrapper, no extra frame, nothing on the call path.  The analyzer
never imports the decorated module at all; it reads the decoration
statically from the AST.

Usage::

    from repro.util.effects import effects

    @effects()                       # declared pure
    def score(xs): ...

    @effects("rng")                  # may draw from a (seeded) stream
    def sample(rng): ...

    @effects("rng", hot_path=True)   # pure-but-RNG *and* on the hot path
    def rollout(...): ...            # (CG018 enforces the purity)

The shard-certification half (rules CG019–CG022 and the
``shardplan.json`` certificate) uses two more zero-cost markers from
this module:

* :func:`shard_entry` names a function as the top of one partitioned
  event stream (``@shard_entry("fleet")``) — the static analyzer walks
  forward from every entry to classify reachable code as shard-local /
  shard-shared-read / shard-interfering;
* :func:`shard_merge_point` marks the one place where cross-shard
  results are allowed to join (digest aggregation), which is what rule
  CG022 checks cross-partition telemetry writes against.

Both follow the exact ``@effects`` pattern: one attribute at import
time, function returned unchanged, read statically by the analyzer.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Optional, TypeVar

__all__ = ["EFFECTS", "EffectError", "effects", "declared_effects",
           "is_hot_path", "shard_entry", "shard_entry_group",
           "shard_merge_point", "is_shard_merge_point"]

#: The effect alphabet, in canonical (report) order.  A signature is a
#: subset of this; the lattice is subset inclusion with union as join.
EFFECTS = (
    "rng",           # draws from a random stream
    "clock",         # reads the wall clock
    "global_write",  # writes module- or class-level mutable state
    "engine_emit",   # schedules simulation-engine events
    "digest_write",  # records into the replay digest / telemetry plane
    "io",            # file or console I/O
)

_EFFECT_SET = frozenset(EFFECTS)

#: Attribute names the decorators store (and the analyzer mirrors).
ATTR_EFFECTS = "__cocg_effects__"
ATTR_HOT_PATH = "__cocg_hot_path__"
ATTR_SHARD_ENTRY = "__cocg_shard_entry__"
ATTR_SHARD_MERGE = "__cocg_shard_merge__"

_F = TypeVar("_F", bound=Callable)


class EffectError(ValueError):
    """An ``@effects(...)`` declaration names an unknown effect."""


def effects(*names: str, hot_path: bool = False) -> Callable[[_F], _F]:
    """Declare a function's effect signature.

    Parameters
    ----------
    names:
        Effects the function (including everything it calls) is allowed
        to have, drawn from :data:`EFFECTS`.  No names declares the
        function pure.
    hot_path:
        Mark the function as part of the Algorithm-1/rollout hot path.
        CG018 then requires its *inferred* signature to be empty except
        for declared ``rng``.

    The decorator validates eagerly at import time — a typo'd effect
    name fails the first test run, not a later lint pass — then returns
    the function unchanged.
    """
    unknown = sorted(set(names) - _EFFECT_SET)
    if unknown:
        raise EffectError(
            f"unknown effect(s) {', '.join(unknown)}; "
            f"expected a subset of {{{', '.join(EFFECTS)}}}"
        )
    declared = frozenset(names)

    def decorate(fn: _F) -> _F:
        setattr(fn, ATTR_EFFECTS, declared)
        setattr(fn, ATTR_HOT_PATH, bool(hot_path))
        return fn

    return decorate


def declared_effects(fn: Callable) -> Optional[FrozenSet[str]]:
    """The declared signature, or ``None`` when ``fn`` is undeclared."""
    return getattr(fn, ATTR_EFFECTS, None)


def is_hot_path(fn: Callable) -> bool:
    """Whether ``fn`` was declared ``hot_path=True``."""
    return bool(getattr(fn, ATTR_HOT_PATH, False))


def shard_entry(group: str) -> Callable[[_F], _F]:
    """Declare a function as a shard entry point of partition ``group``.

    A shard entry point is the top of one partitioned event stream —
    ``FleetExperiment.run``, the gateway ``pump``, cluster
    ``dispatch``/``submit``.  The shard-interference analyzer
    (:mod:`repro.lint.shards`) reads the decoration statically, walks
    forward from every entry, and classifies each reachable function as
    shard-local, shard-shared-read, or shard-interfering in the
    ``shardplan.json`` certificate.  Entries in the same ``group``
    execute on the same partition; rules CG019/CG021/CG022 only fire on
    state reachable from *distinct* partitions.

    Groups come in two spellings: a bare name (``"fleet"``) or a
    ``family:member`` pair (``"region:controller"``).  The part before
    the colon is the group's *partition family*: entries whose groups
    share a family execute on (replicas of) the same partition
    template, so the analyzer treats code they share as shard-local —
    one regional heap never races its own clone.  Distinct families
    are genuinely distinct partitions.

    Like :func:`effects`, the decorator stores one attribute at import
    time and returns the function unchanged — nothing on the call path.
    The group name is validated eagerly so a typo fails the first
    import, not a later lint pass.
    """
    parts = group.split(":") if isinstance(group, str) else []
    if not (1 <= len(parts) <= 2) or not all(
            p and p.replace("-", "_").isidentifier() for p in parts):
        raise EffectError(
            f"shard_entry group must be a non-empty identifier-like "
            f"string or a 'family:member' pair, got {group!r}"
        )

    def decorate(fn: _F) -> _F:
        setattr(fn, ATTR_SHARD_ENTRY, group)
        return fn

    return decorate


def shard_entry_group(fn: Callable) -> Optional[str]:
    """The declared shard group, or ``None`` when ``fn`` is not an entry."""
    return getattr(fn, ATTR_SHARD_ENTRY, None)


def shard_merge_point(fn: _F) -> _F:
    """Mark ``fn`` as the declared merge point for cross-shard results.

    Rule CG022 requires every telemetry/digest sink fed from more than
    one partition to sit behind a merge-marked function: the one place
    where per-shard streams are allowed to join in a defined order.
    Zero runtime cost — one attribute, function returned unchanged.
    """
    setattr(fn, ATTR_SHARD_MERGE, True)
    return fn


def is_shard_merge_point(fn: Callable) -> bool:
    """Whether ``fn`` was marked with :func:`shard_merge_point`."""
    return bool(getattr(fn, ATTR_SHARD_MERGE, False))
