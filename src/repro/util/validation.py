"""Argument-validation helpers.

Small, dependency-free checks used at public API boundaries.  They raise
``ValueError``/``TypeError`` with messages that name the offending
argument, which keeps the individual modules terse.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple

import numpy as np

__all__ = [
    "check_positive",
    "check_nonnegative",
    "check_fraction",
    "check_in",
    "check_shape",
    "check_array_1d",
    "check_array_2d",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a non-negative finite number, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Require ``value`` in ``[0, 1]`` (or ``(0, 1)`` when not inclusive)."""
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if inclusive:
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not (0.0 < value < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value


def check_in(name: str, value: Any, allowed: Iterable[Any]) -> Any:
    """Require ``value`` to be a member of ``allowed``."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise ValueError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def check_shape(name: str, array: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Require an exact array shape; ``-1`` entries are wildcards."""
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, (have, want) in enumerate(zip(array.shape, shape)):
        if want != -1 and have != want:
            raise ValueError(
                f"{name} axis {axis} must have length {want}, got shape {array.shape}"
            )
    return array


def check_array_1d(name: str, array: Any, dtype=None) -> np.ndarray:
    """Convert to a 1-D ndarray, rejecting higher-rank input."""
    out = np.asarray(array, dtype=dtype)
    if out.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {out.shape}")
    return out


def check_array_2d(name: str, array: Any, dtype=None) -> np.ndarray:
    """Convert to a 2-D ndarray, rejecting other ranks."""
    out = np.asarray(array, dtype=dtype)
    if out.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {out.shape}")
    return out
