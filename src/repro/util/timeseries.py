"""Named, NumPy-backed resource time series.

The simulator, the profiler and the benchmarks all exchange resource
telemetry as a :class:`ResourceSeries`: a ``(T, D)`` float array with a
start time, a fixed sampling period, and named columns (one per resource
dimension).  The class is a thin, copy-free wrapper — heavy computation
happens on the underlying array, per the HPC guide (views, not copies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.util.validation import check_array_2d, check_positive

__all__ = ["ResourceSeries"]


@dataclass
class ResourceSeries:
    """A uniformly sampled multi-dimensional resource usage series.

    Parameters
    ----------
    values:
        Array of shape ``(T, D)``; row ``t`` holds the usage sampled over
        ``[start + t*period, start + (t+1)*period)``.
    columns:
        ``D`` column names, e.g. ``("cpu", "gpu", "gpu_mem", "ram")``.
    period:
        Sampling period in seconds (default 1.0).
    start:
        Timestamp of the first sample in seconds (default 0.0).
    """

    values: np.ndarray
    columns: Tuple[str, ...]
    period: float = 1.0
    start: float = 0.0

    def __post_init__(self) -> None:
        self.values = check_array_2d("values", self.values, dtype=float)
        self.columns = tuple(self.columns)
        if len(self.columns) != self.values.shape[1]:
            raise ValueError(
                f"columns has {len(self.columns)} names but values has "
                f"{self.values.shape[1]} columns"
            )
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names: {self.columns}")
        check_positive("period", self.period)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of rows ``T``."""
        return self.values.shape[0]

    @property
    def n_dims(self) -> int:
        """Number of resource dimensions ``D``."""
        return self.values.shape[1]

    @property
    def duration(self) -> float:
        """Covered wall time in seconds."""
        return self.n_samples * self.period

    @property
    def times(self) -> np.ndarray:
        """Sample start timestamps, shape ``(T,)``."""
        return self.start + self.period * np.arange(self.n_samples)

    def column(self, name: str) -> np.ndarray:
        """Return a *view* of one named column."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {self.columns}") from None
        return self.values[:, idx]

    def column_index(self, name: str) -> int:
        """Index of a named column."""
        try:
            return self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {self.columns}") from None

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def slice_time(self, t0: float, t1: float) -> "ResourceSeries":
        """Rows whose sample window starts in ``[t0, t1)`` (a view)."""
        if t1 < t0:
            raise ValueError(f"empty interval: t0={t0} > t1={t1}")
        lo = int(np.ceil(max(t0 - self.start, 0.0) / self.period - 1e-9))
        hi = int(np.ceil(max(t1 - self.start, 0.0) / self.period - 1e-9))
        lo = min(max(lo, 0), self.n_samples)
        hi = min(max(hi, lo), self.n_samples)
        return ResourceSeries(
            self.values[lo:hi],
            self.columns,
            period=self.period,
            start=self.start + lo * self.period,
        )

    def resample(self, period: float, reduce: str = "mean") -> "ResourceSeries":
        """Aggregate into coarser windows of ``period`` seconds.

        ``period`` must be an integer multiple of the current period.  A
        trailing partial window is dropped (matching the paper's 5-second
        frame slicing, which only considers complete frames).

        Parameters
        ----------
        period:
            New sampling period.
        reduce:
            ``"mean"`` or ``"max"`` aggregation within each window.
        """
        check_positive("period", period)
        ratio = period / self.period
        k = int(round(ratio))
        if k < 1 or abs(ratio - k) > 1e-9:
            raise ValueError(
                f"period {period} is not an integer multiple of {self.period}"
            )
        if k == 1:
            return ResourceSeries(self.values, self.columns, period=period, start=self.start)
        n_windows = self.n_samples // k
        trimmed = self.values[: n_windows * k].reshape(n_windows, k, self.n_dims)
        if reduce == "mean":
            agg = trimmed.mean(axis=1)
        elif reduce == "max":
            agg = trimmed.max(axis=1)
        else:
            raise ValueError(f"reduce must be 'mean' or 'max', got {reduce!r}")
        return ResourceSeries(agg, self.columns, period=period, start=self.start)

    def select(self, names: Sequence[str]) -> "ResourceSeries":
        """Project onto a subset of columns (copies the selected data)."""
        idx = [self.column_index(n) for n in names]
        return ResourceSeries(
            self.values[:, idx], tuple(names), period=self.period, start=self.start
        )

    def concat(self, other: "ResourceSeries") -> "ResourceSeries":
        """Append ``other`` (same columns and period) after this series."""
        if other.columns != self.columns:
            raise ValueError(f"column mismatch: {self.columns} vs {other.columns}")
        if abs(other.period - self.period) > 1e-12:
            raise ValueError(f"period mismatch: {self.period} vs {other.period}")
        return ResourceSeries(
            np.concatenate([self.values, other.values], axis=0),
            self.columns,
            period=self.period,
            start=self.start,
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def peak(self) -> np.ndarray:
        """Per-dimension maximum, shape ``(D,)`` (zeros when empty)."""
        if self.n_samples == 0:
            return np.zeros(self.n_dims)
        return self.values.max(axis=0)

    def mean(self) -> np.ndarray:
        """Per-dimension mean, shape ``(D,)`` (zeros when empty)."""
        if self.n_samples == 0:
            return np.zeros(self.n_dims)
        return self.values.mean(axis=0)

    @staticmethod
    def zeros(
        n_samples: int, columns: Sequence[str], *, period: float = 1.0, start: float = 0.0
    ) -> "ResourceSeries":
        """All-zero series of the given length."""
        return ResourceSeries(
            np.zeros((n_samples, len(columns))), tuple(columns), period=period, start=start
        )

    # ------------------------------------------------------------------
    # CSV interchange (bring-your-own telemetry)
    # ------------------------------------------------------------------
    def to_csv(self, path) -> None:
        """Write ``time`` + named columns as CSV.

        The format is the profiler's real-trace entry point: export your
        own cgroup/GPU-Z telemetry in this shape and feed it to
        :meth:`from_csv` → :class:`~repro.core.profiler.FrameGrainedProfiler`.
        """
        from pathlib import Path

        header = "time," + ",".join(self.columns)
        body = np.column_stack([self.times, self.values])
        lines = [header]
        lines += [",".join(f"{v:.6g}" for v in row) for row in body]
        Path(path).write_text("\n".join(lines) + "\n")

    @staticmethod
    def from_csv(path) -> "ResourceSeries":
        """Read a series written by :meth:`to_csv` (or hand-made in the
        same shape: a ``time`` column plus one column per dimension,
        uniformly sampled)."""
        from pathlib import Path

        lines = Path(path).read_text().strip().splitlines()
        if len(lines) < 2:
            raise ValueError(f"{path}: need a header and at least one row")
        header = [h.strip() for h in lines[0].split(",")]
        if not header or header[0] != "time":
            raise ValueError(f"{path}: first column must be 'time', got {header[:1]}")
        columns = tuple(header[1:])
        if not columns:
            raise ValueError(f"{path}: no data columns")
        data = np.array(
            [[float(v) for v in line.split(",")] for line in lines[1:]]
        )
        if data.shape[1] != len(header):
            raise ValueError(f"{path}: ragged rows")
        times = data[:, 0]
        if len(times) > 1:
            periods = np.diff(times)
            if not np.allclose(periods, periods[0]):
                raise ValueError(f"{path}: sampling must be uniform")
            period = float(periods[0])
        else:
            period = 1.0
        return ResourceSeries(
            data[:, 1:], columns, period=period, start=float(times[0])
        )
