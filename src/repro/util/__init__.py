"""Shared utilities: seeded randomness, validation, time series, logging.

Everything in :mod:`repro` that needs randomness takes either an integer
seed or a :class:`numpy.random.Generator`; :func:`repro.util.rng.as_rng`
normalises the two.  All experiments in the benchmark suite are therefore
reproducible bit-for-bit.
"""

from repro.util.effects import declared_effects, effects, is_hot_path
from repro.util.rng import as_rng, spawn_rngs
from repro.util.validation import (
    check_fraction,
    check_in,
    check_nonnegative,
    check_positive,
    check_shape,
)
from repro.util.timeseries import ResourceSeries

__all__ = [
    "as_rng",
    "spawn_rngs",
    "effects",
    "declared_effects",
    "is_hot_path",
    "check_fraction",
    "check_in",
    "check_nonnegative",
    "check_positive",
    "check_shape",
    "ResourceSeries",
]
