"""The measurement plane: what the scheduler can actually see.

The real system observes per-process CPU via cgroups and GPU counters
via GPU-Z — noisy, ceiling-clipped *usage*, never the game's latent
demand.  :class:`TelemetryRecorder` enforces that separation: the
simulation records (demand, allocation) pairs, and consumers read
noise-perturbed usage ``min(demand, allocation) + ε``.  Ground-truth
demand stays available for evaluation but is marked as such.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.platform_.resources import DIMENSIONS, N_DIMS, ResourceVector
from repro.util.rng import Seed, as_rng
from repro.util.timeseries import ResourceSeries
from repro.util.validation import check_nonnegative

__all__ = ["UsageSample", "TelemetryRecorder"]


@dataclass(frozen=True)
class UsageSample:
    """One second of one session's telemetry."""

    time: int
    session_id: str
    demand: ResourceVector
    allocation: ResourceVector

    @property
    def usage(self) -> ResourceVector:
        """True consumption: demand clipped at the ceiling."""
        return self.demand.minimum(self.allocation)


class TelemetryRecorder:
    """Accumulates per-session usage and serves it back as time series.

    Parameters
    ----------
    noise_std:
        Standard deviation (percentage points) of the additive sensor
        noise applied to *observed* usage.  Ground-truth series are not
        perturbed.
    seed:
        Noise stream seed.
    """

    def __init__(self, *, noise_std: float = 0.8, seed: Seed = 0):
        check_nonnegative("noise_std", noise_std)
        self.noise_std = float(noise_std)
        self._rng = as_rng(seed)
        self._samples: Dict[str, List[UsageSample]] = {}
        self._observed: Dict[str, List[np.ndarray]] = {}
        self._times: Dict[str, List[int]] = {}

    # ------------------------------------------------------------------
    def record(
        self,
        time: int,
        session_id: str,
        demand: ResourceVector,
        allocation: ResourceVector,
    ) -> ResourceVector:
        """Record one second; returns the *observed* (noisy) usage."""
        sample = UsageSample(int(time), session_id, demand, allocation)
        self._samples.setdefault(session_id, []).append(sample)
        usage = sample.usage.array
        if self.noise_std > 0:
            observed = usage + self._rng.normal(scale=self.noise_std, size=N_DIMS)
            observed = np.clip(observed, 0.0, 100.0)
        else:
            observed = usage.copy()
        self._observed.setdefault(session_id, []).append(observed)
        self._times.setdefault(session_id, []).append(int(time))
        return ResourceVector.from_array(observed)

    # ------------------------------------------------------------------
    @property
    def session_ids(self) -> List[str]:
        """Sessions with at least one recorded sample."""
        return list(self._samples)

    def n_samples(self, session_id: str) -> int:
        """Number of recorded seconds for one session."""
        return len(self._samples.get(session_id, ()))

    def observed_series(self, session_id: str) -> ResourceSeries:
        """Noisy usage telemetry of one session (what the profiler sees)."""
        rows = self._observed.get(session_id)
        if not rows:
            raise KeyError(f"no telemetry for session {session_id!r}")
        start = float(self._times[session_id][0])
        return ResourceSeries(np.stack(rows), DIMENSIONS, period=1.0, start=start)

    def observed_window(
        self, session_id: str, seconds: int
    ) -> Optional[np.ndarray]:
        """Mean observed usage over the last ``seconds`` samples.

        Returns ``None`` when fewer samples exist (a frame needs a full
        window).
        """
        rows = self._observed.get(session_id)
        if rows is None or len(rows) < seconds:
            return None
        return np.mean(rows[-seconds:], axis=0)

    def true_demand_series(self, session_id: str) -> ResourceSeries:
        """Ground-truth demand (evaluation only — invisible in a real
        deployment)."""
        samples = self._samples.get(session_id)
        if not samples:
            raise KeyError(f"no telemetry for session {session_id!r}")
        return ResourceSeries(
            np.stack([s.demand.array for s in samples]),
            DIMENSIONS,
            period=1.0,
            start=float(samples[0].time),
        )

    def true_usage_series(self, session_id: str) -> ResourceSeries:
        """Ground-truth clipped usage (demand ∧ allocation, no noise)."""
        samples = self._samples.get(session_id)
        if not samples:
            raise KeyError(f"no telemetry for session {session_id!r}")
        return ResourceSeries(
            np.stack([s.usage.array for s in samples]),
            DIMENSIONS,
            period=1.0,
            start=float(samples[0].time),
        )

    def allocation_series(self, session_id: str) -> ResourceSeries:
        """Granted ceilings over time (the Fig-10 'allocated' line)."""
        samples = self._samples.get(session_id)
        if not samples:
            raise KeyError(f"no telemetry for session {session_id!r}")
        return ResourceSeries(
            np.stack([s.allocation.array for s in samples]),
            DIMENSIONS,
            period=1.0,
            start=float(samples[0].time),
        )

    # ------------------------------------------------------------------
    def total_usage_matrix(self, horizon: int) -> np.ndarray:
        """Server-wide true usage summed over sessions, shape ``(horizon, 4)``.

        Seconds with no running session contribute zero.
        """
        total = np.zeros((int(horizon), N_DIMS))
        for sid, samples in self._samples.items():
            for s in samples:
                if 0 <= s.time < horizon:
                    total[s.time] += s.usage.array
        return total

    def peak_total_usage(self, horizon: int) -> np.ndarray:
        """Per-dimension max of the summed usage (Fig-9's headline)."""
        return self.total_usage_matrix(horizon).max(axis=0)
