"""The measurement plane: what the scheduler can actually see.

The real system observes per-process CPU via cgroups and GPU counters
via GPU-Z — noisy, ceiling-clipped *usage*, never the game's latent
demand.  :class:`TelemetryRecorder` enforces that separation: the
simulation records (demand, allocation) pairs, and consumers read
noise-perturbed usage ``min(demand, allocation) + ε``.  Ground-truth
demand stays available for evaluation but is marked as such.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.platform_.resources import DIMENSIONS, N_DIMS, ResourceVector
from repro.util.rng import Seed, as_rng
from repro.util.timeseries import ResourceSeries
from repro.util.validation import check_fraction, check_nonnegative

__all__ = [
    "UsageSample",
    "FaultEvent",
    "GatewayEvent",
    "TelemetryPerturbation",
    "TelemetryRecorder",
]


@dataclass(frozen=True)
class UsageSample:
    """One second of one session's telemetry."""

    time: int
    session_id: str
    demand: ResourceVector
    allocation: ResourceVector

    @property
    def usage(self) -> ResourceVector:
        """True consumption: demand clipped at the ceiling."""
        return self.demand.minimum(self.allocation)


@dataclass(frozen=True)
class FaultEvent:
    """One fault (or fault-handling) event, as seen by the data plane."""

    time: float
    kind: str
    detail: str = ""


@dataclass(frozen=True)
class GatewayEvent:
    """One admission-gateway outcome (see :mod:`repro.serve.gateway`).

    ``outcome`` is the gateway's verdict (``admitted`` / ``queued`` /
    ``shed`` / ``dead-lettered`` / …); ``category`` the request's game
    category.  Gateway events are part of :meth:`TelemetryRecorder.digest`
    so shed/queue decisions are replay-checked exactly like usage.
    """

    time: float
    outcome: str
    category: str
    detail: str = ""


class TelemetryPerturbation:
    """A windowed measurement fault applied to matching samples.

    Installed by :class:`~repro.faults.injector.FaultInjector`; carries
    its own seeded generator so the perturbed samples are a pure
    function of ``(plan seed, fault index, record order)``.

    Parameters
    ----------
    kind:
        ``"dropout"`` (samples vanish with probability ``rate``) or
        ``"noise"`` (extra Gaussian noise ``std`` plus optional spikes).
    start / end:
        Active window ``[start, end)`` in simulation seconds.
    session / node:
        Targeting: ``session`` is a session-id prefix, ``node`` matches
        the ``…@<node>`` suffix of cluster session ids; ``"*"`` = all.
    """

    def __init__(
        self,
        *,
        kind: str,
        start: float,
        end: float = math.inf,
        rate: float = 1.0,
        std: float = 0.0,
        spike_prob: float = 0.0,
        spike_scale: float = 25.0,
        session: str = "*",
        node: str = "*",
        seed: Seed = 0,
    ):
        if kind not in ("dropout", "noise"):
            raise ValueError(f"unknown perturbation kind {kind!r}")
        check_nonnegative("start", start)
        check_fraction("rate", rate)
        check_nonnegative("std", std)
        check_fraction("spike_prob", spike_prob)
        self.kind = kind
        self.start = float(start)
        self.end = float(end)
        self.rate = float(rate)
        self.std = float(std)
        self.spike_prob = float(spike_prob)
        self.spike_scale = float(spike_scale)
        self.session = session
        self.node = node
        self._rng = as_rng(seed)
        self.hits = 0  # samples this perturbation actually touched

    def applies(self, time: float, session_id: str) -> bool:
        """Whether a sample at ``time`` for ``session_id`` is in scope."""
        if not (self.start <= time < self.end):
            return False
        if self.session != "*" and not session_id.startswith(self.session):
            return False
        if self.node != "*" and not session_id.endswith(f"@{self.node}"):
            return False
        return True

    def apply(self, observed: np.ndarray) -> Optional[np.ndarray]:
        """Perturb one in-scope sample; ``None`` = the sample is dropped."""
        if self.kind == "dropout":
            if self._rng.random() < self.rate:
                self.hits += 1
                return None
            return observed
        perturbed = observed
        if self.std > 0:
            perturbed = perturbed + self._rng.normal(
                scale=self.std, size=N_DIMS
            )
            self.hits += 1
        if self.spike_prob > 0 and self._rng.random() < self.spike_prob:
            dim = int(self._rng.integers(N_DIMS))
            spiked = perturbed.copy()
            spiked[dim] += self.spike_scale
            perturbed = spiked
            self.hits += 1
        return perturbed


class TelemetryRecorder:
    """Accumulates per-session usage and serves it back as time series.

    Parameters
    ----------
    noise_std:
        Standard deviation (percentage points) of the additive sensor
        noise applied to *observed* usage.  Ground-truth series are not
        perturbed.
    seed:
        Noise stream seed.
    """

    def __init__(self, *, noise_std: float = 0.8, seed: Seed = 0):
        check_nonnegative("noise_std", noise_std)
        self.noise_std = float(noise_std)
        self._rng = as_rng(seed)
        self._samples: Dict[str, List[UsageSample]] = {}
        self._observed: Dict[str, List[np.ndarray]] = {}
        self._valid: Dict[str, List[bool]] = {}
        self._times: Dict[str, List[int]] = {}
        self._perturbations: List[TelemetryPerturbation] = []
        self.fault_events: List[FaultEvent] = []
        self.gateway_events: List[GatewayEvent] = []
        self.dropped_samples = 0

    # ------------------------------------------------------------------
    def add_perturbation(self, perturbation: TelemetryPerturbation) -> None:
        """Install a measurement fault (see :class:`TelemetryPerturbation`)."""
        self._perturbations.append(perturbation)

    def record_fault_event(
        self, time: float, kind: str, detail: str = ""
    ) -> None:
        """Append one fault event to the run's fault log."""
        self.fault_events.append(FaultEvent(float(time), kind, detail))

    def record_gateway_event(
        self, time: float, outcome: str, category: str, detail: str = ""
    ) -> None:
        """Append one admission-gateway outcome to the run's log."""
        self.gateway_events.append(
            GatewayEvent(float(time), outcome, category, detail)
        )

    # ------------------------------------------------------------------
    def record(
        self,
        time: int,
        session_id: str,
        demand: ResourceVector,
        allocation: ResourceVector,
    ) -> ResourceVector:
        """Record one second; returns the *observed* (noisy) usage.

        Active perturbations apply in installation order; a dropped
        sample is stored as a NaN row (masked out of
        :meth:`observed_window`) and the clean observation is returned —
        the sensor failed, not the game.
        """
        sample = UsageSample(int(time), session_id, demand, allocation)
        self._samples.setdefault(session_id, []).append(sample)
        usage = sample.usage.array
        if self.noise_std > 0:
            observed = usage + self._rng.normal(scale=self.noise_std, size=N_DIMS)
            observed = np.clip(observed, 0.0, 100.0)
        else:
            observed = usage.copy()
        stored: Optional[np.ndarray] = observed
        for pert in self._perturbations:
            if stored is None or not pert.applies(time, session_id):
                continue
            stored = pert.apply(stored)
        valid = stored is not None
        if valid:
            stored = np.clip(stored, 0.0, 100.0)
        else:
            self.dropped_samples += 1
            stored = np.full(N_DIMS, np.nan)
        self._observed.setdefault(session_id, []).append(stored)
        self._valid.setdefault(session_id, []).append(valid)
        self._times.setdefault(session_id, []).append(int(time))
        return ResourceVector.from_array(observed)

    # ------------------------------------------------------------------
    @property
    def session_ids(self) -> List[str]:
        """Sessions with at least one recorded sample."""
        return list(self._samples)

    def n_samples(self, session_id: str) -> int:
        """Number of recorded seconds for one session."""
        return len(self._samples.get(session_id, ()))

    def observed_series(self, session_id: str) -> ResourceSeries:
        """Noisy usage telemetry of one session (what the profiler sees).

        Samples lost to a dropout fault appear as NaN rows.
        """
        rows = self._observed.get(session_id)
        if not rows:
            raise KeyError(f"no telemetry for session {session_id!r}")
        start = float(self._times[session_id][0])
        return ResourceSeries(np.stack(rows), DIMENSIONS, period=1.0, start=start)

    def observed_window(
        self, session_id: str, seconds: int
    ) -> Optional[np.ndarray]:
        """Mean observed usage over the last ``seconds`` samples.

        Returns ``None`` when fewer samples exist (a frame needs a full
        window) or when every sample in the window was dropped; samples
        lost to a dropout fault are masked out of the mean.
        """
        rows = self._observed.get(session_id)
        if rows is None or len(rows) < seconds:
            return None
        window = rows[-seconds:]
        flags = self._valid[session_id][-seconds:]
        kept = [row for row, ok in zip(window, flags) if ok]
        if not kept:
            return None
        return np.mean(kept, axis=0)

    def valid_fraction(self, session_id: str) -> float:
        """Fraction of a session's samples that survived dropout."""
        flags = self._valid.get(session_id)
        if not flags:
            raise KeyError(f"no telemetry for session {session_id!r}")
        return float(sum(flags)) / len(flags)

    def true_demand_series(self, session_id: str) -> ResourceSeries:
        """Ground-truth demand (evaluation only — invisible in a real
        deployment)."""
        samples = self._samples.get(session_id)
        if not samples:
            raise KeyError(f"no telemetry for session {session_id!r}")
        return ResourceSeries(
            np.stack([s.demand.array for s in samples]),
            DIMENSIONS,
            period=1.0,
            start=float(samples[0].time),
        )

    def true_usage_series(self, session_id: str) -> ResourceSeries:
        """Ground-truth clipped usage (demand ∧ allocation, no noise)."""
        samples = self._samples.get(session_id)
        if not samples:
            raise KeyError(f"no telemetry for session {session_id!r}")
        return ResourceSeries(
            np.stack([s.usage.array for s in samples]),
            DIMENSIONS,
            period=1.0,
            start=float(samples[0].time),
        )

    def allocation_series(self, session_id: str) -> ResourceSeries:
        """Granted ceilings over time (the Fig-10 'allocated' line)."""
        samples = self._samples.get(session_id)
        if not samples:
            raise KeyError(f"no telemetry for session {session_id!r}")
        return ResourceSeries(
            np.stack([s.allocation.array for s in samples]),
            DIMENSIONS,
            period=1.0,
            start=float(samples[0].time),
        )

    # ------------------------------------------------------------------
    def total_usage_matrix(self, horizon: int) -> np.ndarray:
        """Server-wide true usage summed over sessions, shape ``(horizon, 4)``.

        Seconds with no running session contribute zero.
        """
        total = np.zeros((int(horizon), N_DIMS))
        for sid, samples in self._samples.items():
            for s in samples:
                if 0 <= s.time < horizon:
                    total[s.time] += s.usage.array
        return total

    def peak_total_usage(self, horizon: int) -> np.ndarray:
        """Per-dimension max of the summed usage (Fig-9's headline)."""
        return self.total_usage_matrix(horizon).max(axis=0)

    # ------------------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over every observed sample, valid flag and fault event.

        Two runs with the same seeds and the same
        :class:`~repro.faults.plan.FaultPlan` must produce byte-identical
        digests — the replay property the chaos CI job asserts.  Dropped
        samples hash as a sentinel so dropout placement is covered too.
        """
        h = hashlib.sha256()
        for sid in sorted(self._observed):
            h.update(sid.encode())
            h.update(np.asarray(self._times[sid], dtype=np.int64).tobytes())
            h.update(
                np.asarray(self._valid[sid], dtype=np.bool_).tobytes()
            )
            for row, ok in zip(self._observed[sid], self._valid[sid]):
                h.update(
                    np.round(row, 6).tobytes() if ok else b"<dropped>"
                )
        for ev in self.fault_events:
            h.update(f"{ev.time:.6f}|{ev.kind}|{ev.detail}\n".encode())
        # Gateway outcomes extend the digest without perturbing it for
        # runs that have none (the pre-serve digests stay valid).
        for gev in self.gateway_events:
            h.update(
                f"gw|{gev.time:.6f}|{gev.outcome}|{gev.category}|"
                f"{gev.detail}\n".encode()
            )
        return h.hexdigest()
