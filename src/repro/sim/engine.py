"""A compact discrete-event simulation engine.

Time is a float in seconds (the co-location experiments use integer
ticks).  Events are ``(time, priority, seq, callback)`` entries in a
heap; callbacks may schedule further events.  The engine is deliberately
minimal — deterministic ordering and cancellation are the two features
the schedulers rely on.

:func:`validate_shard_plan` is the runtime half of the shard
certification story: given the ``shardplan.json`` certificate the
analyzer exported (``cocg lint --shard-plan-out``) and the entry-point
callables a deployment actually registers, it proves the two agree
before any partitioned run starts.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Optional

from repro.util.effects import shard_entry_group

__all__ = ["Event", "SimulationEngine", "ShardPlanError",
           "SHARD_PLAN_SCHEMA", "validate_shard_plan"]


@dataclass(order=True)
class Event:  # lint: disable=CG013 -- engine-internal heap entry, not telemetry
    """A scheduled callback.  Ordering: time, then priority, then FIFO."""

    time: float
    priority: int
    seq: int
    callback: Callable[["SimulationEngine"], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _done: bool = field(default=False, compare=False, repr=False)
    _on_cancel: Optional[Callable[[], None]] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Mark the event so the engine skips it (idempotent; a no-op
        once the event has fired)."""
        if self.cancelled or self._done:
            return
        self.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()


class SimulationEngine:
    """Event loop with deterministic tie-breaking.

    Events at equal times fire in (priority, insertion) order, so a
    control tick scheduled with a lower priority number always observes
    the same state regardless of scheduling order in user code.
    """

    def __init__(self, *, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0
        self._live = 0

    def _note_cancel(self) -> None:
        self._live -= 1

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) events.

        O(1): a live counter maintained on schedule/cancel/fire, so
        per-tick health checks never rescan the heap.
        """
        return self._live

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` (≥ now)."""
        if time < self._now - 1e-9:
            raise ValueError(f"cannot schedule at {time} < now ({self._now})")
        event = Event(
            float(time), int(priority), next(self._seq), callback,
            _on_cancel=self._note_cancel,
        )
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def after(
        self,
        delay: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.at(self._now + delay, callback, priority=priority)

    def every(
        self,
        interval: float,
        callback: Callable[["SimulationEngine"], None],
        *,
        priority: int = 0,
        start_delay: Optional[float] = None,
    ) -> Callable[[], None]:
        """Run ``callback`` every ``interval`` seconds until cancelled.

        Returns a cancel function.
        """
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        state = {"event": None, "stopped": False}

        def fire(engine: "SimulationEngine") -> None:
            if state["stopped"]:
                return
            callback(engine)
            if not state["stopped"]:
                state["event"] = engine.after(interval, fire, priority=priority)

        first_delay = interval if start_delay is None else start_delay
        state["event"] = self.after(first_delay, fire, priority=priority)

        def cancel() -> None:
            state["stopped"] = True
            if state["event"] is not None:
                state["event"].cancel()

        return cancel

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            event._done = True  # cancel() after this point is a no-op
            self._live -= 1
            self._now = event.time
            event.callback(self)
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events with ``time <= end_time``; advance the clock to it."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.time > end_time + 1e-9:
                break
            self.step()
        self._now = max(self._now, float(end_time))

    def run(self) -> None:
        """Run until the queue drains."""
        while self.step():
            pass


# ---------------------------------------------------------------------------
# Shard-plan validation (runtime half of the CG019-CG022 certification)


class ShardPlanError(ValueError):
    """The shard certificate and the registered entry points disagree."""


#: Schema id the analyzer stamps into ``shardplan.json``.
SHARD_PLAN_SCHEMA = "cocg-shardplan/1"


def validate_shard_plan(
    plan: Mapping[str, object],
    entry_points: Iterable[Callable[..., object]],
) -> None:
    """Cross-check a ``shardplan.json`` certificate against runtime
    entry points.

    ``plan`` is the parsed certificate (``json.loads`` of the file the
    analyzer wrote); ``entry_points`` are the callables a deployment
    registers as shard entries.  Each one must carry a
    ``@shard_entry("<group>")`` decoration, appear in the certificate's
    ``entry_points`` table (matched on ``__qualname__``), and declare
    the same group the certificate recorded — otherwise the static
    proof was computed for a different program than the one about to
    run.  All problems are collected and raised as one
    :class:`ShardPlanError` (sorted, so the message is deterministic).
    """
    problems: list[str] = []
    schema = plan.get("schema")
    if schema != SHARD_PLAN_SCHEMA:
        problems.append(
            f"certificate schema is {schema!r}, expected "
            f"{SHARD_PLAN_SCHEMA!r}"
        )
    raw_entries = plan.get("entry_points")
    table: dict[str, str] = {}
    if isinstance(raw_entries, Mapping):
        for node, spec in raw_entries.items():
            if isinstance(spec, Mapping) and isinstance(spec.get("group"),
                                                        str):
                # "module::Class.method" -> "Class.method"
                table[str(node).split("::", 1)[-1]] = spec["group"]
    else:
        problems.append("certificate has no entry_points table")
    for fn in entry_points:
        qualname = getattr(fn, "__qualname__", repr(fn))
        group = shard_entry_group(fn)
        if group is None:
            problems.append(
                f"{qualname} is registered as an entry point but is not "
                f"decorated with @shard_entry(...)"
            )
            continue
        certified = table.get(qualname)
        if certified is None:
            problems.append(
                f"{qualname} is not in the certificate's entry_points "
                f"(stale shardplan.json? re-run `cocg lint "
                f"--shard-plan-out`)"
            )
        elif certified != group:
            problems.append(
                f"{qualname} declares shard group {group!r} but the "
                f"certificate recorded {certified!r}"
            )
    if problems:
        raise ShardPlanError(
            "shard plan validation failed:\n  "
            + "\n  ".join(sorted(problems))
        )


def run_partitioned(
    streams: Mapping[str, Callable[[], object]],
) -> "dict[str, object]":
    """Execute independent per-partition event streams, canonically.

    ``streams`` maps a partition name (a regional shard) to a thunk that
    runs that partition's entire simulation and returns its result.
    Partitions are executed in sorted-name order — today sequentially,
    but nothing a thunk does may depend on that: each partition owns its
    own :class:`SimulationEngine`, RNG namespace, and telemetry, so the
    result of the whole call is a pure function of the set of thunks,
    not of execution order.  The merged-digest tests in
    ``tests/test_fleet.py`` hold this seam to that contract.

    Returns the results keyed by partition name.  Raises ``ValueError``
    on an empty mapping or a non-identifier-unfriendly name containing
    ``:`` (reserved for shard-group family spelling).
    """
    names = sorted(streams)
    if not names:
        raise ValueError("run_partitioned needs at least one stream")
    for name in names:
        if not name or ":" in name:
            raise ValueError(
                f"partition name must be non-empty and ':'-free, "
                f"got {name!r}"
            )
    return {name: streams[name]() for name in names}


__all__.append("run_partitioned")
