"""Discrete-time simulation core.

* :mod:`~repro.sim.engine` — a small discrete-event scheduler (integer
  second resolution) used by the co-location experiment driver for
  arrivals, control ticks, and timers.
* :mod:`~repro.sim.telemetry` — the measurement plane: per-session
  demand/usage/allocation recording with optional sensor noise, frame
  aggregation, and utilisation totals (what GPU-Z + cgroups gave the
  paper's authors).
"""

from repro.sim.engine import (
    Event,
    ShardPlanError,
    SimulationEngine,
    run_partitioned,
    validate_shard_plan,
)
from repro.sim.telemetry import TelemetryRecorder, UsageSample

__all__ = ["SimulationEngine", "Event", "ShardPlanError",
           "validate_shard_plan", "run_partitioned",
           "TelemetryRecorder", "UsageSample"]
