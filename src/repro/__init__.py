"""CoCG: fine-grained cloud-game co-location on heterogeneous platforms.

A faithful, self-contained reproduction of *"CoCG: Fine-grained Cloud
Game Co-location on Heterogeneous Platform"* (Wang et al., IPDPS 2024):
the frame-grained game profiler, the ML-based stage predictor, and the
complementary resource scheduler — plus every substrate they need
(synthetic cloud-game workloads, a heterogeneous server/QoS model, a
GamingAnywhere-style streaming pipeline, an ML toolkit, and the
baselines the paper compares against).

Quickstart::

    from repro import build_catalog, GameProfile, CoCGStrategy, ColocationExperiment

    catalog = build_catalog()
    profiles = {name: GameProfile.build(spec, seed=0)
                for name, spec in catalog.items()
                if name in ("genshin", "contra")}
    result = ColocationExperiment(profiles, CoCGStrategy(),
                                  horizon=3600, seed=0).run()
    print(result.throughput, result.completed_runs)

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
paper-versus-measured record of every table and figure.
"""

from repro.core.pipeline import GameProfile
from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.core.predictor import StagePredictor
from repro.core.scheduler import CoCGConfig, CoCGScheduler
from repro.games.catalog import build_catalog
from repro.games.session import GameSession
from repro.games.tracegen import generate_corpus, generate_trace
from repro.baselines import (
    CoCGStrategy,
    GAugurStrategy,
    MaxStaticStrategy,
    ReactiveStrategy,
    VBPStrategy,
)
from repro.platform_.allocator import Allocator
from repro.platform_.server import GPUDevice, Server
from repro.workloads.experiment import ColocationExperiment, ExperimentResult

__version__ = "1.0.0"

__all__ = [
    "build_catalog",
    "GameSession",
    "generate_trace",
    "generate_corpus",
    "FrameGrainedProfiler",
    "ProfilerConfig",
    "StagePredictor",
    "GameProfile",
    "CoCGScheduler",
    "CoCGConfig",
    "CoCGStrategy",
    "ReactiveStrategy",
    "GAugurStrategy",
    "VBPStrategy",
    "MaxStaticStrategy",
    "Server",
    "GPUDevice",
    "Allocator",
    "ColocationExperiment",
    "ExperimentResult",
    "__version__",
]
