"""Analysis and reporting helpers used by the benchmark harness.

* :mod:`~repro.analysis.elbow` — the Fig-14 SSE-vs-K analysis;
* :mod:`~repro.analysis.report` — plain-text tables the benches print;
* :mod:`~repro.analysis.savings` — the Fig-10 allocated-vs-max savings
  accounting.
"""

from repro.analysis.elbow import ElbowAnalysis, elbow_analysis
from repro.analysis.report import format_series, format_table
from repro.analysis.savings import allocation_savings

__all__ = [
    "ElbowAnalysis",
    "elbow_analysis",
    "format_table",
    "format_series",
    "allocation_savings",
]
