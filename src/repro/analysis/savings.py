"""Fig-10 accounting: stage-predictive allocation vs max reservation.

The paper reports that allocating per predicted stage instead of at the
whole-game maximum saves 27.3 % of resources on Genshin Impact and
17.5 % on average across the five games; these helpers compute the same
quantity from an experiment's telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.timeseries import ResourceSeries

__all__ = ["AllocationSavings", "allocation_savings"]


@dataclass(frozen=True)
class AllocationSavings:
    """Savings of an allocation timeline against a static reservation.

    Attributes
    ----------
    mean_allocated:
        Time-averaged allocation per dimension.
    static_reservation:
        The constant max-reservation it is compared against.
    savings_fraction:
        ``1 − mean(allocated)/static`` on the binding (max) dimension.
    coverage:
        Fraction of seconds where the allocation covered the demand on
        every dimension (Fig 10's "basically cover" claim).
    """

    mean_allocated: np.ndarray
    static_reservation: np.ndarray
    savings_fraction: float
    coverage: float


def allocation_savings(
    allocated: ResourceSeries,
    demand: ResourceSeries,
    static_reservation: np.ndarray,
) -> AllocationSavings:
    """Compare an allocation timeline with the static max reservation.

    Parameters
    ----------
    allocated:
        Granted ceilings over time (telemetry ``allocation_series``).
    demand:
        True demand over the same window.
    static_reservation:
        The per-dimension constant a max-reserving scheduler would hold.
    """
    if len(allocated) != len(demand):
        raise ValueError(
            f"allocated has {len(allocated)} samples, demand has {len(demand)}"
        )
    if len(allocated) == 0:
        raise ValueError("empty series")
    static = np.asarray(static_reservation, dtype=float)
    if static.shape != (allocated.n_dims,):
        raise ValueError(
            f"static_reservation must have shape ({allocated.n_dims},), got {static.shape}"
        )
    mean_alloc = allocated.values.mean(axis=0)
    # Savings on the binding dimension (the one the static reservation is
    # sized by), matching the paper's single-percentage framing.
    binding = int(np.argmax(static))
    savings = 1.0 - mean_alloc[binding] / max(static[binding], 1e-9)
    covered = np.all(allocated.values + 1e-6 >= demand.values, axis=1)
    return AllocationSavings(
        mean_allocated=mean_alloc,
        static_reservation=static,
        savings_fraction=float(savings),
        coverage=float(covered.mean()),
    )
