"""The Fig-14 clustering analysis: SSE vs K and the chosen elbow."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.frames import frame_matrix
from repro.games.spec import GameSpec
from repro.games.tracegen import TraceBundle
from repro.mlkit.kmeans import elbow_k, sse_curve
from repro.util.rng import Seed

__all__ = ["ElbowAnalysis", "elbow_analysis"]


@dataclass(frozen=True)
class ElbowAnalysis:
    """One game's SSE-vs-K sweep (one panel of the paper's Fig 14)."""

    game: str
    k_values: Tuple[int, ...]
    sses: Tuple[float, ...]
    chosen_k: int
    published_k: int

    @property
    def normalized_sses(self) -> np.ndarray:
        """SSE divided by SSE(K=min) — comparable across games."""
        s = np.asarray(self.sses)
        return s / s[0]

    def matches_published(self) -> bool:
        """Whether the automatic elbow equals the paper's chosen K."""
        return self.chosen_k == self.published_k


def elbow_analysis(
    spec: GameSpec,
    bundles: Sequence[TraceBundle],
    *,
    k_values: Sequence[int] = tuple(range(1, 11)),
    seed: Seed = 0,
) -> ElbowAnalysis:
    """Run the K sweep for one game's trace corpus.

    Parameters
    ----------
    spec:
        The game (its cluster count is the published K).
    bundles:
        Profiling traces.
    k_values:
        Candidate K values (strictly increasing).
    seed:
        Clustering seed.
    """
    X = frame_matrix([b.series for b in bundles])
    ks = [k for k in k_values if k <= X.shape[0]]
    sses = sse_curve(X, ks, seed=seed)
    return ElbowAnalysis(
        game=spec.name,
        k_values=tuple(ks),
        sses=tuple(float(s) for s in sses),
        chosen_k=elbow_k(ks, sses),
        published_k=len(spec.clusters),
    )
