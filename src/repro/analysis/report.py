"""Plain-text table/series formatting for the benchmark harness.

The benches print the same rows and series the paper reports; these
helpers keep the output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], *, title: str = ""
) -> str:
    """Render an aligned monospace table.

    Floats are shown with 3 significant decimals; everything else with
    ``str``.
    """
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_series(
    name: str, values: Sequence[float], *, per_line: int = 12, fmt: str = "{:7.1f}"
) -> str:
    """Render a numeric series in wrapped rows (for trace printouts)."""
    if per_line < 1:
        raise ValueError(f"per_line must be >= 1, got {per_line}")
    lines = [f"{name}:"]
    row: List[str] = []
    for i, v in enumerate(values):
        row.append(fmt.format(v))
        if (i + 1) % per_line == 0:
            lines.append(" ".join(row))
            row = []
    if row:
        lines.append(" ".join(row))
    return "\n".join(lines)
