"""Admission SLO accounting: time-in-queue percentiles per category.

"Games Are Not Equal" (PAPERS.md) motivates treating request classes
differently at the edge; the first step is *measuring* them separately.
:class:`SloTracker` accumulates every gateway outcome with the time the
request spent queued before it, and summarizes per game category with
deterministic nearest-rank percentiles — no interpolation, so two
identical runs print identical summaries to full precision.

When built with a :class:`~repro.obs.metrics.MetricsRegistry`, every
recorded outcome is mirrored into the canonical registry metrics —
``serve_queue_wait_seconds`` (a fixed-bucket histogram per category)
and ``serve_slo_outcomes_total`` — so the Prometheus export tells the
same story as :meth:`SloTracker.summaries`.  The exact-percentile lists
stay authoritative; the registry view is additive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.naming import QUEUE_WAIT_SECONDS, SLO_OUTCOMES, WAIT_BUCKETS

__all__ = ["CategorySlo", "SloTracker", "percentile_nearest_rank"]


def percentile_nearest_rank(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted non-empty list.

    ``q`` is in ``[0, 100]``.  Nearest-rank (ceil(q/100 · n)) is exact
    on the recorded samples — deterministic and monotone in ``q``.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    n = len(sorted_values)
    rank = max(1, -(-int(q * n) // 100))  # ceil(q*n/100), at least 1
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class CategorySlo:
    """Queue-time summary of one game category.

    ``outcomes`` counts every gateway verdict; the wait percentiles
    cover *all* recorded outcomes (a shed request waited 0 s; a
    dead-lettered one waited its whole patience window — both belong in
    the latency story the gateway tells).
    """

    category: str
    count: int
    outcomes: Dict[str, int]
    wait_mean: float
    wait_p50: float
    wait_p90: float
    wait_p99: float
    wait_max: float


class SloTracker:
    """Per-category admission-outcome and time-in-queue accounting.

    Parameters
    ----------
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        given, every :meth:`record` also lands in the registry's
        ``serve_queue_wait_seconds`` histogram and
        ``serve_slo_outcomes_total`` counter.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._waits: Dict[str, List[float]] = {}
        self._outcomes: Dict[str, Dict[str, int]] = {}
        self._wait_hist = None
        self._outcome_counter = None
        if registry is not None:
            self._wait_hist = registry.histogram(
                QUEUE_WAIT_SECONDS,
                "Time-in-queue before each gateway verdict.",
                ("category",),
                buckets=WAIT_BUCKETS,
            )
            self._outcome_counter = registry.counter(
                SLO_OUTCOMES,
                "Gateway verdicts by category and outcome.",
                ("category", "outcome"),
            )

    # ------------------------------------------------------------------
    def record(
        self,
        category: str,
        outcome: str,
        wait_seconds: float,
        *,
        time: Optional[float] = None,
    ) -> None:
        """Record one gateway outcome with its time-in-queue."""
        if wait_seconds < 0:
            raise ValueError(f"wait_seconds must be >= 0, got {wait_seconds}")
        self._waits.setdefault(category, []).append(float(wait_seconds))
        per_cat = self._outcomes.setdefault(category, {})
        per_cat[outcome] = per_cat.get(outcome, 0) + 1
        if self._wait_hist is not None:
            self._wait_hist.labels(category=category).observe(
                wait_seconds, time=time
            )
            # Prometheus label values: dead-lettered -> dead_lettered.
            self._outcome_counter.labels(
                category=category, outcome=outcome.replace("-", "_")
            ).inc(time=time)

    # ------------------------------------------------------------------
    @property
    def categories(self) -> List[str]:
        """Recorded categories, sorted for stable iteration."""
        return sorted(self._waits)

    def outcome_totals(self) -> Dict[str, int]:
        """Fleet-wide outcome counts across every category."""
        totals: Dict[str, int] = {}
        for category in sorted(self._outcomes):
            for outcome, n in sorted(self._outcomes[category].items()):
                totals[outcome] = totals.get(outcome, 0) + n
        return totals

    def summary(self, category: str) -> CategorySlo:
        """Percentile summary of one category."""
        waits = self._waits.get(category)
        if not waits:
            raise KeyError(f"no SLO samples for category {category!r}")
        ordered = sorted(waits)
        return CategorySlo(
            category=category,
            count=len(ordered),
            outcomes=dict(self._outcomes[category]),
            wait_mean=sum(ordered) / len(ordered),
            wait_p50=percentile_nearest_rank(ordered, 50.0),
            wait_p90=percentile_nearest_rank(ordered, 90.0),
            wait_p99=percentile_nearest_rank(ordered, 99.0),
            wait_max=ordered[-1],
        )

    def summaries(self) -> List[CategorySlo]:
        """Every category's summary, in sorted category order."""
        return [self.summary(cat) for cat in self.categories]

    def summary_lines(self) -> List[str]:
        """Human-readable per-category lines (for examples/CLI)."""
        lines: List[str] = []
        for s in self.summaries():
            outcome_str = " ".join(
                f"{k}={v}" for k, v in sorted(s.outcomes.items())
            )
            lines.append(
                f"{s.category:<8} n={s.count:<7} wait p50={s.wait_p50:.1f}s "
                f"p90={s.wait_p90:.1f}s p99={s.wait_p99:.1f}s "
                f"max={s.wait_max:.1f}s  [{outcome_str}]"
            )
        return lines
