"""The serving subsystem: the front door between players and the fleet.

``repro.serve`` models what the paper leaves implicit — how "heavy
traffic from millions of users" reaches the distributor at all:

* :mod:`~repro.serve.gateway` — bounded per-category queues, token-bucket
  rate limiting, explicit shed/dead-letter outcomes in the telemetry
  digest;
* :mod:`~repro.serve.batching` — one shared Algorithm-1 pass per node
  per scheduling tick instead of per request×node;
* :mod:`~repro.serve.rollout_cache` — keyed predictor-rollout memo with
  explicit epoch invalidation;
* :mod:`~repro.serve.slo` — per-category time-in-queue percentiles;
* :mod:`~repro.serve.loadgen` — deterministic open/closed-loop request
  generation at ≥100k-request scale.

Everything runs on simulation time and seeded randomness: same seed ⇒
same queue contents, same shed set, same digest.  See ``docs/SERVE.md``.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.gateway import (
    AdmissionGateway,
    AdmissionOutcome,
    GatewayConfig,
    QueuedRequest,
    TokenBucket,
)
from repro.serve.loadgen import ClosedLoopLoadGen, OpenLoopLoadGen
from repro.serve.rollout_cache import RolloutCache
from repro.serve.slo import CategorySlo, SloTracker, percentile_nearest_rank

__all__ = [
    "AdmissionGateway",
    "AdmissionOutcome",
    "GatewayConfig",
    "QueuedRequest",
    "TokenBucket",
    "MicroBatcher",
    "RolloutCache",
    "SloTracker",
    "CategorySlo",
    "percentile_nearest_rank",
    "OpenLoopLoadGen",
    "ClosedLoopLoadGen",
]
