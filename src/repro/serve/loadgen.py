"""Seeded load generation at serving scale.

:class:`~repro.workloads.requests.PoissonArrivals` draws its stream one
request at a time and builds a fresh
:class:`~repro.games.player.PlayerModel` per request — fine for the
paper's hour-scale experiments, too slow for the ≥100k-request runs the
serve layer is benchmarked at.  :class:`OpenLoopLoadGen` generates the
same kind of open-loop stream with vectorized draws and a bounded player
pool; :class:`ClosedLoopLoadGen` wraps
:class:`~repro.workloads.requests.ContinuousBacklog` to drive a fixed
concurrency target instead.  Both are pure functions of their seed:
identical construction arguments give identical request streams, ids
included.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence

from repro.games.player import PlayerModel
from repro.games.spec import GameSpec
from repro.util.rng import Seed, as_rng
from repro.workloads.requests import ContinuousBacklog, GameRequest

__all__ = ["OpenLoopLoadGen", "ClosedLoopLoadGen"]


class OpenLoopLoadGen:
    """Vectorized open-loop Poisson arrivals over a game mix.

    Parameters
    ----------
    specs:
        Games to draw from (uniformly).
    rate_per_second:
        Expected arrivals per simulated second (serving scale — the
        workloads module speaks per-minute).
    seed:
        Stream seed; the stream is a pure function of it.
    horizon:
        Seconds of arrivals to generate.
    player_pool:
        Distinct :class:`PlayerModel` instances per game; requests reuse
        them round-robin, bounding model-construction cost at any
        request count.
    id_base:
        First request id of the stream.  Regional shards generating
        their own load pass disjoint bases so merged streams keep
        globally unique ids.
    """

    def __init__(
        self,
        specs: Sequence[GameSpec],
        *,
        rate_per_second: float = 10.0,
        seed: Seed = 0,
        horizon: float = 3600.0,
        player_pool: int = 32,
        id_base: int = 0,
    ):
        if not specs:
            raise ValueError("specs must be non-empty")
        if rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be > 0, got {rate_per_second}"
            )
        if player_pool < 1:
            raise ValueError(f"player_pool must be >= 1, got {player_pool}")
        if id_base < 0:
            raise ValueError(f"id_base must be >= 0, got {id_base}")
        self.specs = list(specs)
        rng = as_rng(seed)
        players: Dict[str, List[PlayerModel]] = {
            spec.name: [
                PlayerModel(f"lg-{spec.name}-{k}", spec.category, seed=0)
                for k in range(player_pool)
            ]
            for spec in self.specs
        }
        self.requests: List[GameRequest] = []
        expected = int(rate_per_second * horizon)
        t = 0.0
        i = int(id_base)
        while True:
            # Draw gaps in chunks: same stream for any chunk size is NOT
            # guaranteed across numpy versions for mixed draw kinds, so
            # gaps, spec picks and script picks use separate bulk draws
            # per chunk — deterministic for fixed (seed, rate, horizon).
            chunk = max(1024, expected // 8)
            gaps = rng.exponential(1.0 / rate_per_second, size=chunk)
            spec_idx = rng.integers(len(self.specs), size=chunk)
            script_u = rng.random(size=chunk)
            done = False
            for k in range(chunk):
                t += float(gaps[k])
                if t >= horizon:
                    done = True
                    break
                spec = self.specs[int(spec_idx[k])]
                script = spec.scripts[
                    int(script_u[k] * len(spec.scripts))
                ].name
                pool = players[spec.name]
                # Stream-local ids (id_base..), like PoissonArrivals.
                self.requests.append(
                    GameRequest(spec, script, pool[i % len(pool)], t, i)
                )
                i += 1
            if done:
                break
        self._arrivals = [r.arrival for r in self.requests]

    def __len__(self) -> int:
        return len(self.requests)

    def due(self, t0: float, t1: float) -> List[GameRequest]:
        """Requests arriving in ``[t0, t1)`` (binary search, not a scan)."""
        lo = bisect.bisect_left(self._arrivals, t0)
        hi = bisect.bisect_left(self._arrivals, t1)
        return self.requests[lo:hi]


class ClosedLoopLoadGen:
    """Closed-loop generation: hold ``target`` in-flight runs per game.

    A thin serving-layer face over
    :class:`~repro.workloads.requests.ContinuousBacklog` (the §V-B2
    protocol): :meth:`pending` yields the requests needed to restore the
    concurrency target, and completions are fed back via
    :meth:`started` / :meth:`finished`.
    """

    def __init__(
        self,
        specs: Sequence[GameSpec],
        *,
        seed: Seed = 0,
        target: int = 1,
        id_base: int = 0,
    ):
        self._backlog = ContinuousBacklog(
            specs, seed=seed, max_concurrent=target, id_base=id_base
        )
        self.generated = 0

    def pending(self, time: float) -> List[GameRequest]:
        """Requests needed right now to restore the concurrency target."""
        out = self._backlog.pending(time)
        self.generated += len(out)
        return out

    def started(self, request: GameRequest) -> None:
        """A request was admitted (occupies one slot)."""
        self._backlog.started(request)

    def finished(self, spec_name: str) -> None:
        """A run completed (frees one slot)."""
        self._backlog.finished(spec_name)
