"""The admission gateway: the fleet's front door.

Nothing in the paper sits between player requests and the distributor —
evaluation drives one pending request at a time (§V-B2).  A deployment
that "serves heavy traffic from millions of users" (ROADMAP) needs a
front door with explicit overload behaviour.  The gateway provides it,
deterministically, on simulation time:

* **Per-category bounded queues** — requests queue per game category
  ("Games Are Not Equal"); a full queue *sheds* the request, an explicit
  outcome, never silent growth (lint rule CG009 enforces the bound).
* **Token-bucket rate limiting** — dispatch attempts drain a bucket
  refilled at a fixed rate on sim time, bounding Algorithm-1 evaluations
  per tick no matter how deep the backlog is.
* **Bounded patience** — a request queued longer than
  ``max_queue_seconds`` (or beaten back ``max_retries`` times) is
  dead-lettered into the cluster's existing dead-letter log.
* **Explicit outcomes** — every verdict (``queued`` / ``shed`` /
  ``admitted`` / ``dead-lettered``) is recorded as a
  :class:`~repro.sim.telemetry.GatewayEvent` in the gateway's telemetry,
  which is part of the fleet digest: replays must reproduce shedding
  decisions byte-for-byte, exactly like usage samples.

Dispatch itself is micro-batched through
:class:`~repro.serve.batching.MicroBatcher` (one shared Algorithm-1 pass
per node per round) unless ``micro_batching=False``, which degrades to
the cluster's naive per-request dispatch — same outcomes, more predictor
rollouts (the benchmark quantifies the gap).
"""

from __future__ import annotations

import itertools
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.naming import (
    GATEWAY_BACKPRESSURE,
    GATEWAY_DEFERRALS,
    GATEWAY_OUTCOMES,
    GATEWAY_QUEUE_DEPTH,
    GATEWAY_RETRIES,
    GATEWAY_THROTTLED_ROUNDS,
    STREAM_SERVE,
)
from repro.obs.observer import Observer
from repro.serve.batching import MicroBatcher
from repro.serve.slo import SloTracker
from repro.sim.telemetry import TelemetryRecorder
from repro.util.effects import shard_entry
from repro.workloads.requests import GameRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.fleet import ClusterScheduler, FleetNode
    from repro.trace.recorder import TraceRecorder

__all__ = [
    "TokenBucket",
    "GatewayConfig",
    "AdmissionOutcome",
    "QueuedRequest",
    "AdmissionGateway",
]


class TokenBucket:
    """Deterministic sim-time token bucket.

    Refill is a pure function of elapsed simulation time —
    ``tokens = min(burst, tokens + (now - last) · rate)`` — so a replay
    grants tokens at exactly the same instants.
    """

    def __init__(self, rate_per_second: float, burst: float):
        if rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be > 0, got {rate_per_second}"
            )
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate_per_second)
        self.burst = float(burst)
        self._tokens = float(burst)  # a fresh bucket starts full
        self._last = 0.0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now

    def try_take(self, now: float) -> bool:
        """Take one token if available; never blocks."""
        self._refill(now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def peek(self, now: float) -> float:
        """Tokens available at ``now`` (diagnostics)."""
        self._refill(now)
        return self._tokens


@dataclass(frozen=True)
class GatewayConfig:
    """Gateway tuning.

    Parameters
    ----------
    queue_capacity:
        Bound of each per-category queue; overflow sheds.
    rate_per_second:
        Token-bucket refill — dispatch attempts per simulated second.
    burst:
        Token-bucket depth (attempts a single round may spend).
    max_queue_seconds:
        Patience: a request queued longer dead-letters at the next pump.
    max_retries:
        Dispatch rounds a request survives before dead-lettering.
    micro_batching:
        Share Algorithm-1 passes per node per round (default).  Off =
        naive per-request dispatch; identical outcomes, more rollouts.
    capacity_floor:
        Capacity-coupled backpressure (0 = off, the default).  When the
        cluster's usable capacity — UP nodes over its capacity target —
        falls below this fraction, the per-category queue bound shrinks
        proportionally (``capacity · usable/floor``, never below 1), so
        the gateway sheds *earlier* while nodes are down or still
        warming, and releases as soon as warm standbys are promoted.
    """

    queue_capacity: int = 256
    rate_per_second: float = 8.0
    burst: int = 16
    max_queue_seconds: float = 300.0
    max_retries: int = 25
    micro_batching: bool = True
    capacity_floor: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.max_queue_seconds <= 0:
            raise ValueError(
                f"max_queue_seconds must be > 0, got {self.max_queue_seconds}"
            )
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if not 0.0 <= self.capacity_floor <= 1.0:
            raise ValueError(
                f"capacity_floor must be in [0, 1], got {self.capacity_floor}"
            )


@dataclass(frozen=True)
class AdmissionOutcome:
    """The gateway's verdict on one :meth:`AdmissionGateway.offer`.

    ``accepted`` means the request is *in the system* (queued), not that
    it started; terminal verdicts (admitted / dead-lettered) surface
    later through gateway telemetry and SLO summaries.
    """

    kind: str  # "queued" | "shed"
    category: str
    detail: str = ""

    @property
    def accepted(self) -> bool:
        """Whether the request entered a queue."""
        return self.kind == "queued"


@dataclass
class QueuedRequest:
    """One gateway-queued request with its retry state."""

    request: GameRequest
    category: str
    enqueued: float
    seq: int
    attempts: int = 0
    incarnation: int = 0


class AdmissionGateway:
    """Bounded, rate-limited admission in front of a cluster.

    Parameters
    ----------
    scheduler:
        The fleet's :class:`~repro.cluster.fleet.ClusterScheduler`.  The
        gateway does not attach itself — call
        ``scheduler.attach_gateway(gateway)`` to route ``submit``/
        ``pump`` through it.
    config:
        Queue/rate/patience bounds.
    telemetry:
        Recorder for :class:`~repro.sim.telemetry.GatewayEvent` entries;
        a noise-free private recorder by default.  Its digest is folded
        into the fleet digest by
        :class:`~repro.cluster.experiment.FleetExperiment`.
    obs:
        Optional :class:`~repro.obs.Observer`.  When given, every pump
        round becomes a ``gateway.pump`` span on the ``serve`` stream
        and the outcome counters land in the shared registry; when
        ``None`` the counters back onto a private registry (so the
        ``queued``/``shed``/… views keep working) and no spans are
        recorded.
    trace:
        Optional :class:`~repro.trace.TraceRecorder` (the nullable
        ``trace=`` handle).  Every admission verdict — ``queued``,
        ``shed``, ``admitted``, ``dead-lettered`` — is recorded as an
        instant stage record in the request's timeline, alongside the
        telemetry event that already feeds the fleet digest.

    The historical plain-int counters (``queued``, ``shed``,
    ``admitted``, ``dead_lettered``, ``deferrals``,
    ``throttled_rounds``) are now read-only views over the registry
    metrics — same names, same values, one source of truth.
    """

    def __init__(
        self,
        scheduler: "ClusterScheduler",
        *,
        config: Optional[GatewayConfig] = None,
        telemetry: Optional[TelemetryRecorder] = None,
        obs: Optional[Observer] = None,
        trace: Optional["TraceRecorder"] = None,
    ):
        self.scheduler = scheduler
        self.config = config if config is not None else GatewayConfig()
        self.telemetry = (
            telemetry if telemetry is not None else TelemetryRecorder(noise_std=0.0)
        )
        self.obs = obs
        self.trace = trace
        registry = obs.registry if obs is not None else MetricsRegistry()
        outcomes = registry.counter(
            GATEWAY_OUTCOMES,
            "Admission-gateway verdicts by outcome.",
            ("outcome",),
        )
        # Pre-resolved children: hot-path increments are one float add,
        # and all four outcomes always appear in the export.
        self._c_queued = outcomes.labels(outcome="queued")
        self._c_admitted = outcomes.labels(outcome="admitted")
        self._c_shed = outcomes.labels(outcome="shed")
        self._c_dead_lettered = outcomes.labels(outcome="dead_lettered")
        self._c_retries = registry.counter(
            GATEWAY_RETRIES, "Requeue attempts after a deferred dispatch."
        )
        self._c_deferrals = registry.counter(
            GATEWAY_DEFERRALS,
            "Dispatch attempts that found no willing node.",
        )
        self._c_throttled = registry.counter(
            GATEWAY_THROTTLED_ROUNDS,
            "Pump rounds that ran out of tokens with work still queued.",
        )
        self._c_backpressure = registry.counter(
            GATEWAY_BACKPRESSURE,
            "Requests shed early because usable capacity sat below the floor.",
        )
        self._g_depth = registry.gauge(
            GATEWAY_QUEUE_DEPTH,
            "Requests currently queued, per category.",
            ("category",),
        )
        self.slo = SloTracker(registry)
        self.batcher = MicroBatcher(registry)
        self.bucket = TokenBucket(
            self.config.rate_per_second, float(self.config.burst)
        )
        self._queues: Dict[str, Deque[QueuedRequest]] = {}
        self._seq = itertools.count()

    # ------------------------------------------------------------------
    # Counter views (kept for compatibility with pre-registry callers)
    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        """Requests that entered a queue (registry-backed view)."""
        return int(self._c_queued.value)

    @property
    def shed(self) -> int:
        """Requests shed at a full queue (registry-backed view)."""
        return int(self._c_shed.value)

    @property
    def admitted(self) -> int:
        """Requests that started on a node (registry-backed view)."""
        return int(self._c_admitted.value)

    @property
    def dead_lettered(self) -> int:
        """Requests that ran out of patience/retries (registry-backed)."""
        return int(self._c_dead_lettered.value)

    @property
    def deferrals(self) -> int:
        """Dispatch attempts that found no willing node this round."""
        return int(self._c_deferrals.value)

    @property
    def throttled_rounds(self) -> int:
        """Pump rounds that ran out of tokens with work still queued."""
        return int(self._c_throttled.value)

    @property
    def backpressure_sheds(self) -> int:
        """Sheds caused by the capacity floor, not a genuinely full queue."""
        return int(self._c_backpressure.value)

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Requests currently queued across every category."""
        return sum(len(q) for q in self._queues.values())

    def depth_of(self, category: str) -> int:
        """Queued requests of one category."""
        return len(self._queues.get(category, ()))

    def has_pending(self, request_id: int) -> bool:
        """Whether a request with this id is queued in any category.

        The cluster's requeue path consults this to keep a session from
        being requeued twice when a drain and an active retry backoff
        race (the double-requeue guard).
        """
        return any(
            entry.request.request_id == request_id
            for q in self._queues.values()
            for entry in q
        )

    def effective_capacity(self) -> int:
        """Per-category queue bound after capacity-coupled backpressure.

        With ``capacity_floor`` unset this is ``queue_capacity``.  With
        a floor, the bound shrinks in proportion to how far the fleet's
        usable capacity sits below it — shedding earlier while nodes are
        down/warming, releasing the moment standbys are promoted.
        """
        floor = self.config.capacity_floor
        if floor <= 0.0:
            return self.config.queue_capacity
        usable = self.scheduler.usable_fraction()
        if usable >= floor:
            return self.config.queue_capacity
        return max(1, int(self.config.queue_capacity * usable / floor))

    def _queue_for(self, category: str) -> Deque[QueuedRequest]:
        q = self._queues.get(category)
        if q is None:
            # maxlen declares the bound (CG009); offer() checks fullness
            # explicitly so overflow sheds loudly instead of silently
            # dropping the opposite end.
            q = deque(maxlen=self.config.queue_capacity)
            self._queues[category] = q
        return q

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------
    def offer(
        self,
        request: GameRequest,
        *,
        time: float,
        incarnation: int = 0,
    ) -> AdmissionOutcome:
        """Admit one request into its category queue, or shed it."""
        category = request.spec.category.value
        q = self._queue_for(category)
        capacity = self.effective_capacity()
        if len(q) >= capacity:
            backpressure = capacity < self.config.queue_capacity
            if backpressure:
                self._c_backpressure.inc(time=time)
            self._c_shed.inc(time=time)
            self.slo.record(category, "shed", 0.0, time=time)
            detail = "capacity floor" if backpressure else "queue full"
            self.telemetry.record_gateway_event(
                time, "shed", category, f"r{request.request_id}: {detail}"
            )
            if self.trace is not None:
                self.trace.record_verdict(time, request.request_id, "shed")
            return AdmissionOutcome("shed", category, detail)
        q.append(
            QueuedRequest(
                request,
                category,
                enqueued=float(time),
                seq=next(self._seq),
                incarnation=incarnation,
            )
        )
        self._c_queued.inc(time=time)
        self.telemetry.record_gateway_event(
            time, "queued", category, f"r{request.request_id}"
        )
        if self.trace is not None:
            self.trace.record_verdict(time, request.request_id, "queued")
        return AdmissionOutcome("queued", category)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dead_letter(self, entry: QueuedRequest, time: float, reason: str) -> None:
        from repro.cluster.fleet import DeadLetter  # import cycle guard

        self._c_dead_lettered.inc(time=time)
        self.scheduler.dead_letters.append(
            DeadLetter(entry.request, float(time), entry.attempts, reason)
        )
        self.slo.record(
            entry.category, "dead-lettered",
            max(0.0, time - entry.enqueued), time=time,
        )
        self.telemetry.record_gateway_event(
            time, "dead-lettered", entry.category,
            f"r{entry.request.request_id}: {reason}",
        )
        if self.trace is not None:
            self.trace.record_verdict(
                time, entry.request.request_id, "dead-lettered"
            )

    def _expire(self, time: float) -> None:
        """Dead-letter requests whose patience ran out."""
        for category in sorted(self._queues):
            q = self._queues[category]
            survivors = [
                e for e in q
                if not self._expired_one(e, time)
            ]
            if len(survivors) != len(q):
                q.clear()
                q.extend(survivors)

    def _expired_one(self, entry: QueuedRequest, time: float) -> bool:
        if time - entry.enqueued > self.config.max_queue_seconds:
            self._dead_letter(entry, time, "queue patience exhausted")
            return True
        return False

    @shard_entry("region:fleet")
    def pump(self, time: float, seed_for) -> List[GameRequest]:
        """One rate-limited dispatch round over every queue.

        Due requests are walked in global arrival order (FIFO across
        categories); each dispatch attempt spends one token.  Returns
        the requests that started.
        """
        if self.obs is not None:
            self.obs.tick(time)
            cm = self.obs.span("gateway.pump", time, stream=STREAM_SERVE)
        else:
            cm = nullcontext(None)
        with cm as span:
            started = self._pump_round(time, seed_for)
            if span is not None:
                span.args["started"] = len(started)
        for category in sorted(self._queues):
            self._g_depth.labels(category=category).set(
                len(self._queues[category]), time=time
            )
        return started

    def _pump_round(self, time: float, seed_for) -> List[GameRequest]:
        self._expire(time)
        entries = sorted(
            (e for q in self._queues.values() for e in q),
            key=lambda e: e.seq,
        )
        if self.config.micro_batching:
            self.batcher.begin_round()
        started: List[GameRequest] = []
        resolved: List[QueuedRequest] = []
        for entry in entries:
            if not self.bucket.try_take(time):
                self._c_throttled.inc(time=time)
                break
            node = self._dispatch(entry, time, seed_for)
            if node is not None:
                started.append(entry.request)
                resolved.append(entry)
                self._c_admitted.inc(time=time)
                self.slo.record(
                    entry.category, "admitted",
                    max(0.0, time - entry.enqueued), time=time,
                )
                self.telemetry.record_gateway_event(
                    time, "admitted", entry.category,
                    f"r{entry.request.request_id}@{node.node_id}",
                )
                if self.trace is not None:
                    self.trace.record_verdict(
                        time, entry.request.request_id, "admitted",
                        node=node.node_id,
                    )
                continue
            self._c_deferrals.inc(time=time)
            entry.attempts += 1
            self._c_retries.inc(time=time)
            if entry.attempts > self.config.max_retries:
                self._dead_letter(entry, time, "retries exhausted")
                resolved.append(entry)
        if resolved:
            gone = {e.seq for e in resolved}
            for category in sorted(self._queues):
                q = self._queues[category]
                survivors = [e for e in q if e.seq not in gone]
                if len(survivors) != len(q):
                    q.clear()
                    q.extend(survivors)
        return started

    def _dispatch(
        self, entry: QueuedRequest, time: float, seed_for
    ) -> Optional["FleetNode"]:
        if self.config.micro_batching:
            return self.batcher.dispatch_one(
                self.scheduler, entry, time=time, seed_for=seed_for
            )
        return self.scheduler.dispatch(
            entry.request,
            time=time,
            seed=seed_for(entry.request, entry.incarnation),
            incarnation=entry.incarnation,
        )

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Outcome counters as a flat dict (for benchmark artifacts)."""
        return {
            "queued": self.queued,
            "admitted": self.admitted,
            "shed": self.shed,
            "dead_lettered": self.dead_lettered,
            "deferrals": self.deferrals,
            "depth": self.depth,
            "throttled_rounds": self.throttled_rounds,
            "backpressure_sheds": self.backpressure_sheds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionGateway(depth={self.depth}, admitted={self.admitted}, "
            f"shed={self.shed})"
        )
