"""Keyed memo for predictor rollouts (the serve layer's shared cache).

Algorithm 1 rolls every running session's predictor forward ``horizon``
iterations per admission test.  Within one scheduling tick that rollout
is a pure function of ``(session, stage-transition epoch, horizon)`` —
nothing the admission test itself does can change it — so evaluating a
micro-batch of candidates against the same node should pay for it once.

:class:`RolloutCache` implements the
:class:`repro.core.scheduler.RolloutMemo` protocol: sessions attach it
via ``CoCGScheduler.attach_rollout_cache`` and consult it from
``predicted_peaks``.  Invalidation is *explicit*: every control-visible
state change bumps the session's epoch and calls :meth:`invalidate`, so
entries from before a stage transition can never answer for the state
after it.  Hit/miss/invalidation counters make the cache's value
measurable (``benchmarks/test_serve_throughput.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.platform_.resources import ResourceVector

__all__ = ["RolloutCache"]


class RolloutCache:
    """Bounded ``(session id, epoch, horizon) -> peaks`` memo.

    Parameters
    ----------
    max_entries:
        Bound on stored rollouts; the oldest entry is evicted first
        (insertion order — entries of live epochs are re-inserted on
        the next miss, so eviction only costs a recompute).
    """

    def __init__(self, *, max_entries: int = 4096):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: Dict[Tuple[str, int, int], List[ResourceVector]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # RolloutMemo protocol
    # ------------------------------------------------------------------
    def get(
        self, session_id: str, epoch: int, horizon: int
    ) -> Optional[List[ResourceVector]]:
        """Return the memoized peaks, or ``None`` (counted as a miss)."""
        peaks = self._entries.get((session_id, epoch, horizon))
        if peaks is None:
            self.misses += 1
            return None
        self.hits += 1
        return peaks

    def put(
        self,
        session_id: str,
        epoch: int,
        horizon: int,
        peaks: List[ResourceVector],
    ) -> None:
        """Memoize one rollout, evicting the oldest entry when full."""
        if len(self._entries) >= self.max_entries:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[(session_id, epoch, horizon)] = peaks

    def invalidate(self, session_id: str) -> None:
        """Drop every entry of one session (stage transition/release)."""
        stale = [key for key in self._entries if key[0] == session_id]
        for key in stale:
            del self._entries[key]
        self.invalidations += len(stale)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters as a flat dict (for benchmark artifacts)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "entries": len(self._entries),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RolloutCache(entries={len(self._entries)}, hits={self.hits}, "
            f"misses={self.misses})"
        )
