"""Micro-batched Algorithm-1 dispatch.

Naive per-request admission evaluates Algorithm 1 from scratch for every
``request × node`` pair: each evaluation re-sums the node's current
co-consumption and re-rolls every running session's predictor
``horizon`` iterations.  Within one scheduling tick none of that depends
on the candidate, so a tick's pending requests form a natural
*micro-batch*: one :class:`~repro.core.distributor.BatchEvaluation` per
node answers every candidate from a single shared rollout pass.

Outcome equivalence is by construction, not by luck:

* candidates are walked in exactly the order naive dispatch uses —
  requests in queue order, nodes via
  :meth:`~repro.cluster.fleet.ClusterScheduler.candidate_order` (the
  round-robin cursor advances identically);
* the pre-screen evaluates the same ``(entry_min, steady)`` terms
  (``CoCGScheduler.admission_terms``) against the same running views as
  the node's own ``try_admit`` would, so it rejects exactly when the
  node would reject — the node is simply never asked, and no
  :class:`~repro.games.session.GameSession` is built for it;
* a node that passes the pre-screen still goes through the authoritative
  ``node.try_admit`` (placement can fail under the cap even when
  Algorithm 1 passes), and an admission drops that node's batch
  snapshot, since its running set just changed.

Nodes whose strategy does not expose a CoCG scheduler (baselines) fall
back to plain ``try_admit`` — the batcher degrades to naive dispatch for
them instead of guessing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.core.distributor import BatchEvaluation
from repro.obs.metrics import MetricsRegistry
from repro.obs.naming import BATCHER_EVENTS

if TYPE_CHECKING:  # pragma: no cover - cluster imports nothing from here
    from repro.cluster.fleet import ClusterScheduler, FleetNode
    from repro.serve.gateway import QueuedRequest

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Per-tick shared Algorithm-1 evaluation across a fleet's nodes.

    One instance lives inside an
    :class:`~repro.serve.gateway.AdmissionGateway`; the gateway calls
    :meth:`begin_round` once per pump and :meth:`dispatch_one` per due
    request.  Counters expose how much work batching saved; they live in
    ``registry`` (the gateway's shared one, or a private registry when
    ``None``) as ``serve_batcher_events_total{event=...}``, with the
    historical attribute names kept as read-only views.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        events = registry.counter(
            BATCHER_EVENTS,
            "Micro-batcher activity by event kind.",
            ("event",),
        )
        self._c_rounds = events.labels(event="rounds")
        #: Pre-screen Algorithm-1 evaluations (shared-rollout path).
        self._c_evaluations = events.labels(event="evaluations")
        #: Candidates the pre-screen rejected — no session was built
        #: and the node's ``try_admit`` was never entered.
        self._c_prescreen_rejects = events.labels(event="prescreen_rejects")
        self._c_admissions = events.labels(event="admissions")
        #: Candidate probes that fell back to plain ``try_admit``
        #: (non-CoCG strategy or unknown game profile).
        self._c_fallback_probes = events.labels(event="fallback_probes")
        self._batches: Dict[str, BatchEvaluation] = {}

    # ------------------------------------------------------------------
    # Counter views (kept for compatibility with pre-registry callers)
    # ------------------------------------------------------------------
    @property
    def rounds(self) -> int:
        """Batch rounds begun (registry-backed view)."""
        return int(self._c_rounds.value)

    @property
    def evaluations(self) -> int:
        """Pre-screen Algorithm-1 evaluations (registry-backed view)."""
        return int(self._c_evaluations.value)

    @property
    def prescreen_rejects(self) -> int:
        """Candidates rejected before ``try_admit`` (registry-backed)."""
        return int(self._c_prescreen_rejects.value)

    @property
    def admissions(self) -> int:
        """Batched dispatches that stuck (registry-backed view)."""
        return int(self._c_admissions.value)

    @property
    def fallback_probes(self) -> int:
        """Probes that fell back to plain ``try_admit`` (registry view)."""
        return int(self._c_fallback_probes.value)

    # ------------------------------------------------------------------
    def begin_round(self) -> None:
        """Start a fresh batch round: all node snapshots are dropped."""
        self._c_rounds.inc()
        self._batches = {}

    @staticmethod
    def _probe(node: "FleetNode"):
        """The node's CoCG scheduler, if its strategy exposes one."""
        sched = getattr(node.strategy, "scheduler", None)
        if sched is None:
            return None
        if not (
            hasattr(sched, "distributor")
            and hasattr(sched, "task_views")
            and hasattr(sched, "admission_terms")
        ):
            return None
        return sched

    def dispatch_one(
        self,
        cluster: "ClusterScheduler",
        entry: "QueuedRequest",
        *,
        time: float,
        seed_for,
    ) -> Optional["FleetNode"]:
        """Place one request using the round's shared batch snapshots.

        Mirrors :meth:`ClusterScheduler.dispatch` (same candidate order,
        same ``dispatched``/``deferred`` accounting) with the Algorithm-1
        pre-screen in front of each node's ``try_admit``.
        """
        request = entry.request
        for node in cluster.candidate_order(request):
            sched = self._probe(node)
            profile = (
                node.profiles.get(request.spec.name)
                if sched is not None
                else None
            )
            if sched is not None and profile is not None:
                batch = self._batches.get(node.node_id)
                if batch is None:
                    batch = sched.distributor.begin_batch(sched.task_views())
                    self._batches[node.node_id] = batch
                entry_min, steady = sched.admission_terms(profile)
                self._c_evaluations.inc(time=time)
                if not batch.evaluate(entry_min, steady).admitted:
                    self._c_prescreen_rejects.inc(time=time)
                    continue
            else:
                self._c_fallback_probes.inc(time=time)
            if node.try_admit(
                request,
                time=time,
                seed=seed_for(request, entry.incarnation),
                incarnation=entry.incarnation,
            ):
                # The node's running set changed; its snapshot is stale.
                self._batches.pop(node.node_id, None)
                self._c_admissions.inc(time=time)
                cluster.note_dispatch("dispatched", time=time)
                return node
        cluster.note_dispatch("deferred", time=time)
        return None

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Counters as a flat dict (for benchmark artifacts)."""
        return {
            "rounds": self.rounds,
            "evaluations": self.evaluations,
            "prescreen_rejects": self.prescreen_rejects,
            "admissions": self.admissions,
            "fallback_probes": self.fallback_probes,
        }
