"""The ``.cgtrace`` record vocabulary.

A trace is a header, a sorted body of arrival/stage/fault records, and a
trailer.  Every record type here is a frozen dataclass with an explicit,
byte-stable ``to_dict`` — the writer serializes them with canonical JSON
(sorted keys, no whitespace) so that two recordings of the same run are
byte-identical.

``*Event`` dataclasses are part of the replay contract (lint rule CG013
requires them to reach a digest); :func:`repro.trace.format.digest` is
the payload digest they flow through.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = [
    "SCHEMA",
    "KNOWN_SCHEMAS",
    "TraceHeader",
    "ArrivalEvent",
    "StageEvent",
    "FaultScheduleEvent",
    "TraceTrailer",
]

#: Current schema identifier, embedded in every header record.
SCHEMA = "cocg-trace/1"

#: Every schema version this reader understands.
KNOWN_SCHEMAS: Tuple[str, ...] = (SCHEMA,)


@dataclass(frozen=True)
class TraceHeader:
    """The first record of every trace.

    Parameters
    ----------
    schema:
        Format version (``cocg-trace/1``); readers reject unknown ones.
    scenario:
        Corpus scenario name, or ``""`` for an ad-hoc recording.
    seed:
        The experiment's base seed — session seeds derive from it.
    config:
        The run configuration (:class:`repro.trace.harness.RunConfig`
        payload) that rebuilds the fleet for replay.
    fingerprint:
        sha256 over the canonical config JSON; a replay against a
        different configuration fails loudly instead of diverging.
    meta:
        Environment stamps (numpy version, package version) — advisory,
        excluded from the fingerprint.
    """

    schema: str
    scenario: str
    seed: int
    config: Dict
    fingerprint: str
    meta: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON payload (``record`` discriminator included)."""
        return {
            "record": "header",
            "schema": self.schema,
            "scenario": self.scenario,
            "seed": self.seed,
            "config": self.config,
            "fingerprint": self.fingerprint,
            "meta": self.meta,
        }


@dataclass(frozen=True)
class ArrivalEvent:
    """One gateway arrival: everything needed to rebuild the request.

    The player is reconstructed from ``(player, behaviour)`` — scripted
    behaviours are pure functions of the player id and the game
    category, so no per-player state needs recording.
    """

    time: float
    request_id: int
    game: str
    script: str
    player: str
    behaviour: str
    category: str

    def to_dict(self) -> Dict:
        return {
            "record": "arrival",
            "t": self.time,
            "id": self.request_id,
            "game": self.game,
            "script": self.script,
            "player": self.player,
            "behaviour": self.behaviour,
            "category": self.category,
        }


@dataclass(frozen=True)
class StageEvent:
    """One step of a request/session timeline.

    Gateway verdicts (``queued``/``admitted``/``shed``/``dead-lettered``)
    use ``start == end == time`` (an instant); session stage completions
    carry the stage's ``[start, end)`` window in *session-elapsed*
    seconds, with ``time`` the simulation second the completion was
    observed at.
    """

    time: float
    session: str
    stage: str
    start: float
    end: float
    node: str = ""

    def to_dict(self) -> Dict:
        out = {
            "record": "stage",
            "t": self.time,
            "session": self.session,
            "stage": self.stage,
            "start": self.start,
            "end": self.end,
        }
        if self.node:
            out["node"] = self.node
        return out


@dataclass(frozen=True)
class FaultScheduleEvent:
    """One scheduled fault, as its strict ``FaultSpec.to_dict`` payload.

    ``index`` is the fault's position in the plan's ``scheduled()``
    order — the same index fault attribution (dead letters, lifecycle
    spans) uses everywhere else.
    """

    time: float
    index: int
    spec: Dict

    def to_dict(self) -> Dict:
        return {
            "record": "fault",
            "t": self.time,
            "index": self.index,
            "spec": self.spec,
        }


@dataclass(frozen=True)
class TraceTrailer:
    """The last record: integrity and replay contract.

    ``payload_digest`` covers every body line (corruption detection);
    ``fleet_digest`` is the run's telemetry digest — the value a replay
    must reproduce byte-for-byte.
    """

    records: int
    payload_digest: str
    fleet_digest: str

    def to_dict(self) -> Dict:
        return {
            "record": "trailer",
            "records": self.records,
            "payload_digest": self.payload_digest,
            "fleet_digest": self.fleet_digest,
        }
