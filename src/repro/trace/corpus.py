"""The shipped scenario corpus: named, regenerable workload traces.

Each :class:`ScenarioSpec` pairs a :class:`~repro.trace.harness.RunConfig`
with a time-varying arrival-rate envelope, a scripted-player behaviour
mix, and (optionally) a fault schedule.  :class:`ScenarioArrivals`
realizes the envelope as a nonhomogeneous Poisson stream via thinning —
a pure function of the scenario and seed, so ``cocg corpus generate``
reproduces every shipped ``corpus/*.cgtrace`` byte-for-byte.

The four shipped scenarios cover the workload shapes the paper's
co-location story is judged on: a launch-day flash crowd, a diurnal
demand wave, an MMO raid-night with synchronized burst cohorts, and a
mobile churn storm with mid-session abandons.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.experiment import FleetResult
from repro.faults.plan import FaultPlan
from repro.games.catalog import build_catalog
from repro.games.spec import GameSpec
from repro.trace.harness import RunConfig, record_run
from repro.trace.players import get_behaviour, make_player
from repro.trace.recorder import TraceRecorder
from repro.util.rng import as_rng, derive_seed
from repro.workloads.requests import GameRequest

__all__ = [
    "RateEnvelope",
    "ScenarioSpec",
    "ScenarioArrivals",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
    "generate_scenario",
]


@dataclass(frozen=True)
class RateEnvelope:
    """A piecewise-constant arrival rate (requests per minute).

    ``steps`` maps breakpoint times (seconds, ascending, starting at 0)
    to the rate that holds from that time until the next breakpoint.
    """

    steps: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("envelope needs at least one step")
        times = [t for t, _ in self.steps]
        if times[0] != 0.0:
            raise ValueError(f"envelope must start at t=0, got {times[0]}")
        if times != sorted(times) or len(set(times)) != len(times):
            raise ValueError(f"envelope breakpoints must ascend: {times}")
        if any(rate < 0 for _, rate in self.steps):
            raise ValueError("envelope rates must be >= 0")
        if max(rate for _, rate in self.steps) <= 0:
            raise ValueError("envelope must be positive somewhere")

    def rate_at(self, t: float) -> float:
        """Requests/minute in effect at time ``t``."""
        idx = bisect.bisect_right([s[0] for s in self.steps], t) - 1
        return self.steps[max(0, idx)][1]

    @property
    def peak(self) -> float:
        """The envelope's maximum rate (the thinning majorant)."""
        return max(rate for _, rate in self.steps)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named corpus scenario.

    ``mix`` weights scripted-player behaviours (weights need not sum to
    1; they are normalized).  ``plan_builder``, when set, derives the
    scenario's fault schedule from its config.
    """

    name: str
    description: str
    config: RunConfig
    envelope: RateEnvelope
    mix: Tuple[Tuple[str, float], ...]
    plan_builder: Optional[Callable[[RunConfig], FaultPlan]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.mix:
            raise ValueError("behaviour mix must be non-empty")
        for behaviour, weight in self.mix:
            get_behaviour(behaviour)  # raises on unknown names
            if weight <= 0:
                raise ValueError(
                    f"mix weight for {behaviour!r} must be > 0, got {weight}"
                )

    def plan(self) -> Optional[FaultPlan]:
        """The scenario's fault schedule (None when it runs fault-free)."""
        return (
            self.plan_builder(self.config)
            if self.plan_builder is not None
            else None
        )


class ScenarioArrivals:
    """Nonhomogeneous Poisson arrivals shaped by a scenario's envelope.

    Thinning (Lewis & Shedler): candidate points are drawn from a
    homogeneous stream at the envelope's peak rate, then accepted with
    probability ``rate(t) / peak``.  Every RNG draw happens in a fixed
    order, so the stream — request ids, scripts, behaviours, players —
    is a pure function of ``(scenario, seed)``.  Drop-in for the
    ``arrivals=`` parameter of ``FleetExperiment``.
    """

    def __init__(self, scenario: ScenarioSpec, specs: List[GameSpec]):
        if not specs:
            raise ValueError("specs must be non-empty")
        config = scenario.config
        rng = as_rng(
            derive_seed(config.seed, "scenario", scenario.name)
        )
        total = sum(weight for _, weight in scenario.mix)
        cumulative: List[Tuple[float, str]] = []
        acc = 0.0
        for behaviour, weight in scenario.mix:
            acc += weight / total
            cumulative.append((acc, behaviour))
        peak_per_second = scenario.envelope.peak / 60.0
        self.requests: List[GameRequest] = []
        t = 0.0
        i = 0
        while True:
            t += rng.exponential(1.0 / peak_per_second)
            if t >= config.horizon:
                break
            if rng.random() >= scenario.envelope.rate_at(t) / scenario.envelope.peak:
                continue  # thinned out — envelope is below peak here
            spec = specs[int(rng.integers(len(specs)))]
            script = spec.scripts[int(rng.integers(len(spec.scripts)))].name
            draw = rng.random()
            behaviour = next(
                name for edge, name in cumulative if draw < edge
            )
            player = make_player(
                f"{scenario.name}-{behaviour}-{i}",
                spec.category,
                behaviour,
                seed=0,
            )
            self.requests.append(GameRequest(spec, script, player, t, i))
            i += 1

    def due(self, t0: float, t1: float) -> List[GameRequest]:
        """Requests arriving in ``[t0, t1)`` (PoissonArrivals parity)."""
        return [r for r in self.requests if t0 <= r.arrival < t1]


# ---------------------------------------------------------------------------
# The shipped scenarios
# ---------------------------------------------------------------------------

def _abandon_storm(config: RunConfig) -> FaultPlan:
    """Mid-session abandons for the mobile churn scenario: players bail
    without requeueing, right as each on-peak window ends."""
    plan = FaultPlan(seed=config.fault_seed)
    for time in (150.0, 390.0, 510.0):
        if time < config.horizon:
            plan.session_kill(time, requeue=False)
    return plan


SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in (
        ScenarioSpec(
            name="launch-day",
            description=(
                "Flash crowd at a free-to-play launch: a quiet baseline, "
                "a 10x arrival spike of mostly tourists two minutes in, "
                "then a slow decay as grinders settle in"
            ),
            config=RunConfig(
                games=("contra",), nodes=3, horizon=600, seed=11
            ),
            envelope=RateEnvelope((
                (0.0, 4.0), (120.0, 40.0), (240.0, 10.0), (360.0, 4.0),
            )),
            mix=(("tourist", 0.55), ("grinder", 0.25), ("organic", 0.20)),
        ),
        ScenarioSpec(
            name="diurnal-wave",
            description=(
                "A compressed day/night demand cycle over a mixed "
                "web + MMO catalogue: overnight trickle, morning ramp, "
                "evening peak, wind-down"
            ),
            config=RunConfig(
                games=("contra", "dota2"), nodes=3, horizon=900, seed=23
            ),
            envelope=RateEnvelope((
                (0.0, 2.0), (180.0, 6.0), (360.0, 12.0),
                (600.0, 8.0), (780.0, 3.0),
            )),
            mix=(
                ("organic", 0.40), ("grinder", 0.25),
                ("afk", 0.20), ("tourist", 0.15),
            ),
        ),
        ScenarioSpec(
            name="raid-night",
            description=(
                "MMO raid night: two synchronized raider cohorts hit the "
                "heavy titles at once, stressing burst headroom and "
                "co-location interference detection"
            ),
            config=RunConfig(
                games=("csgo", "dota2"), nodes=3, horizon=600, seed=37
            ),
            envelope=RateEnvelope((
                (0.0, 6.0), (180.0, 24.0), (240.0, 6.0),
                (420.0, 24.0), (480.0, 6.0),
            )),
            mix=(("raider", 0.60), ("grinder", 0.30), ("organic", 0.10)),
        ),
        ScenarioSpec(
            name="mobile-burst",
            description=(
                "Mobile churn storm: a square-wave of short-session "
                "arrivals alternating every two minutes, with scripted "
                "mid-session abandons at each peak's end"
            ),
            config=RunConfig(
                games=("genshin",), nodes=2, horizon=600, seed=41
            ),
            envelope=RateEnvelope((
                (0.0, 3.0), (120.0, 18.0), (240.0, 3.0),
                (360.0, 18.0), (480.0, 3.0),
            )),
            mix=(("tourist", 0.50), ("organic", 0.30), ("afk", 0.20)),
            plan_builder=_abandon_storm,
        ),
    )
}


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a shipped scenario; unknown names list what exists."""
    if name not in SCENARIOS:
        raise KeyError(
            f"unknown scenario {name!r}; shipped scenarios: "
            f"{', '.join(scenario_names())}"
        )
    return SCENARIOS[name]


def scenario_names() -> List[str]:
    """Shipped scenario names, sorted."""
    return sorted(SCENARIOS)


def generate_scenario(name: str) -> Tuple[FleetResult, TraceRecorder]:
    """Run one shipped scenario under a recorder.

    Returns the run result and the finalized recorder; callers persist
    with ``recorder.save(path)``.  Deterministic: the same repo state
    always produces the same ``.cgtrace`` bytes.
    """
    scenario = get_scenario(name)
    catalog = build_catalog()
    specs = [catalog[g] for g in scenario.config.games]
    arrivals = ScenarioArrivals(scenario, specs)
    return record_run(
        scenario.config,
        scenario=scenario.name,
        plan=scenario.plan(),
        arrivals=arrivals,
    )
