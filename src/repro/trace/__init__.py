"""Workload record/replay: ``.cgtrace`` traces and the scenario corpus.

Record any gateway-fronted fleet run into a versioned, digest-sealed
``.cgtrace`` file (:class:`TraceRecorder` via the ``trace=`` handle),
then replay it bit-for-bit later (:class:`TraceReplayer`) — the replay
must reproduce the recorded fleet telemetry digest or it raises
:class:`ReplayDivergence` naming the first divergent record.  The
shipped corpus (:data:`SCENARIOS`) packages four canonical cloud-gaming
workload shapes as regenerable traces; scripted players
(:data:`BEHAVIOURS`) shape their load.  See ``docs/TRACE.md``.
"""

from repro.trace.corpus import (
    SCENARIOS,
    RateEnvelope,
    ScenarioArrivals,
    ScenarioSpec,
    generate_scenario,
    get_scenario,
    scenario_names,
)
from repro.trace.events import (
    KNOWN_SCHEMAS,
    SCHEMA,
    ArrivalEvent,
    FaultScheduleEvent,
    StageEvent,
    TraceHeader,
    TraceTrailer,
)
from repro.trace.format import (
    TraceDigestError,
    TraceDocument,
    TraceError,
    TraceFormatError,
    TraceSchemaError,
    TraceTruncatedError,
    config_fingerprint,
)
from repro.trace.harness import (
    RunConfig,
    build_cluster,
    build_profiles,
    experiment_seed,
    record_run,
    replay_document,
    replay_path,
)
from repro.trace.players import (
    BEHAVIOURS,
    PlayerBehaviour,
    ScriptedPlayer,
    behaviour_names,
    behaviour_of,
    get_behaviour,
    make_player,
    register_behaviour,
)
from repro.trace.recorder import TraceRecorder
from repro.trace.replayer import (
    ReplayDivergence,
    ReplayedArrivals,
    ReplayReport,
    TraceReplayer,
)

__all__ = [
    "SCHEMA",
    "KNOWN_SCHEMAS",
    "TraceHeader",
    "ArrivalEvent",
    "StageEvent",
    "FaultScheduleEvent",
    "TraceTrailer",
    "TraceDocument",
    "TraceError",
    "TraceSchemaError",
    "TraceFormatError",
    "TraceTruncatedError",
    "TraceDigestError",
    "config_fingerprint",
    "PlayerBehaviour",
    "ScriptedPlayer",
    "BEHAVIOURS",
    "register_behaviour",
    "get_behaviour",
    "behaviour_names",
    "behaviour_of",
    "make_player",
    "TraceRecorder",
    "ReplayDivergence",
    "ReplayedArrivals",
    "ReplayReport",
    "TraceReplayer",
    "RunConfig",
    "experiment_seed",
    "build_profiles",
    "build_cluster",
    "record_run",
    "replay_document",
    "replay_path",
    "RateEnvelope",
    "ScenarioSpec",
    "ScenarioArrivals",
    "SCENARIOS",
    "get_scenario",
    "scenario_names",
    "generate_scenario",
]
