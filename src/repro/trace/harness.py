"""Run configuration and the record/replay composition helpers.

A :class:`RunConfig` is the JSON-serializable description of one
gateway-fronted fleet run — games, fleet shape, gateway bounds, profile
corpus parameters — that a trace header carries.  It is strict both
ways (defaults elided on write, unknown keys rejected by name on read,
exactly like :class:`~repro.faults.plan.FaultSpec`), so its canonical
fingerprint pins the configuration a trace was recorded under.

The helpers compose the rest of the stack from a config:
:func:`build_profiles` -> :func:`build_cluster` -> :func:`record_run`
for the recording side, :func:`replay_document`/:func:`replay_path` for
the replay side.  ``cocg record``/``cocg replay`` and the corpus
generator are thin wrappers over these.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.baselines import (
    CoCGStrategy,
    GAugurStrategy,
    MaxStaticStrategy,
    ReactiveStrategy,
    VBPStrategy,
)
from repro.cluster.experiment import FleetExperiment, FleetResult
from repro.cluster.fleet import ClusterScheduler, FleetNode
from repro.cluster.provisioner import Provisioner, ProvisionerConfig
from repro.core.pipeline import GameProfile
from repro.faults.plan import FaultPlan
from repro.games.catalog import build_catalog
from repro.serve.gateway import AdmissionGateway, GatewayConfig
from repro.trace.format import TraceDocument
from repro.trace.recorder import TraceRecorder
from repro.trace.replayer import ReplayReport, TraceReplayer
from repro.util.rng import region_seed
from repro.util.validation import check_in

__all__ = [
    "RunConfig",
    "make_strategy",
    "experiment_seed",
    "build_profiles",
    "build_cluster",
    "make_provisioner_factory",
    "record_run",
    "replay_document",
    "replay_path",
]

_STRATEGY_FACTORIES = {
    "cocg": CoCGStrategy,
    "reactive": ReactiveStrategy,
    "gaugur": GAugurStrategy,
    "vbp": VBPStrategy,
    "max-static": MaxStaticStrategy,
}


def make_strategy(name: str):
    """One fresh scheduling strategy instance by CLI name."""
    check_in("strategy", name, tuple(sorted(_STRATEGY_FACTORIES)))
    return _STRATEGY_FACTORIES[name]()


@dataclass(frozen=True)
class RunConfig:
    """Everything needed to rebuild a recorded run's fleet.

    Profile-building parameters (``players``/``sessions``/``backends``)
    are part of the config because the trained predictors influence
    admission decisions: a replay must train byte-identical profiles.

    ``fault_seed`` pins the fault plan's stochastic streams; the faults
    themselves live in the trace body.  ``warm_pool`` attaches a
    :class:`~repro.cluster.provisioner.Provisioner` with that many
    pre-booted standbys (``None`` = no capacity plane).

    ``region`` names the regional shard this run belongs to (empty =
    the classic unsharded fleet).  A region prefixes every node id
    (``east/node-0``) and namespaces the experiment seed through
    :func:`~repro.util.rng.region_seed`, so per-region sub-traces of a
    sharded run replay through the ordinary machinery while staying
    byte-distinct across regions; ``seed`` stays the fleet-wide base so
    profile training is shared.
    """

    games: Tuple[str, ...]
    nodes: int = 2
    policy: str = "round-robin"
    strategy: str = "cocg"
    horizon: int = 600
    rate_per_minute: float = 2.0
    seed: int = 0
    detect_interval: int = 5
    players: int = 3
    sessions: int = 2
    backends: Tuple[str, ...] = ("dtc",)
    gateway: bool = True
    queue_capacity: int = 64
    rate_limit: float = 4.0
    burst: int = 8
    max_queue_seconds: float = 300.0
    fault_seed: int = 0
    warm_pool: Optional[int] = None
    region: str = ""

    #: Keys that may be elided from the payload (everything but games),
    #: in declaration order — one tuple serves serialization and strict
    #: deserialization.
    OPTIONAL_FIELDS = (
        "nodes", "policy", "strategy", "horizon", "rate_per_minute",
        "seed", "detect_interval", "players", "sessions", "backends",
        "gateway", "queue_capacity", "rate_limit", "burst",
        "max_queue_seconds", "fault_seed", "warm_pool", "region",
    )

    def __post_init__(self) -> None:
        if not self.games:
            raise ValueError("games must be non-empty")
        object.__setattr__(self, "games", tuple(self.games))
        object.__setattr__(self, "backends", tuple(self.backends))
        check_in("policy", self.policy, ClusterScheduler.POLICIES)
        check_in(
            "strategy", self.strategy, tuple(sorted(_STRATEGY_FACTORIES))
        )
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {self.horizon}")
        if self.warm_pool is not None and self.warm_pool < 0:
            raise ValueError(
                f"warm_pool must be >= 0, got {self.warm_pool}"
            )
        if self.region and not self.region.replace("-", "_").isidentifier():
            raise ValueError(
                f"region must be an identifier-like name (dashes ok), "
                f"got {self.region!r}"
            )

    def to_dict(self) -> Dict:
        """JSON payload (defaults elided — byte-stable fingerprint)."""
        out: Dict = {"games": list(self.games)}
        defaults = RunConfig(games=self.games)
        for name in self.OPTIONAL_FIELDS:
            value = getattr(self, name)
            if value != getattr(defaults, name):
                out[name] = list(value) if isinstance(value, tuple) else value
        return out

    @staticmethod
    def from_dict(data: Dict) -> "RunConfig":
        """Inverse of :meth:`to_dict`; unknown keys rejected by name."""
        payload = dict(data)
        if "games" not in payload:
            raise ValueError(f"run config has no 'games': {data!r}")
        games = tuple(str(g) for g in payload.pop("games"))
        unknown = sorted(set(payload) - set(RunConfig.OPTIONAL_FIELDS))
        if unknown:
            raise ValueError(
                f"unknown run-config key(s) {unknown}; known keys: games, "
                f"{', '.join(RunConfig.OPTIONAL_FIELDS)}"
            )
        if "backends" in payload:
            payload["backends"] = tuple(
                str(b) for b in payload["backends"]
            )
        return RunConfig(games=games, **payload)


# ---------------------------------------------------------------------------
# Building blocks
# ---------------------------------------------------------------------------

def experiment_seed(config: RunConfig) -> int:
    """The run's experiment seed: the base seed, region-namespaced.

    Profile training always uses ``config.seed`` directly (shared
    across a sharded fleet); everything downstream of admission — node
    RNGs, session seeds, fault streams — uses this value, so regional
    shards of one fleet diverge deterministically.
    """
    if config.region:
        return region_seed(config.seed, config.region)
    return config.seed


def build_profiles(
    config: RunConfig,
    catalog: Optional[Dict] = None,
) -> Dict[str, GameProfile]:
    """Train the config's game profiles (deterministic in the config)."""
    catalog = catalog if catalog is not None else build_catalog()
    unknown = [g for g in config.games if g not in catalog]
    if unknown:
        raise ValueError(
            f"unknown game(s) {unknown}; available: "
            f"{', '.join(sorted(catalog))}"
        )
    return {
        game: GameProfile.build(
            catalog[game],
            n_players=config.players,
            sessions_per_player=config.sessions,
            seed=config.seed,
            backends=config.backends,
        )
        for game in config.games
    }


def build_cluster(
    config: RunConfig, profiles: Dict[str, GameProfile]
) -> ClusterScheduler:
    """One fresh fleet per call (gateway attached when configured).

    A regioned config prefixes node ids (``east/node-0``) and offsets
    node seeds from the region-namespaced experiment seed, so two
    regions of one sharded fleet never share node identity or node
    randomness.
    """
    prefix = f"{config.region}/" if config.region else ""
    base = experiment_seed(config)
    nodes = [
        FleetNode(
            f"{prefix}node-{i}",
            make_strategy(config.strategy),
            profiles,
            seed=base + i,
        )
        for i in range(config.nodes)
    ]
    cluster = ClusterScheduler(nodes, policy=config.policy)
    if config.gateway:
        gateway = AdmissionGateway(
            cluster,
            config=GatewayConfig(
                queue_capacity=config.queue_capacity,
                rate_per_second=config.rate_limit,
                burst=config.burst,
                max_queue_seconds=config.max_queue_seconds,
            ),
        )
        cluster.attach_gateway(gateway)
    return cluster


def make_provisioner_factory(
    config: RunConfig, profiles: Dict[str, GameProfile]
) -> Optional[Callable[[ClusterScheduler], Provisioner]]:
    """The capacity-plane factory a config implies (None without one)."""
    if config.warm_pool is None:
        return None

    seed = experiment_seed(config)

    def factory(cluster: ClusterScheduler) -> Provisioner:
        return Provisioner(
            cluster,
            lambda node_id: FleetNode(
                node_id,
                make_strategy(config.strategy),
                profiles,
                seed=seed,
            ),
            config=ProvisionerConfig(warm_pool_size=config.warm_pool),
            seed=seed,
        )

    return factory


# ---------------------------------------------------------------------------
# Record / replay
# ---------------------------------------------------------------------------

def record_run(
    config: RunConfig,
    *,
    scenario: str = "",
    plan: Optional[FaultPlan] = None,
    arrivals: Optional[object] = None,
    profiles: Optional[Dict[str, GameProfile]] = None,
) -> Tuple[FleetResult, TraceRecorder]:
    """Run one configured experiment with a recorder attached.

    Returns the run's result and the *finalized* recorder — call
    ``recorder.save(path)`` to persist the ``.cgtrace``.  ``arrivals``
    overrides the config's Poisson stream (corpus scenarios pass their
    shaped load generator); ``plan`` is recorded into the trace and its
    seed pinned into the config's ``fault_seed``.
    """
    if plan is not None and config.fault_seed != plan.seed:
        config = replace(config, fault_seed=plan.seed)
    catalog = build_catalog()
    if profiles is None:
        profiles = build_profiles(config, catalog)
    cluster = build_cluster(config, profiles)
    factory = make_provisioner_factory(config, profiles)
    recorder = TraceRecorder(
        seed=experiment_seed(config), config=config.to_dict(),
        scenario=scenario,
    )
    result = FleetExperiment(
        cluster,
        [catalog[g] for g in config.games],
        horizon=config.horizon,
        rate_per_minute=config.rate_per_minute,
        seed=experiment_seed(config),
        detect_interval=config.detect_interval,
        fault_plan=plan,
        provisioner=factory(cluster) if factory is not None else None,
        arrivals=arrivals,
        trace=recorder,
    ).run()
    return result, recorder


def replay_document(
    document: TraceDocument,
    *,
    profiles: Optional[Dict[str, GameProfile]] = None,
    strict: bool = True,
) -> ReplayReport:
    """Replay a parsed trace against a fleet rebuilt from its header."""
    config = RunConfig.from_dict(document.header.config)
    catalog = build_catalog()
    if profiles is None:
        profiles = build_profiles(config, catalog)
    # The header elides default-valued keys, so resolve horizon and
    # detect interval through RunConfig rather than the raw dict.
    replayer = TraceReplayer(
        document,
        lambda: build_cluster(config, profiles),
        {g: catalog[g] for g in config.games},
        horizon=config.horizon,
        detect_interval=config.detect_interval,
        make_provisioner=make_provisioner_factory(config, profiles),
    )
    return replayer.run(strict=strict)


def replay_path(
    path: Union[str, Path],
    *,
    profiles: Optional[Dict[str, GameProfile]] = None,
    strict: bool = True,
) -> ReplayReport:
    """Load one ``.cgtrace`` file and replay it (the CLI/CI entry)."""
    return replay_document(
        TraceDocument.load(path), profiles=profiles, strict=strict
    )
