"""Strict reader/writer for the ``.cgtrace`` JSON-lines format.

Layout of a trace file::

    {"record":"header","schema":"cocg-trace/1", ...}
    {"record":"arrival", ...}     # body, sorted (see _sort_key)
    {"record":"stage", ...}
    {"record":"fault", ...}
    {"record":"trailer","records":N,"payload_digest":...,"fleet_digest":...}

Every line is canonical JSON (sorted keys, no whitespace), the body is
written in a deterministic total order, and the trailer carries a sha256
over the body lines — so ``write -> read -> write`` is byte-identity and
any corruption fails by name:

* :class:`TraceSchemaError` — unknown ``schema`` (lists the known ones);
* :class:`TraceFormatError` — malformed/unknown record kind or field,
  out-of-order body, trailing garbage — always naming the offender;
* :class:`TraceTruncatedError` — missing trailer or a record-count
  mismatch (the file was cut short);
* :class:`TraceDigestError` — the body does not hash to the trailer's
  ``payload_digest`` (the file was edited or corrupted).

Replay *divergence* (the engine not reproducing ``fleet_digest``) is a
different failure and lives in :class:`repro.trace.replayer.ReplayDivergence`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.trace.events import (
    KNOWN_SCHEMAS,
    ArrivalEvent,
    FaultScheduleEvent,
    StageEvent,
    TraceHeader,
    TraceTrailer,
)

__all__ = [
    "TraceError",
    "TraceSchemaError",
    "TraceFormatError",
    "TraceTruncatedError",
    "TraceDigestError",
    "canonical",
    "digest",
    "config_fingerprint",
    "TraceDocument",
]

BodyEvent = Union[ArrivalEvent, StageEvent, FaultScheduleEvent]


class TraceError(Exception):
    """Base of every ``.cgtrace`` read/write failure."""


class TraceSchemaError(TraceError):
    """The header declares a schema version this reader does not know."""


class TraceFormatError(TraceError):
    """A malformed record: unknown kind/field, bad JSON, wrong order."""


class TraceTruncatedError(TraceError):
    """The trace ends before its trailer (or counts fewer records)."""


class TraceDigestError(TraceError):
    """The body does not hash to the trailer's ``payload_digest``."""


def canonical(obj: object) -> str:
    """Canonical JSON: sorted keys, no whitespace — byte-stable."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def digest(lines: Sequence[str]) -> str:
    """sha256 over newline-terminated body lines (the payload digest)."""
    h = hashlib.sha256()
    for line in lines:
        h.update(line.encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def config_fingerprint(config: Dict) -> str:
    """sha256 over the canonical config JSON (the header fingerprint)."""
    return hashlib.sha256(canonical(config).encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Record schemas: kind -> (required fields, optional fields)
# ---------------------------------------------------------------------------

_RECORD_FIELDS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "header": (
        ("record", "schema", "scenario", "seed", "config", "fingerprint",
         "meta"),
        (),
    ),
    "arrival": (
        ("record", "t", "id", "game", "script", "player", "behaviour",
         "category"),
        (),
    ),
    "stage": (
        ("record", "t", "session", "stage", "start", "end"),
        ("node",),
    ),
    "fault": (("record", "t", "index", "spec"), ()),
    "trailer": (("record", "records", "payload_digest", "fleet_digest"), ()),
}

# Same-time body ordering: arrivals, then the fault schedule, then the
# observed stage timeline.
_KIND_RANK = {"arrival": 0, "fault": 1, "stage": 2}


def _sort_key(event: BodyEvent) -> Tuple:
    """The total order body records are written (and verified) in."""
    if isinstance(event, ArrivalEvent):
        return (event.time, 0, event.request_id, "", "", 0.0, 0.0)
    if isinstance(event, FaultScheduleEvent):
        return (event.time, 1, event.index, "", "", 0.0, 0.0)
    return (
        event.time, 2, 0, event.session, event.stage, event.start, event.end,
        event.node,
    )


def _check_fields(kind: str, payload: Dict, lineno: int) -> None:
    required, optional = _RECORD_FIELDS[kind]
    missing = sorted(set(required) - set(payload))
    if missing:
        raise TraceFormatError(
            f"line {lineno}: {kind} record is missing field(s) "
            f"{missing}; required: {', '.join(required)}"
        )
    unknown = sorted(set(payload) - set(required) - set(optional))
    if unknown:
        known = ", ".join(required + optional)
        raise TraceFormatError(
            f"line {lineno}: {kind} record has unknown field(s) "
            f"{unknown}; known fields: {known}"
        )


@dataclass
class TraceDocument:
    """A fully parsed (or about-to-be-written) ``.cgtrace`` trace."""

    header: TraceHeader
    arrivals: List[ArrivalEvent] = field(default_factory=list)
    stages: List[StageEvent] = field(default_factory=list)
    faults: List[FaultScheduleEvent] = field(default_factory=list)
    trailer: TraceTrailer = TraceTrailer(0, "", "")

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def body_events(self) -> List[BodyEvent]:
        """Every body record in the canonical written order."""
        events: List[BodyEvent] = [*self.arrivals, *self.faults, *self.stages]
        return sorted(events, key=_sort_key)

    def body_lines(self) -> List[str]:
        """Canonical JSON lines of the body (the payload-digest input)."""
        return [canonical(e.to_dict()) for e in self.body_events()]

    def payload_digest(self) -> str:
        """sha256 of :meth:`body_lines` — what the trailer must carry."""
        return digest(self.body_lines())

    def sealed(self, fleet_digest: str) -> "TraceDocument":
        """A copy with a freshly computed, consistent trailer."""
        body = self.body_lines()
        return TraceDocument(
            header=self.header,
            arrivals=list(self.arrivals),
            stages=list(self.stages),
            faults=list(self.faults),
            trailer=TraceTrailer(
                records=len(body),
                payload_digest=digest(body),
                fleet_digest=fleet_digest,
            ),
        )

    def dumps(self) -> str:
        """The complete trace text (header + sorted body + trailer)."""
        lines = [canonical(self.header.to_dict())]
        lines.extend(self.body_lines())
        lines.append(canonical(self.trailer.to_dict()))
        return "\n".join(lines) + "\n"

    def save(self, path: Union[str, Path]) -> Path:
        """Write the trace to ``path`` (conventionally ``*.cgtrace``)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.dumps(), encoding="utf-8")
        return path

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @staticmethod
    def loads(text: str) -> "TraceDocument":
        """Parse a trace, strictly.  See module docstring for failures."""
        raw_lines = [ln for ln in text.split("\n") if ln.strip()]
        if not raw_lines:
            raise TraceTruncatedError("empty trace: no header record")
        header = _parse_header(raw_lines[0])
        arrivals: List[ArrivalEvent] = []
        stages: List[StageEvent] = []
        faults: List[FaultScheduleEvent] = []
        body_lines: List[str] = []
        trailer: TraceTrailer = None  # type: ignore[assignment]
        last_key: Tuple = ()
        for lineno, line in enumerate(raw_lines[1:], start=2):
            payload = _parse_json(line, lineno)
            kind = payload.get("record")
            if kind == "trailer":
                _check_fields("trailer", payload, lineno)
                trailer = TraceTrailer(
                    records=int(payload["records"]),
                    payload_digest=str(payload["payload_digest"]),
                    fleet_digest=str(payload["fleet_digest"]),
                )
                if lineno != len(raw_lines):
                    raise TraceFormatError(
                        f"line {lineno}: trailer is not the last record "
                        f"({len(raw_lines) - lineno} line(s) follow)"
                    )
                break
            event = _parse_body(kind, payload, lineno)
            key = _sort_key(event)
            if last_key and key < last_key:
                raise TraceFormatError(
                    f"line {lineno}: body records out of order "
                    f"(t={_event_time(event)} after t={last_key[0]}; "
                    f"the writer emits a sorted body)"
                )
            last_key = key
            body_lines.append(canonical(event.to_dict()))
            if isinstance(event, ArrivalEvent):
                arrivals.append(event)
            elif isinstance(event, StageEvent):
                stages.append(event)
            else:
                faults.append(event)
        if trailer is None:
            raise TraceTruncatedError(
                f"trace ends after {len(raw_lines)} line(s) without a "
                f"trailer record — the file is truncated"
            )
        if trailer.records != len(body_lines):
            raise TraceTruncatedError(
                f"trailer counts {trailer.records} body record(s) but the "
                f"trace holds {len(body_lines)} — the file is truncated or "
                f"spliced"
            )
        actual = digest(body_lines)
        if actual != trailer.payload_digest:
            raise TraceDigestError(
                f"payload digest mismatch: trailer says "
                f"{trailer.payload_digest[:16]}…, body hashes to "
                f"{actual[:16]}… — the trace was edited or corrupted"
            )
        return TraceDocument(
            header=header,
            arrivals=arrivals,
            stages=stages,
            faults=faults,
            trailer=trailer,
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "TraceDocument":
        """Read and parse one ``.cgtrace`` file."""
        return TraceDocument.loads(Path(path).read_text(encoding="utf-8"))


# ---------------------------------------------------------------------------
# Parse helpers
# ---------------------------------------------------------------------------

def _parse_json(line: str, lineno: int) -> Dict:
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"line {lineno}: not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise TraceFormatError(
            f"line {lineno}: record must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


def _parse_header(line: str) -> TraceHeader:
    payload = _parse_json(line, 1)
    if payload.get("record") != "header":
        raise TraceFormatError(
            f"line 1: first record must be 'header', got "
            f"{payload.get('record')!r}"
        )
    _check_fields("header", payload, 1)
    schema = str(payload["schema"])
    if schema not in KNOWN_SCHEMAS:
        raise TraceSchemaError(
            f"unknown trace schema {schema!r}; this reader understands: "
            f"{', '.join(KNOWN_SCHEMAS)}"
        )
    config = payload["config"]
    if not isinstance(config, dict):
        raise TraceFormatError(
            f"line 1: header 'config' must be an object, got "
            f"{type(config).__name__}"
        )
    meta = payload["meta"]
    if not isinstance(meta, dict):
        raise TraceFormatError(
            f"line 1: header 'meta' must be an object, got "
            f"{type(meta).__name__}"
        )
    expected = config_fingerprint(config)
    if str(payload["fingerprint"]) != expected:
        raise TraceDigestError(
            f"header fingerprint {str(payload['fingerprint'])[:16]}… does "
            f"not match the config (expected {expected[:16]}…) — the "
            f"configuration was edited after recording"
        )
    return TraceHeader(
        schema=schema,
        scenario=str(payload["scenario"]),
        seed=int(payload["seed"]),
        config=config,
        fingerprint=str(payload["fingerprint"]),
        meta={str(k): str(v) for k, v in sorted(meta.items())},
    )


def _parse_body(kind: object, payload: Dict, lineno: int) -> BodyEvent:
    if kind not in _KIND_RANK:
        known = ", ".join(sorted(_RECORD_FIELDS))
        raise TraceFormatError(
            f"line {lineno}: unknown record kind {kind!r}; known kinds: "
            f"{known}"
        )
    _check_fields(str(kind), payload, lineno)
    if kind == "arrival":
        return ArrivalEvent(
            time=float(payload["t"]),
            request_id=int(payload["id"]),
            game=str(payload["game"]),
            script=str(payload["script"]),
            player=str(payload["player"]),
            behaviour=str(payload["behaviour"]),
            category=str(payload["category"]),
        )
    if kind == "stage":
        return StageEvent(
            time=float(payload["t"]),
            session=str(payload["session"]),
            stage=str(payload["stage"]),
            start=float(payload["start"]),
            end=float(payload["end"]),
            node=str(payload.get("node", "")),
        )
    spec = payload["spec"]
    if not isinstance(spec, dict):
        raise TraceFormatError(
            f"line {lineno}: fault 'spec' must be an object, got "
            f"{type(spec).__name__}"
        )
    return FaultScheduleEvent(
        time=float(payload["t"]),
        index=int(payload["index"]),
        spec=spec,
    )


def _event_time(event: BodyEvent) -> float:
    return event.time
