"""The replay half of record/replay.

A :class:`TraceReplayer` drives a :class:`~repro.cluster.experiment.FleetExperiment`
from a parsed trace instead of a live load generator: arrivals are
rebuilt from the trace's arrival records (players reconstructed from the
behaviour registry — pure functions of ``(player_id, category,
behaviour)``), the fault plan from its fault records, and the horizon,
seeds and detect interval from the header.  After the run, the replayed
fleet telemetry digest is checked against the digest the trailer
recorded; a mismatch raises :class:`ReplayDivergence` with the first
divergent timeline record, so "what changed" is one error message away.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Mapping, Optional

from repro.cluster.experiment import FleetExperiment, FleetResult
from repro.cluster.fleet import ClusterScheduler
from repro.cluster.provisioner import Provisioner
from repro.faults.plan import FaultPlan, FaultSpec
from repro.games.spec import GameSpec
from repro.trace.format import TraceDocument, TraceError, TraceFormatError
from repro.trace.players import make_player
from repro.trace.recorder import TraceRecorder
from repro.workloads.requests import GameRequest

__all__ = ["ReplayDivergence", "ReplayedArrivals", "ReplayReport", "TraceReplayer"]


class ReplayDivergence(TraceError):
    """The replayed run did not reproduce the trace's fleet digest."""


class ReplayedArrivals:
    """An arrival source rebuilt record-by-record from a trace.

    Drop-in for :class:`~repro.workloads.requests.PoissonArrivals` (the
    ``arrivals=`` parameter of :class:`FleetExperiment`): exposes the
    ``requests`` list, with every request id, arrival time, script and
    player reconstructed exactly as the live run saw them.
    """

    def __init__(
        self, document: TraceDocument, specs: Mapping[str, GameSpec]
    ):
        self.requests: List[GameRequest] = []
        for arrival in document.arrivals:
            spec = specs.get(arrival.game)
            if spec is None:
                raise TraceFormatError(
                    f"arrival r{arrival.request_id} names game "
                    f"{arrival.game!r} which is not in the provided spec "
                    f"set: {', '.join(sorted(specs))}"
                )
            if spec.category.value != arrival.category:
                raise TraceFormatError(
                    f"arrival r{arrival.request_id}: trace says "
                    f"{arrival.game!r} is category {arrival.category!r} "
                    f"but the catalog says {spec.category.value!r} — the "
                    f"environment drifted since recording"
                )
            # Live load generators build players with seed=0; the
            # behaviour registry reproduces them from two strings.
            player = make_player(
                arrival.player, spec.category, arrival.behaviour, seed=0
            )
            self.requests.append(GameRequest(
                spec=spec,
                script=arrival.script or None,
                player=player,
                arrival=arrival.time,
                request_id=arrival.request_id,
            ))

    def due(self, t0: float, t1: float) -> List[GameRequest]:
        """Requests arriving in ``[t0, t1)`` (PoissonArrivals parity)."""
        return [r for r in self.requests if t0 <= r.arrival < t1]


@dataclass
class ReplayReport:
    """Outcome of one replay, digest check included."""

    scenario: str
    seed: int
    horizon: int
    expected_digest: str
    replayed_digest: str
    matched: bool
    records: int
    result: FleetResult
    divergence: str = ""

    def summary_lines(self) -> List[str]:
        """Human-readable report (one string per output line)."""
        lines = [
            f"scenario:          {self.scenario or '(ad hoc)'}",
            f"seed / horizon:    {self.seed} / {self.horizon}s",
            f"body records:      {self.records}",
            f"expected digest:   {self.expected_digest}",
            f"replayed digest:   {self.replayed_digest}",
            f"digest match:      {'yes' if self.matched else 'NO'}",
        ]
        if self.divergence:
            lines.append(f"first divergence:  {self.divergence}")
        return lines


class TraceReplayer:
    """Drives the engine from a trace and checks the digest contract.

    Parameters
    ----------
    document:
        The parsed trace (``TraceDocument.load(path)``).
    make_cluster:
        Builds a *fresh* fleet matching the recorded configuration —
        nodes and strategies are stateful, so every replay needs its
        own.  :mod:`repro.trace.harness` derives one from the header
        config; pass your own to replay against a custom fleet.
    specs:
        Game name -> :class:`GameSpec` for every game the trace names.
    horizon / detect_interval:
        Overrides; default to the header config (``horizon`` is
        required there when not given here).
    make_provisioner:
        Optional capacity plane, built fresh over the replay's cluster.
    """

    def __init__(
        self,
        document: TraceDocument,
        make_cluster: Callable[[], ClusterScheduler],
        specs: Mapping[str, GameSpec],
        *,
        horizon: Optional[int] = None,
        detect_interval: Optional[int] = None,
        make_provisioner: Optional[
            Callable[[ClusterScheduler], Provisioner]
        ] = None,
    ):
        self.document = document
        self.make_cluster = make_cluster
        self.specs = dict(specs)
        config = document.header.config
        if horizon is None:
            if "horizon" not in config:
                raise TraceFormatError(
                    "trace config carries no 'horizon' and none was "
                    "given; pass horizon= to TraceReplayer"
                )
            horizon = int(config["horizon"])
        self.horizon = int(horizon)
        self.detect_interval = int(
            detect_interval
            if detect_interval is not None
            else config.get("detect_interval", 5)
        )
        self.make_provisioner = make_provisioner

    # ------------------------------------------------------------------
    def fault_plan(self) -> Optional[FaultPlan]:
        """The fault schedule rebuilt from the trace's fault records."""
        if not self.document.faults:
            return None
        seed = int(self.document.header.config.get("fault_seed", 0))
        return FaultPlan(
            seed=seed,
            faults=[
                FaultSpec.from_dict(f.spec)
                for f in sorted(self.document.faults, key=lambda f: f.index)
            ],
        )

    def run(self, *, strict: bool = True) -> ReplayReport:
        """Replay the trace; check the fleet digest against the trailer.

        ``strict=True`` (the default) raises :class:`ReplayDivergence`
        on a mismatch; ``strict=False`` returns the report with
        ``matched=False`` and the first divergent record named.
        """
        header = self.document.header
        cluster = self.make_cluster()
        provisioner = (
            self.make_provisioner(cluster)
            if self.make_provisioner is not None
            else None
        )
        # Re-record the replay so a divergence can name the first
        # timeline record that differs, not just the digests.
        echo = TraceRecorder(
            seed=header.seed, config=header.config, scenario=header.scenario
        )
        result = FleetExperiment(
            cluster,
            [self.specs[name] for name in sorted(self.specs)],
            horizon=self.horizon,
            seed=header.seed,
            detect_interval=self.detect_interval,
            fault_plan=self.fault_plan(),
            provisioner=provisioner,
            arrivals=ReplayedArrivals(self.document, self.specs),
            trace=echo,
        ).run()
        expected = self.document.trailer.fleet_digest
        replayed = result.telemetry_digest
        matched = expected == replayed
        divergence = ""
        if not matched:
            divergence = _first_divergence(self.document, echo.document)
        report = ReplayReport(
            scenario=header.scenario,
            seed=header.seed,
            horizon=self.horizon,
            expected_digest=expected,
            replayed_digest=replayed,
            matched=matched,
            records=self.document.trailer.records,
            result=result,
            divergence=divergence,
        )
        if strict and not matched:
            raise ReplayDivergence(
                f"replayed fleet digest {replayed[:16]}… does not match "
                f"the recorded digest {expected[:16]}…"
                + (f"; first divergent record: {divergence}" if divergence
                   else "")
            )
        return report


def _first_divergence(
    recorded: TraceDocument, replayed: TraceDocument
) -> str:
    """Name the first body line where the two timelines part ways."""
    a, b = recorded.body_lines(), replayed.body_lines()
    for i, (line_a, line_b) in enumerate(zip(a, b)):
        if line_a != line_b:
            return f"record {i}: recorded {line_a} vs replayed {line_b}"
    if len(a) != len(b):
        longer, tag = (a, "recorded") if len(a) > len(b) else (b, "replayed")
        return (
            f"record {min(len(a), len(b))}: only the {tag} run has "
            f"{longer[min(len(a), len(b))]}"
        )
    return ""
