"""Scripted player behaviours: named, parameterized workload classes.

A :class:`PlayerBehaviour` rescales the category-derived user-influence
knobs of :class:`~repro.games.player.PlayerModel` — stay-duration
spread, order deviation, burst rate/magnitude — into a recognizable
play style.  The shipped registry covers the four classes the corpus
scenarios compose from:

* ``afk`` — parks in scenes for ages, almost never bursts;
* ``grinder`` — long, methodical sessions that never deviate from the
  preferred stage order;
* ``tourist`` — short, erratic visits that skip around;
* ``raider`` — normal-length sessions with heavy synchronized burst
  activity (the raid-night fight storm).

Behaviours are *pure functions* of ``(player_id, category, behaviour)``
— no hidden state — which is what lets a replay rebuild a recorded
player from two strings in an arrival record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.games.category import GameCategory
from repro.games.player import PlayerModel
from repro.util.rng import Seed

__all__ = [
    "PlayerBehaviour",
    "ScriptedPlayer",
    "BEHAVIOURS",
    "register_behaviour",
    "get_behaviour",
    "behaviour_names",
    "make_player",
    "behaviour_of",
]

#: The behaviour every plain :class:`PlayerModel` implicitly has.
ORGANIC = "organic"


@dataclass(frozen=True)
class PlayerBehaviour:
    """Multiplicative overrides on the category baseline knobs.

    A scale of 1.0 leaves the category's value untouched; probabilities
    are clamped back into [0, 1] after scaling.
    """

    name: str
    description: str
    duration_scale: float = 1.0
    deviate_scale: float = 1.0
    burst_rate_scale: float = 1.0
    burst_magnitude_scale: float = 1.0

    def __post_init__(self) -> None:
        for knob in ("duration_scale", "deviate_scale", "burst_rate_scale",
                     "burst_magnitude_scale"):
            value = getattr(self, knob)
            if value < 0:
                raise ValueError(f"{knob} must be >= 0, got {value}")


_BUILTINS: Tuple[PlayerBehaviour, ...] = (
    PlayerBehaviour(
        ORGANIC,
        "category-baseline player (what PoissonArrivals generates)",
    ),
    PlayerBehaviour(
        "afk",
        "idles in scenes for very long stays; near-zero burst activity",
        duration_scale=6.0,
        deviate_scale=0.2,
        burst_rate_scale=0.05,
        burst_magnitude_scale=0.5,
    ),
    PlayerBehaviour(
        "grinder",
        "long, methodical sessions; never deviates from the preferred order",
        duration_scale=1.6,
        deviate_scale=0.0,
    ),
    PlayerBehaviour(
        "tourist",
        "short, erratic visit; skips around and leaves quickly",
        duration_scale=0.4,
        deviate_scale=2.5,
        burst_rate_scale=0.6,
        burst_magnitude_scale=0.8,
    ),
    PlayerBehaviour(
        "raider",
        "normal stays with heavy synchronized burst activity (raid fights)",
        deviate_scale=1.2,
        burst_rate_scale=4.0,
        burst_magnitude_scale=1.8,
    ),
)

#: Name -> behaviour.  Mutated only through :func:`register_behaviour`.
BEHAVIOURS: Dict[str, PlayerBehaviour] = {b.name: b for b in _BUILTINS}


def register_behaviour(behaviour: PlayerBehaviour) -> PlayerBehaviour:
    """Add a custom behaviour to the registry (unique name required)."""
    if behaviour.name in BEHAVIOURS:
        raise ValueError(
            f"behaviour {behaviour.name!r} is already registered; "
            f"known: {', '.join(behaviour_names())}"
        )
    BEHAVIOURS[behaviour.name] = behaviour
    return behaviour


def get_behaviour(name: str) -> PlayerBehaviour:
    """Look a behaviour up by name (KeyError lists the known ones)."""
    try:
        return BEHAVIOURS[name]
    except KeyError:
        raise KeyError(
            f"unknown behaviour {name!r}; known behaviours: "
            f"{', '.join(behaviour_names())}"
        ) from None


def behaviour_names() -> Tuple[str, ...]:
    """Registered behaviour names, sorted."""
    return tuple(sorted(BEHAVIOURS))


class ScriptedPlayer(PlayerModel):
    """A :class:`PlayerModel` with a named behaviour applied.

    Keeps the player's category-seeded preferred orders (same
    ``player_id`` -> same preferences) and rescales the influence knobs
    by the behaviour — a deterministic function of
    ``(player_id, category, behaviour, seed)``.
    """

    def __init__(
        self,
        player_id: str,
        category: GameCategory,
        behaviour: PlayerBehaviour,
        *,
        seed: Seed = 0,
    ):
        super().__init__(player_id, category, seed=seed)
        self.behaviour = behaviour.name
        self.duration_sigma *= behaviour.duration_scale
        self.deviate_probability = min(
            1.0, self.deviate_probability * behaviour.deviate_scale
        )
        self.burst_rate = min(
            1.0, self.burst_rate * behaviour.burst_rate_scale
        )
        self.burst_magnitude *= behaviour.burst_magnitude_scale

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScriptedPlayer({self.player_id!r}, {self.category.value}, "
            f"{self.behaviour!r})"
        )


def make_player(
    player_id: str,
    category: GameCategory,
    behaviour: str = ORGANIC,
    *,
    seed: Seed = 0,
) -> PlayerModel:
    """Build a player for a behaviour name (the replay entry point).

    ``"organic"`` returns a plain :class:`PlayerModel` — byte-identical
    to what the live load generators construct — so replaying an
    unscripted recording reproduces the original players exactly.
    """
    if behaviour == ORGANIC:
        return PlayerModel(player_id, category, seed=seed)
    return ScriptedPlayer(player_id, category, get_behaviour(behaviour),
                          seed=seed)


def behaviour_of(player: PlayerModel) -> str:
    """The behaviour name a player carries (``organic`` when unscripted)."""
    return getattr(player, "behaviour", ORGANIC)
