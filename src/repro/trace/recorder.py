"""The recording half of record/replay.

A :class:`TraceRecorder` rides along a live run behind the nullable
``trace=`` handle (the same pattern as ``obs=``): the experiment feeds
it the arrival stream and the fault schedule up front, the gateway and
the fleet nodes feed it stage records as verdicts land and stages
complete, and :meth:`finalize` seals the document with the run's fleet
telemetry digest — the value every replay must reproduce.

Recording is append-only and allocation-light (one frozen dataclass per
record); the body is sorted once at write time, so the hot path stays
O(1) per event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.trace.events import (
    SCHEMA,
    ArrivalEvent,
    FaultScheduleEvent,
    StageEvent,
    TraceHeader,
)
from repro.trace.format import TraceDocument, config_fingerprint
from repro.trace.players import behaviour_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from pathlib import Path

    from repro.faults.plan import FaultPlan
    from repro.workloads.requests import GameRequest

__all__ = ["TraceRecorder"]


class TraceRecorder:
    """Collects one run's records and seals them into a trace.

    Parameters
    ----------
    seed:
        The experiment's base seed (goes into the header).
    config:
        JSON-serializable run configuration — conventionally a
        :class:`repro.trace.harness.RunConfig` payload.  Its canonical
        fingerprint lands in the header; replays verify it.
    scenario:
        Corpus scenario name, or ``""`` for an ad-hoc recording.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        config: Optional[Dict] = None,
        scenario: str = "",
    ):
        config = dict(config) if config is not None else {}
        self.header = TraceHeader(
            schema=SCHEMA,
            scenario=str(scenario),
            seed=int(seed),
            config=config,
            fingerprint=config_fingerprint(config),
            meta={"numpy": np.__version__},
        )
        self._doc = TraceDocument(header=self.header)
        self._sealed: Optional[TraceDocument] = None

    # ------------------------------------------------------------------
    # Recording hooks (called by the experiment / gateway / nodes)
    # ------------------------------------------------------------------
    def record_arrival(self, request: "GameRequest") -> None:
        """One gateway arrival (the experiment records all up front)."""
        self._doc.arrivals.append(ArrivalEvent(
            time=float(request.arrival),
            request_id=int(request.request_id),
            game=request.spec.name,
            script=request.script or "",
            player=request.player.player_id,
            behaviour=behaviour_of(request.player),
            category=request.spec.category.value,
        ))

    def record_stage(
        self,
        time: float,
        session: str,
        stage: str,
        *,
        start: float,
        end: float,
        node: str = "",
    ) -> None:
        """One timeline step: a gateway verdict or a stage completion."""
        self._doc.stages.append(StageEvent(
            time=float(time),
            session=str(session),
            stage=str(stage),
            start=float(start),
            end=float(end),
            node=str(node),
        ))

    def record_verdict(
        self, time: float, request_id: int, verdict: str, node: str = ""
    ) -> None:
        """Convenience: a gateway verdict as an instant stage record."""
        self.record_stage(
            time, f"r{request_id}", verdict, start=float(time),
            end=float(time), node=node,
        )

    def record_plan(self, plan: "FaultPlan") -> None:
        """The fault schedule, one record per fault in replay order."""
        for index, spec in enumerate(plan.scheduled()):
            self._doc.faults.append(FaultScheduleEvent(
                time=float(spec.time),
                index=index,
                spec=spec.to_dict(),
            ))

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def finalize(self, fleet_digest: str) -> TraceDocument:
        """Seal the trace with the run's fleet telemetry digest."""
        self._sealed = self._doc.sealed(str(fleet_digest))
        return self._sealed

    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` has sealed the document."""
        return self._sealed is not None

    @property
    def document(self) -> TraceDocument:
        """The sealed trace (RuntimeError before :meth:`finalize`)."""
        if self._sealed is None:
            raise RuntimeError(
                "trace is not finalized yet — run the experiment first"
            )
        return self._sealed

    def save(self, path: "Path | str"):
        """Write the sealed trace to disk (``*.cgtrace``)."""
        return self.document.save(path)

    def stats(self) -> Dict[str, int]:
        """Record counts (for benchmark artifacts)."""
        return {
            "arrivals": len(self._doc.arrivals),
            "stages": len(self._doc.stages),
            "faults": len(self._doc.faults),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"TraceRecorder(arrivals={s['arrivals']}, stages={s['stages']}, "
            f"faults={s['faults']}, finalized={self.finalized})"
        )
