"""Offline trace generation for profiling and predictor training.

The paper collects training data in two ways — cloud-platform telemetry
and repeated laboratory runs (§V-D2).  Both reduce to the same artifact:
a resource time series with (for evaluation only) ground-truth stage
annotations.  :func:`generate_trace` runs one session to completion under
unconstrained supply; :func:`generate_corpus` produces a population of
playthroughs across players and scripts, honouring the per-category
sampling rules of §IV-B1 (e.g. many sessions of the *same* player for
MOBILE games).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.games.player import PlayerModel
from repro.games.session import GameSession
from repro.games.spec import GameSpec
from repro.platform_.profile import PlatformProfile, REFERENCE_PLATFORM
from repro.platform_.resources import DIMENSIONS, ResourceVector
from repro.util.rng import Seed, as_rng, derive_seed
from repro.util.timeseries import ResourceSeries

__all__ = ["GroundTruth", "TraceBundle", "generate_trace", "generate_corpus"]

#: The paper's frame length: resource behaviour is summarised per 5 s.
FRAME_SECONDS = 5


@dataclass(frozen=True)
class GroundTruth:
    """Per-second annotations of a generated trace (evaluation only).

    Attributes
    ----------
    stage_names:
        Stage name active in each second.
    stage_types:
        The cluster-combination type of that stage.
    clusters:
        The active frame cluster in each second.
    loading_mask:
        True for seconds spent in a loading stage.
    """

    stage_names: Tuple[str, ...]
    stage_types: Tuple[FrozenSet[str], ...]
    clusters: Tuple[str, ...]
    loading_mask: np.ndarray

    def __len__(self) -> int:
        return len(self.stage_names)

    def stage_boundaries(self) -> List[Tuple[str, int, int]]:
        """Contiguous (stage_name, start, end) runs."""
        out: List[Tuple[str, int, int]] = []
        if not self.stage_names:
            return out
        start = 0
        for i in range(1, len(self.stage_names) + 1):
            if i == len(self.stage_names) or self.stage_names[i] != self.stage_names[start]:
                out.append((self.stage_names[start], start, i))
                start = i
        return out


@dataclass(frozen=True)
class TraceBundle:
    """One playthrough: 1-second telemetry plus ground truth.

    Attributes
    ----------
    game:
        Game name.
    script:
        Script name played.
    player_id:
        Player who played it.
    series:
        1-second demand telemetry (columns = resource dimensions).
    truth:
        Ground-truth annotations aligned with ``series``.
    """

    game: str
    script: str
    player_id: str
    series: ResourceSeries
    truth: GroundTruth

    def frames(self, *, frame_seconds: int = FRAME_SECONDS) -> ResourceSeries:
        """The paper's 5-second frame aggregation of the telemetry."""
        return self.series.resample(float(frame_seconds), reduce="mean")

    def frame_truth_stage_types(
        self, *, frame_seconds: int = FRAME_SECONDS
    ) -> Tuple[FrozenSet[str], ...]:
        """Majority ground-truth stage type per complete frame."""
        n_frames = len(self.series) // frame_seconds
        out: List[FrozenSet[str]] = []
        for f in range(n_frames):
            window = self.truth.stage_types[f * frame_seconds : (f + 1) * frame_seconds]
            # Majority vote; ties go to the last (most recent) type.
            counts: dict[FrozenSet[str], int] = {}
            for t in window:
                counts[t] = counts.get(t, 0) + 1
            out.append(max(counts, key=lambda t: (counts[t], window[::-1].index(t) * -1)))
        return tuple(out)


def generate_trace(
    spec: GameSpec,
    script: Optional[str] = None,
    *,
    player: Optional[PlayerModel] = None,
    seed: Seed = None,
    platform: PlatformProfile = REFERENCE_PLATFORM,
    max_seconds: int = 4 * 3600,
) -> TraceBundle:
    """Play one session to completion under unconstrained supply.

    Parameters
    ----------
    spec, script, player, seed, platform:
        Session parameters (see :class:`~repro.games.session.GameSession`).
    max_seconds:
        Safety bound on trace length.

    Returns
    -------
    TraceBundle
        Telemetry plus ground-truth annotations.
    """
    rng = as_rng(seed)
    if player is None:
        player = PlayerModel(f"profiling-{spec.name}", spec.category, seed=0)
    session = GameSession(
        spec, script, player=player, seed=rng, platform=platform
    )
    unconstrained = ResourceVector.full(100.0)

    demands: List[np.ndarray] = []
    stage_names: List[str] = []
    stage_types: List[FrozenSet[str]] = []
    clusters: List[str] = []
    loading: List[bool] = []
    while not session.finished:
        tick = session.advance(unconstrained)
        demands.append(tick.demand.array)
        stage_names.append(tick.stage_name)
        stage_types.append(tick.stage_type)
        clusters.append(tick.cluster)
        loading.append(tick.is_loading)
        if len(demands) >= max_seconds:
            break

    series = ResourceSeries(np.stack(demands), DIMENSIONS, period=1.0)
    truth = GroundTruth(
        stage_names=tuple(stage_names),
        stage_types=tuple(stage_types),
        clusters=tuple(clusters),
        loading_mask=np.asarray(loading, dtype=bool),
    )
    return TraceBundle(
        game=spec.name,
        script=session.script.name,
        player_id=player.player_id,
        series=series,
        truth=truth,
    )


def generate_corpus(
    spec: GameSpec,
    *,
    n_players: int = 8,
    sessions_per_player: int = 4,
    seed: Seed = 0,
    platform: PlatformProfile = REFERENCE_PLATFORM,
    scripts: Optional[Sequence[str]] = None,
    group_size: int = 3,
    favorite_probability: float = 0.9,
    group_script_correlation: float = 0.97,
) -> List[TraceBundle]:
    """Generate a population of playthroughs for training/evaluation.

    Script selection mirrors how real players of each Fig-7 quadrant
    behave — the very structure the §IV-B1 dataset policies exploit:

    * **WEB** — each session picks a script uniformly (casual players).
    * **MOBILE** — a player mostly replays their favorite task order
      (``favorite_probability``), the rest uniform: per-player models
      pay off.
    * **CONSOLE** — a player progresses through the campaign: session
      ``s`` plays script ``s mod n_scripts`` in order, so campaign
      concatenation carries signal.
    * **MMO** — players log in as parties of ``group_size`` (consecutive
      sessions within a round); a party usually queues for the same mode
      (``group_script_correlation``): co-login grouping carries signal.

    Sessions are ordered round by round (all players' session 0, then
    session 1, …) so consecutive bundles are the co-login groups the MMO
    dataset policy expects.
    """
    if n_players < 1 or sessions_per_player < 1:
        raise ValueError("n_players and sessions_per_player must be >= 1")
    base = seed if isinstance(seed, int) or seed is None else 0
    script_names = tuple(scripts) if scripts is not None else tuple(
        s.name for s in spec.scripts
    )
    for name in script_names:
        spec.script(name)  # validate
    n_scripts = len(script_names)

    players = [
        PlayerModel(f"{spec.name}-player-{p}", spec.category, seed=0)
        for p in range(n_players)
    ]
    favorites = [
        int(as_rng(derive_seed(0, "favorite", spec.name, pl.player_id)).integers(n_scripts))
        for pl in players
    ]

    bundles: List[TraceBundle] = []
    for s in range(sessions_per_player):
        group_scripts: dict[int, int] = {}
        for p in range(n_players):
            run_rng = as_rng(derive_seed(base, spec.name, f"p{p}", f"s{s}"))
            cat = spec.category.value
            if cat == "web":
                idx = int(run_rng.integers(n_scripts))
            elif cat == "mobile":
                if run_rng.random() < favorite_probability:
                    idx = favorites[p]
                else:
                    idx = int(run_rng.integers(n_scripts))
            elif cat == "console":
                idx = s % n_scripts
            else:  # mmo: parties queue for the same mode
                g = p // group_size
                if g not in group_scripts:
                    lead_rng = as_rng(derive_seed(base, spec.name, f"g{g}", f"s{s}"))
                    group_scripts[g] = int(lead_rng.integers(n_scripts))
                if run_rng.random() < group_script_correlation:
                    idx = group_scripts[g]
                else:
                    idx = int(run_rng.integers(n_scripts))
            bundles.append(
                generate_trace(
                    spec,
                    script_names[idx],
                    player=players[p],
                    seed=run_rng,
                    platform=platform,
                )
            )
    return bundles
