"""Game categories — the paper's Fig-7 quadrants.

Two axes classify a game: *stage-type complexity* (horizontal) and
*user influence* (vertical).  The quadrant determines how the stage
predictor assembles its training set (§IV-B1):

=============  ===============  ===========  ==========================
category       user influence   complexity   training-set policy
=============  ===============  ===========  ==========================
WEB            low              low          pool every player's records
MOBILE         high             low          one model per player
CONSOLE        low              high         concatenate a player's whole
                                             campaign into one sequence
MMO            high             high         group players who are logged
                                             in together into one sample
=============  ===============  ===========  ==========================
"""

from __future__ import annotations

from enum import Enum

__all__ = ["GameCategory"]


class GameCategory(Enum):
    """The four Fig-7 quadrants."""

    WEB = "web"
    MOBILE = "mobile"
    CONSOLE = "console"
    MMO = "mmo"

    @property
    def user_influence(self) -> str:
        """``"low"`` or ``"high"`` — the vertical Fig-7 axis."""
        return "high" if self in (GameCategory.MOBILE, GameCategory.MMO) else "low"

    @property
    def stage_complexity(self) -> str:
        """``"low"`` or ``"high"`` — the horizontal Fig-7 axis."""
        return "high" if self in (GameCategory.CONSOLE, GameCategory.MMO) else "low"

    @property
    def dataset_policy(self) -> str:
        """Name of the §IV-B1 training-set construction policy."""
        return {
            GameCategory.WEB: "pool-all-players",
            GameCategory.MOBILE: "per-player",
            GameCategory.CONSOLE: "concatenate-campaign",
            GameCategory.MMO: "co-login-groups",
        }[self]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GameCategory.{self.name}"
