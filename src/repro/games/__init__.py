"""Cloud-game workload substrate.

The paper runs five real titles (DOTA2, CSGO, Genshin Impact, Devil May
Cry, Contra) on a physical testbed.  CoCG never inspects the games
themselves — its input is the multi-dimensional resource time series plus
the stage structure induced by scene loading.  This package provides a
generative model with the same statistical structure:

* :mod:`~repro.games.spec` — frame clusters, stages (loading/execution),
  scripts, and whole-game specifications;
* :mod:`~repro.games.category` — the Fig-7 game-category quadrants;
* :mod:`~repro.games.player` — the user-influence model (stay-duration
  variance, task-order permutation, transient bursts);
* :mod:`~repro.games.session` — the runtime stage machine producing
  1-second demand samples, with allocation-dependent loading progress;
* :mod:`~repro.games.catalog` — the five paper games with the Table-I
  scripts;
* :mod:`~repro.games.tracegen` — offline trace/corpus generation for
  profiling and predictor training.
"""

from repro.games.spec import (
    ClusterSpec,
    GameSpec,
    ScriptSpec,
    StageKind,
    StageSpec,
)
from repro.games.category import GameCategory
from repro.games.player import PlayerModel
from repro.games.session import GameSession, SessionTick
from repro.games.catalog import (
    build_catalog,
    contra,
    csgo,
    devil_may_cry,
    dota2,
    genshin_impact,
)
from repro.games.tracegen import GroundTruth, TraceBundle, generate_trace, generate_corpus

__all__ = [
    "ClusterSpec",
    "StageSpec",
    "StageKind",
    "ScriptSpec",
    "GameSpec",
    "GameCategory",
    "PlayerModel",
    "GameSession",
    "SessionTick",
    "build_catalog",
    "dota2",
    "csgo",
    "genshin_impact",
    "devil_may_cry",
    "contra",
    "generate_trace",
    "generate_corpus",
    "TraceBundle",
    "GroundTruth",
]
