"""The user-influence model (paper §II-B "User influence").

A player perturbs a scripted playthrough in three ways:

1. **Stay duration** — "players can choose to stay in a certain scene for
   a long time … or quickly skip" — modelled as a lognormal multiplier on
   each execution stage's base duration.
2. **Stage order** — the permutable slots of a script are reordered.
   Each player has a *preferred* order (stable across their sessions, the
   property the per-player MOBILE dataset policy exploits) and deviates
   from it with a category-dependent probability.
3. **Bursts** — short transient demand spikes (an unexpected fight, a
   particle storm) that are *not* stage changes; they are what trips the
   misjudgment-and-callback behaviour in the paper's Figs 9/10.

The magnitude of all three is derived from the game category's
user-influence axis so that WEB games are near-deterministic and
MOBILE/MMO games are strongly player-driven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.games.category import GameCategory
from repro.platform_.resources import ResourceVector
from repro.util.rng import Seed, as_rng, derive_seed

__all__ = ["PlayerModel", "BurstEvent"]

# Per-category knobs: (duration lognormal sigma, P(deviate from preferred
# order), burst rate per second, burst magnitude in percent).
_CATEGORY_KNOBS = {
    GameCategory.WEB: (0.05, 0.02, 0.0005, 3.0),
    GameCategory.MOBILE: (0.25, 0.18, 0.004, 7.0),
    GameCategory.CONSOLE: (0.15, 0.08, 0.002, 5.0),
    GameCategory.MMO: (0.30, 0.30, 0.006, 8.0),
}


@dataclass(frozen=True)
class BurstEvent:
    """A transient demand spike: additive demand for a short interval."""

    extra: ResourceVector
    remaining: int

    def tick(self) -> "BurstEvent":
        """One second elapsed."""
        return BurstEvent(self.extra, self.remaining - 1)

    @property
    def active(self) -> bool:
        """Whether the burst is still running."""
        return self.remaining > 0


class PlayerModel:
    """One synthetic player.

    Parameters
    ----------
    player_id:
        Stable identifier; together with the game category it seeds the
        player's preferences, so the same player behaves consistently
        across sessions (the property the MOBILE per-player dataset
        policy relies on).
    category:
        The hosted game's category; sets the influence magnitudes.
    seed:
        Base seed the player's streams are derived from.
    """

    def __init__(self, player_id: str, category: GameCategory, *, seed: Seed = 0):
        self.player_id = str(player_id)
        self.category = category
        sigma, deviate_p, burst_rate, burst_mag = _CATEGORY_KNOBS[category]
        self.duration_sigma = sigma
        self.deviate_probability = deviate_p
        self.burst_rate = burst_rate
        self.burst_magnitude = burst_mag
        base = seed if isinstance(seed, int) or seed is None else 0
        self._pref_rng = as_rng(derive_seed(base, "pref", player_id, category.value))

    # ------------------------------------------------------------------
    def preferred_order(self, group: Sequence[int]) -> Tuple[int, ...]:
        """The player's stable preferred permutation of a slot group.

        Deterministic per (player, group): calling twice returns the same
        order.
        """
        group = tuple(group)
        # Derive a dedicated generator per group so groups are independent
        # but stable.
        g = as_rng(
            derive_seed(
                0, "group", self.player_id, self.category.value, repr(group)
            )
        )
        perm = g.permutation(len(group))
        return tuple(group[i] for i in perm)

    def realized_order(
        self, group: Sequence[int], rng: np.random.Generator
    ) -> Tuple[int, ...]:
        """Order actually played this session.

        With probability ``1 - deviate_probability`` it is the player's
        preferred order; otherwise a fresh uniform permutation (a mood).
        """
        group = tuple(group)
        if rng.random() >= self.deviate_probability:
            return self.preferred_order(group)
        perm = rng.permutation(len(group))
        return tuple(group[i] for i in perm)

    def duration_multiplier(
        self, duration_scale: float, rng: np.random.Generator
    ) -> float:
        """Lognormal stay-duration multiplier for one execution stage."""
        sigma = self.duration_sigma * max(duration_scale, 0.0)
        if sigma == 0.0:
            return 1.0
        return float(rng.lognormal(mean=-0.5 * sigma**2, sigma=sigma))

    def maybe_burst(self, rng: np.random.Generator) -> BurstEvent | None:
        """Possibly start a transient demand burst this second."""
        if rng.random() >= self.burst_rate:
            return None
        mag = self.burst_magnitude * (0.6 + 0.8 * rng.random())
        extra = ResourceVector(
            cpu=mag * (0.5 + 0.5 * rng.random()),
            gpu=mag,
            gpu_mem=0.3 * mag,
            ram=0.1 * mag,
        )
        duration = int(rng.integers(3, 9))
        return BurstEvent(extra, duration)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlayerModel({self.player_id!r}, {self.category.value})"
