"""Game specifications: frame clusters, stages, scripts.

The paper's frame-grained view of a cloud game (§IV-A):

* a **frame cluster** is a region of resource space the game dwells in
  for many 5-second frames (walking the open world, fighting a boss,
  sitting in a loading screen …);
* a **stage** is a maximal timeline segment delimited by loading, and its
  **type** is the *combination of clusters* that appear inside it — one
  cluster for simple scenes, several for complex ones (the "three bosses
  in any order" secret realm);
* a **script** is a reproducible playthrough: the authored stage order
  plus the slots a player may permute (user influence).

A :class:`GameSpec` bundles clusters, stages and scripts with the game's
category, frame lock, and length class, and validates that they are
mutually consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Mapping, Optional, Tuple

import numpy as np

from repro.games.category import GameCategory
from repro.platform_.resources import ResourceVector
from repro.util.validation import check_positive

__all__ = ["StageKind", "ClusterSpec", "StageSpec", "ScriptSpec", "GameSpec"]


class StageKind(Enum):
    """Loading stages delimit execution stages (paper Obs 2)."""

    LOADING = "loading"
    EXECUTION = "execution"


@dataclass(frozen=True)
class ClusterSpec:
    """A frame cluster: a stationary resource-demand distribution.

    Parameters
    ----------
    name:
        Cluster identifier, unique within a game.
    mean:
        Mean demand vector (percent per dimension).
    std:
        Per-dimension noise scale of 1-second samples.
    nominal_fps:
        FPS the game reaches in this cluster when demand is fully
        supplied (before any frame lock).
    """

    name: str
    mean: ResourceVector
    std: ResourceVector
    nominal_fps: float = 90.0

    def __post_init__(self) -> None:
        check_positive("nominal_fps", self.nominal_fps)
        if not self.mean.is_nonnegative() or not self.std.is_nonnegative():
            raise ValueError(f"cluster {self.name!r}: mean/std must be non-negative")
        if not self.mean.fits_within(ResourceVector.full(100.0)):
            raise ValueError(
                f"cluster {self.name!r}: mean demand {self.mean} exceeds 100 %"
            )


@dataclass(frozen=True)
class StageSpec:
    """One stage the game can be in.

    Parameters
    ----------
    name:
        Stage identifier, unique within a game.
    kind:
        Loading or execution.
    clusters:
        Names of the frame clusters composing the stage.  Loading stages
        must reference exactly one cluster; execution stages may mix
        several (the stage *type* is their set).
    base_duration:
        Execution: nominal play seconds before user scaling.  Loading:
        the work amount — seconds needed at full resource supply.
    cluster_dwell:
        Mean seconds spent in one cluster before hopping to another
        (multi-cluster stages only).
    duration_scale:
        How strongly user influence stretches/shrinks this stage
        (lognormal sigma multiplier applied by the player model; 0 pins
        the duration).
    """

    name: str
    kind: StageKind
    clusters: Tuple[str, ...]
    base_duration: float
    cluster_dwell: float = 20.0
    duration_scale: float = 1.0

    def __post_init__(self) -> None:
        check_positive("base_duration", self.base_duration)
        check_positive("cluster_dwell", self.cluster_dwell)
        if self.duration_scale < 0:
            raise ValueError(f"duration_scale must be >= 0, got {self.duration_scale}")
        if not self.clusters:
            raise ValueError(f"stage {self.name!r} must reference >= 1 cluster")
        if self.kind is StageKind.LOADING and len(self.clusters) != 1:
            raise ValueError(
                f"loading stage {self.name!r} must reference exactly one cluster"
            )
        if len(set(self.clusters)) != len(self.clusters):
            raise ValueError(f"stage {self.name!r} repeats a cluster")

    @property
    def stage_type(self) -> FrozenSet[str]:
        """The cluster combination defining this stage's *type*."""
        return frozenset(self.clusters)


@dataclass(frozen=True)
class ScriptSpec:
    """A reproducible playthrough (paper Table I rows).

    Parameters
    ----------
    name:
        Script identifier, unique within a game.
    description:
        Table-I style description.
    stages:
        Stage names in authored order, loading stages included
        explicitly.
    permutable_groups:
        Tuples of indices into ``stages`` whose *contents* a player may
        reorder among themselves — the paper's user influence on stage
        order (Genshin task order, the three-boss realm).  Indices must
        reference execution stages.
    """

    name: str
    description: str
    stages: Tuple[str, ...]
    permutable_groups: Tuple[Tuple[int, ...], ...] = ()

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError(f"script {self.name!r} has no stages")
        seen: set[int] = set()
        for group in self.permutable_groups:
            if len(group) < 2:
                raise ValueError(
                    f"script {self.name!r}: permutable group {group} needs >= 2 slots"
                )
            for idx in group:
                if not (0 <= idx < len(self.stages)):
                    raise ValueError(
                        f"script {self.name!r}: group index {idx} out of range"
                    )
                if idx in seen:
                    raise ValueError(
                        f"script {self.name!r}: index {idx} in multiple groups"
                    )
                seen.add(idx)


@dataclass(frozen=True)
class GameSpec:
    """A complete game definition.

    Parameters
    ----------
    name:
        Game title.
    category:
        Fig-7 quadrant, which selects the predictor's dataset policy.
    clusters:
        ``{name: ClusterSpec}`` for every frame cluster.
    stages:
        ``{name: StageSpec}`` for every stage.
    scripts:
        The Table-I scripts.
    frame_lock:
        Manufacturer FPS cap (Genshin/DMC lock 30/60) or ``None``.
    long_term:
        The regulator's coarse game-length class (§IV-C2 "distinguish
        game length"): ``True`` for long matches/campaigns, ``False``
        for short sessions that fit between peaks.
    description:
        Free-form notes.
    """

    name: str
    category: GameCategory
    clusters: Mapping[str, ClusterSpec]
    stages: Mapping[str, StageSpec]
    scripts: Tuple[ScriptSpec, ...]
    frame_lock: Optional[float] = None
    long_term: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError(f"game {self.name!r} has no clusters")
        if not self.scripts:
            raise ValueError(f"game {self.name!r} has no scripts")
        for cname, cluster in self.clusters.items():
            if cluster.name != cname:
                raise ValueError(
                    f"cluster key {cname!r} != cluster.name {cluster.name!r}"
                )
        for sname, stage in self.stages.items():
            if stage.name != sname:
                raise ValueError(f"stage key {sname!r} != stage.name {stage.name!r}")
            for cname in stage.clusters:
                if cname not in self.clusters:
                    raise ValueError(
                        f"stage {sname!r} references unknown cluster {cname!r}"
                    )
        names = [s.name for s in self.scripts]
        if len(set(names)) != len(names):
            raise ValueError(f"game {self.name!r} has duplicate script names")
        for script in self.scripts:
            for stage_name in script.stages:
                if stage_name not in self.stages:
                    raise ValueError(
                        f"script {script.name!r} references unknown stage "
                        f"{stage_name!r}"
                    )
            for group in script.permutable_groups:
                for idx in group:
                    if self.stages[script.stages[idx]].kind is not StageKind.EXECUTION:
                        raise ValueError(
                            f"script {script.name!r}: permutable slot {idx} is not "
                            f"an execution stage"
                        )
        if self.frame_lock is not None:
            check_positive("frame_lock", self.frame_lock)
        if not any(
            stage.kind is StageKind.LOADING for stage in self.stages.values()
        ):
            raise ValueError(
                f"game {self.name!r} needs at least one loading stage (paper Obs 2)"
            )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def script(self, name: str) -> ScriptSpec:
        """Find a script by name."""
        for script in self.scripts:
            if script.name == name:
                return script
        raise KeyError(f"game {self.name!r} has no script {name!r}")

    def loading_stage_names(self) -> Tuple[str, ...]:
        """Names of the loading stages."""
        return tuple(
            name
            for name, stage in self.stages.items()
            if stage.kind is StageKind.LOADING
        )

    def loading_cluster_names(self) -> FrozenSet[str]:
        """Clusters referenced by any loading stage."""
        out: set[str] = set()
        for stage in self.stages.values():
            if stage.kind is StageKind.LOADING:
                out.update(stage.clusters)
        return frozenset(out)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def cluster_mean_matrix(self) -> Tuple[Tuple[str, ...], np.ndarray]:
        """Cluster names plus their mean-demand matrix ``(K, 4)``."""
        names = tuple(sorted(self.clusters))
        means = np.stack([self.clusters[n].mean.array for n in names])
        return names, means

    def stage_peak_demand(self, stage_name: str, *, sigmas: float = 2.0) -> ResourceVector:
        """Conservative per-stage peak: max over clusters of mean + kσ."""
        stage = self.stages[stage_name]
        peak = ResourceVector.zeros()
        for cname in stage.clusters:
            cluster = self.clusters[cname]
            peak = peak.maximum(cluster.mean + cluster.std * sigmas)
        return peak.clip(0.0, 100.0)

    def peak_demand(self, *, sigmas: float = 2.0) -> ResourceVector:
        """Whole-game peak over every stage (what VBP/GAugur profile)."""
        peak = ResourceVector.zeros()
        for name in self.stages:
            peak = peak.maximum(self.stage_peak_demand(name, sigmas=sigmas))
        return peak

    def stage_type_count(self, script_name: str) -> int:
        """Number of distinct stage types in a script (Table I column)."""
        script = self.script(script_name)
        return len({self.stages[s].stage_type for s in script.stages})

    def expected_script_duration(self, script_name: str) -> float:
        """Nominal script length in seconds (base durations, no user scaling)."""
        script = self.script(script_name)
        return float(sum(self.stages[s].base_duration for s in script.stages))

    def expected_duration(self) -> float:
        """Mean nominal duration over all scripts (Eq-2's ``S_i``)."""
        return float(
            np.mean([self.expected_script_duration(s.name) for s in self.scripts])
        )
