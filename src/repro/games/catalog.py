"""The five evaluated games (paper §V-A, Table I).

Each factory builds a :class:`~repro.games.spec.GameSpec` whose
statistical structure matches the paper's measurements:

=============  ========  =======  ====  ========================  =========
game           category  lock     K     scripts (Table I)         length
=============  ========  =======  ====  ========================  =========
DOTA2          MMO       none     5     match / arcade            long
CSGO           MMO       none     4     match / training map      long
Genshin        MOBILE    60 fps   4     3 task orders             short
Devil May Cry  CONSOLE   60 fps   6     levels 1 / 2 / 3          long
Contra         WEB       none     2     1 / 2 / 3 levels          short
=============  ========  =======  ====  ========================  =========

``K`` is the frame-cluster count the paper selects at the Fig-14 elbow
(Contra 2, CSGO 4, Genshin 4, DOTA2 5, Devil May Cry 6), and the per-
script stage-type counts reproduce the Table-I column.  Resource means
are calibrated so the co-location regimes of Fig 11 emerge: DOTA2+DMC
peak sums exceed any static-reservation policy's budget, CSGO+Genshin
pairs a long game with a short one, Genshin+Contra fits everywhere.

Loading clusters follow Observation 3: CPU-heavy (pre-computation of the
next scene) and GPU-light (a black screen needs no rendering).
"""

from __future__ import annotations

from typing import Dict

from repro.games.category import GameCategory
from repro.games.spec import ClusterSpec, GameSpec, ScriptSpec, StageKind, StageSpec
from repro.platform_.resources import ResourceVector

__all__ = [
    "dota2",
    "csgo",
    "genshin_impact",
    "devil_may_cry",
    "contra",
    "build_catalog",
]


def _c(name, cpu, gpu, gpu_mem, ram, std, fps) -> ClusterSpec:
    """Shorthand cluster constructor with a scalar-per-dim std tuple."""
    return ClusterSpec(
        name=name,
        mean=ResourceVector(cpu=cpu, gpu=gpu, gpu_mem=gpu_mem, ram=ram),
        std=ResourceVector(cpu=std[0], gpu=std[1], gpu_mem=std[2], ram=std[3]),
        nominal_fps=fps,
    )


def dota2() -> GameSpec:
    """DOTA2: 3-D MOBA — complex stages, significant user influence (MMO).

    Five clusters (Fig 14 elbow): loading, hero pick, laning, teamfight,
    arcade.  The ranked match mixes laning and teamfights inside one
    stage — a multi-cluster stage type (§IV-A1, first situation).
    """
    clusters = {
        "load": _c("load", 65, 6, 28, 26, (2.5, 1.2, 1.2, 1), 90),
        "pick": _c("pick", 22, 12, 30, 28, (1.5, 1.2, 1, 1), 140),
        "arcade": _c("arcade", 34, 21, 32, 29, (1.5, 1.2, 1, 1), 120),
        "lane": _c("lane", 47, 31, 34, 30, (1.5, 1.2, 1, 1), 120),
        "fight": _c("fight", 61, 42, 36, 31, (1.8, 1.2, 1, 1), 110),
    }
    stages = {
        "boot": StageSpec("boot", StageKind.LOADING, ("load",), 12.0),
        "pick": StageSpec("pick", StageKind.EXECUTION, ("pick",), 90.0, duration_scale=0.3),
        "match": StageSpec(
            "match", StageKind.EXECUTION, ("lane", "fight"), 900.0, cluster_dwell=35.0
        ),
        "arcade": StageSpec("arcade", StageKind.EXECUTION, ("arcade",), 700.0),
        "mapload": StageSpec("mapload", StageKind.LOADING, ("load",), 9.0),
        "exit": StageSpec("exit", StageKind.LOADING, ("load",), 6.0),
    }
    scripts = (
        ScriptSpec(
            "match-9-bots",
            "conducting a match with 9 bots",
            ("boot", "pick", "mapload", "match", "exit"),
        ),
        ScriptSpec(
            "arcade-tower-defense",
            "playing a tower defense game in the arcade",
            ("boot", "pick", "mapload", "arcade", "exit"),
        ),
    )
    return GameSpec(
        name="dota2",
        category=GameCategory.MMO,
        clusters=clusters,
        stages=stages,
        scripts=scripts,
        frame_lock=None,
        long_term=True,
        description="3D Multiplayer Online Battle Arena",
    )


def csgo() -> GameSpec:
    """CSGO: 3-D FPS — complex stages, significant user influence (MMO).

    Four clusters (Fig 14): loading, menu, movement, firefight.  Every
    mode change passes through a load screen (map load, the round-reset
    freeze before going live), so stages are loading-separated: the match
    script shows four stage types (menu, on-map warmup, the mixed
    movement+firefight rounds, loading) and the training-map script three
    (Table I).  Movement-only play draws the same resources whether the
    player warms up or trains — the §IV-A1 "one cluster, multiple scenes"
    situation.
    """
    clusters = {
        "load": _c("load", 58, 5, 22, 22, (3, 1, 1, 1), 100),
        "menu": _c("menu", 18, 14, 24, 23, (1.5, 1.5, 1, 0.5), 200),
        "move": _c("move", 36, 29, 27, 25, (2, 1.5, 1, 1), 160),
        "combat": _c("combat", 52, 42, 30, 26, (2.5, 1.5, 1, 1), 140),
    }
    stages = {
        "boot": StageSpec("boot", StageKind.LOADING, ("load",), 10.0),
        "menu": StageSpec(
            "menu", StageKind.EXECUTION, ("menu",), 35.0, duration_scale=0.5
        ),
        "mapload": StageSpec("mapload", StageKind.LOADING, ("load",), 8.0),
        "warm": StageSpec("warm", StageKind.EXECUTION, ("move",), 50.0, duration_scale=0.4),
        "live": StageSpec("live", StageKind.LOADING, ("load",), 6.0),
        "match": StageSpec(
            "match", StageKind.EXECUTION, ("move", "combat"), 780.0, cluster_dwell=30.0
        ),
        "training": StageSpec("training", StageKind.EXECUTION, ("move",), 420.0),
        "exit": StageSpec("exit", StageKind.LOADING, ("load",), 5.0),
    }
    scripts = (
        ScriptSpec(
            "match-9-bots",
            "conducting a match with 9 bots",
            ("boot", "menu", "mapload", "warm", "live", "match", "exit"),
        ),
        ScriptSpec(
            "training-map",
            "moving in the training map without shooting",
            ("boot", "menu", "mapload", "training", "exit"),
        ),
    )
    return GameSpec(
        name="csgo",
        category=GameCategory.MMO,
        clusters=clusters,
        stages=stages,
        scripts=scripts,
        frame_lock=None,
        long_term=True,
        description="3D First Person Shooting game",
    )


def genshin_impact() -> GameSpec:
    """Genshin Impact: open-world mobile game — high user influence.

    Four clusters (Fig 14): loading, low (menu/idle traversal), mid
    (flying/exploring), high (battle).  Five stage types (Table I): the
    open-world run mixes low and mid clusters, giving {low}, {low,mid},
    {mid}, {high} and {load}.  The three scripts complete the same three
    tasks in different orders, and the player may reorder them again —
    the user-influence axis that degrades DTC/RF accuracy in Fig 15.

    The manufacturer locks the frame rate at 60 FPS.
    """
    clusters = {
        "load": _c("load", 72, 8, 40, 30, (3, 1.5, 2, 1.5), 60),
        "low": _c("low", 28, 26, 42, 33, (2, 2, 1.5, 1), 70),
        "mid": _c("mid", 38, 50, 48, 35, (2.5, 2.5, 2, 1), 75),
        "high": _c("high", 48, 62, 52, 36, (3, 3, 2, 1), 72),
    }
    stages = {
        "boot": StageSpec("boot", StageKind.LOADING, ("load",), 10.0),
        "menu": StageSpec("menu", StageKind.EXECUTION, ("low",), 25.0, duration_scale=0.6),
        "run": StageSpec(
            "run", StageKind.EXECUTION, ("low", "mid"), 90.0, cluster_dwell=20.0, duration_scale=0.7
        ),
        "battle": StageSpec("battle", StageKind.EXECUTION, ("high",), 70.0),
        "fly": StageSpec("fly", StageKind.EXECUTION, ("mid",), 60.0),
        "inter": StageSpec("inter", StageKind.LOADING, ("load",), 8.0),
        "exit": StageSpec("exit", StageKind.LOADING, ("load",), 5.0),
    }
    # Task slots sit at indices 3, 5, 7; loading separates every task.
    base = ("boot", "menu", "inter", None, "inter", None, "inter", None, "exit")

    def script(name: str, description: str, order: tuple[str, str, str]) -> ScriptSpec:
        """One Genshin task-order script over the shared slot layout."""
        stages_seq = list(base)
        for slot, task in zip((3, 5, 7), order):
            stages_seq[slot] = task
        return ScriptSpec(
            name, description, tuple(stages_seq), permutable_groups=((3, 5, 7),)
        )

    scripts = (
        script("run-battle-fly", "run + battle + fly", ("run", "battle", "fly")),
        script("fly-battle-run", "fly + battle + run", ("fly", "battle", "run")),
        script("battle-run-fly", "battle + run + fly", ("battle", "run", "fly")),
    )
    return GameSpec(
        name="genshin",
        category=GameCategory.MOBILE,
        clusters=clusters,
        stages=stages,
        scripts=scripts,
        frame_lock=60.0,
        long_term=False,
        description="open-world mobile game, 60 FPS lock",
    )


def devil_may_cry() -> GameSpec:
    """Devil May Cry: ARPG console game — complex stages, low influence.

    Six clusters (Fig 14): loading, cutscene, exploration, combat, and
    two boss encounters with distinct resource signatures.  Scripts are
    the first three levels in simple mode with 2 / 4 / 6 stage types
    (Table I); the two bosses of level three may be fought in either
    order (§IV-A1's "defeat the bosses in any order" situation).

    The manufacturer locks the frame rate at 60 FPS.
    """
    clusters = {
        "load": _c("load", 70, 8, 40, 32, (3, 1.5, 1.5, 1), 60),
        "cut": _c("cut", 22, 30, 44, 33, (1.5, 2, 1, 1), 60),
        "explore": _c("explore", 36, 47, 46, 34, (2.5, 2, 1.5, 1), 80),
        "combat": _c("combat", 46, 60, 48, 35, (2.5, 2.5, 1.5, 1), 75),
        "boss_a": _c("boss_a", 54, 74, 50, 36, (3, 2, 1.5, 1), 70),
        "boss_b": _c("boss_b", 64, 56, 52, 36, (3, 2, 1.5, 1), 70),
    }
    stages = {
        "boot": StageSpec("boot", StageKind.LOADING, ("load",), 14.0),
        "cutscene": StageSpec(
            "cutscene", StageKind.EXECUTION, ("cut",), 40.0, duration_scale=0.3
        ),
        "level1": StageSpec("level1", StageKind.EXECUTION, ("combat",), 180.0),
        "l2_explore": StageSpec("l2_explore", StageKind.EXECUTION, ("explore",), 150.0),
        "l2_combat": StageSpec("l2_combat", StageKind.EXECUTION, ("combat",), 160.0),
        "boss1": StageSpec("boss1", StageKind.EXECUTION, ("boss_a",), 120.0),
        "boss2": StageSpec("boss2", StageKind.EXECUTION, ("boss_b",), 110.0),
        "inter": StageSpec("inter", StageKind.LOADING, ("load",), 10.0),
        "exit": StageSpec("exit", StageKind.LOADING, ("load",), 6.0),
    }
    scripts = (
        ScriptSpec(
            "level-1",
            "first level in simple mode",
            ("boot", "level1", "exit"),
        ),
        ScriptSpec(
            "level-2",
            "second level in simple mode",
            ("boot", "cutscene", "l2_explore", "l2_combat", "exit"),
        ),
        ScriptSpec(
            "level-3",
            "third level in simple mode",
            ("boot", "cutscene", "l2_explore", "l2_combat", "inter", "boss1",
             "inter", "boss2", "exit"),
            permutable_groups=((5, 7),),
        ),
    )
    return GameSpec(
        name="devil_may_cry",
        category=GameCategory.CONSOLE,
        clusters=clusters,
        stages=stages,
        scripts=scripts,
        frame_lock=60.0,
        long_term=True,
        description="Action RPG console game, 60 FPS lock",
    )


def contra() -> GameSpec:
    """Contra: classic web/flash-class game — simple, near-deterministic.

    Two clusters (Fig 14): loading and running.  Resource draw barely
    changes while playing; every script has exactly two stage types
    (Table I).  Short total play time — the short-term filler the
    regulator slots between long games' peaks (§IV-C2).
    """
    clusters = {
        "load": _c("load", 25, 3, 6, 6, (0.9, 0.5, 0.4, 0.3), 60),
        "run": _c("run", 15, 12, 8, 6, (0.8, 0.7, 0.4, 0.3), 150),
    }
    stages = {
        "boot": StageSpec("boot", StageKind.LOADING, ("load",), 6.0),
        "level1": StageSpec("level1", StageKind.EXECUTION, ("run",), 70.0, duration_scale=0.4),
        "level2": StageSpec("level2", StageKind.EXECUTION, ("run",), 70.0, duration_scale=0.4),
        "level3": StageSpec("level3", StageKind.EXECUTION, ("run",), 70.0, duration_scale=0.4),
        "inter": StageSpec("inter", StageKind.LOADING, ("load",), 4.0),
        "exit": StageSpec("exit", StageKind.LOADING, ("load",), 3.0),
    }
    scripts = (
        ScriptSpec("level-1", "first level", ("boot", "level1", "exit")),
        ScriptSpec(
            "levels-1-2",
            "first two levels",
            ("boot", "level1", "inter", "level2", "exit"),
        ),
        ScriptSpec(
            "levels-1-3",
            "first three levels",
            ("boot", "level1", "inter", "level2", "inter", "level3", "exit"),
        ),
    )
    return GameSpec(
        name="contra",
        category=GameCategory.WEB,
        clusters=clusters,
        stages=stages,
        scripts=scripts,
        frame_lock=None,
        long_term=False,
        description="classic entry game",
    )


def build_catalog() -> Dict[str, GameSpec]:
    """All five games keyed by name."""
    games = [dota2(), csgo(), genshin_impact(), devil_may_cry(), contra()]
    return {g.name: g for g in games}
