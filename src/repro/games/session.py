"""Runtime game session: the stage machine that produces demand samples.

A :class:`GameSession` walks a script's stages and emits one demand
vector per simulated second.  Two properties make it more than a trace
player, both central to the paper:

* **Loading progress depends on the allocation.**  A loading stage is a
  fixed amount of work; its wall-clock length is ``work / rate`` where
  the rate is the CPU-supply satisfaction.  The regulator's "extend
  loading time" (time stealing, §IV-C2) therefore needs no special
  mechanism — shrinking a loading game's ceiling stretches its loading
  stage automatically.
* **Execution stages run on wall time regardless of supply.**  A starved
  execution stage doesn't pause; the player just suffers low FPS.  That
  is exactly why peak overlap is costly and must be avoided up front.

Demand within a cluster follows an AR(1) process around the cluster mean
(smooth second-to-second telemetry), plus the player model's transient
bursts — the source of the misjudgment/callback events in Figs 9/10.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.games.player import BurstEvent, PlayerModel
from repro.games.spec import GameSpec, ScriptSpec, StageKind, StageSpec
from repro.platform_.profile import PlatformProfile, REFERENCE_PLATFORM
from repro.platform_.resources import ResourceVector
from repro.util.rng import Seed, as_rng

__all__ = ["SessionTick", "GameSession"]

_session_counter = itertools.count()

#: AR(1) correlation of within-cluster demand (per second).
_AR_RHO = 0.85
#: Minimum realized execution-stage duration in seconds.
_MIN_STAGE_SECONDS = 5.0


@dataclass(frozen=True)
class SessionTick:
    """What one simulated second of a session looked like.

    ``demand`` is what the game *wants*; what it gets is the caller's
    allocation, and actual usage is ``min(demand, allocation)``.
    """

    time: int
    demand: ResourceVector
    stage_name: str
    stage_kind: StageKind
    stage_type: frozenset
    cluster: str
    nominal_fps: float
    frame_lock: Optional[float]
    stage_completed: bool
    finished: bool

    @property
    def is_loading(self) -> bool:
        """Whether this second was spent in a loading stage."""
        return self.stage_kind is StageKind.LOADING

    def usage(self, allocation: ResourceVector) -> ResourceVector:
        """Consumption under a ceiling: element-wise min."""
        return self.demand.minimum(allocation)


@dataclass
class _StageInstance:
    spec: StageSpec
    duration: float  # execution: wall seconds; loading: work units


class GameSession:
    """One running game.

    Parameters
    ----------
    spec:
        The game.
    script:
        Script name, or ``None`` to pick uniformly among the game's
        scripts (the paper's §V-B2 protocol: "when a game is assigned, it
        randomly selects one from the scripts").
    player:
        The controlling player; defaults to a fresh player named after
        the session.
    seed:
        Session randomness (demand noise, durations, this run's order).
    platform:
        Demand scaling profile of the hosting platform.
    session_id:
        Unique id; auto-generated when omitted.
    """

    def __init__(
        self,
        spec: GameSpec,
        script: Optional[str] = None,
        *,
        player: Optional[PlayerModel] = None,
        seed: Seed = None,
        platform: PlatformProfile = REFERENCE_PLATFORM,
        session_id: Optional[str] = None,
    ):
        self.spec = spec
        self.platform = platform
        self._rng = as_rng(seed)
        if script is None:
            script = spec.scripts[int(self._rng.integers(len(spec.scripts)))].name
        self.script: ScriptSpec = spec.script(script)
        self.player = (
            player
            if player is not None
            else PlayerModel(f"player-of-{spec.name}", spec.category, seed=0)
        )
        self.session_id = (
            session_id
            if session_id is not None
            else f"{spec.name}#{next(_session_counter)}"
        )

        self._stages: List[_StageInstance] = self._resolve_stages()
        self._stage_idx = 0
        self._elapsed = 0  # total session seconds
        self._stage_progress = 0.0  # seconds (execution) or work units (loading)
        self._active_cluster: str = ""
        self._dwell_left = 0.0
        self._deviation = np.zeros(4)  # AR(1) state
        self._bursts: List[BurstEvent] = []
        self.history: List[Tuple[str, int, int]] = []  # (stage, start, end)
        self._stage_start = 0
        self._enter_stage()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _resolve_stages(self) -> List[_StageInstance]:
        """Apply the player's order choices and realize durations."""
        order = list(range(len(self.script.stages)))
        for group in self.script.permutable_groups:
            played = self.player.realized_order(group, self._rng)
            for slot, src in zip(group, played):
                order[slot] = src
        instances: List[_StageInstance] = []
        for idx in order:
            stage = self.spec.stages[self.script.stages[idx]]
            if stage.kind is StageKind.EXECUTION:
                mult = self.player.duration_multiplier(stage.duration_scale, self._rng)
                duration = max(stage.base_duration * mult, _MIN_STAGE_SECONDS)
            else:
                duration = stage.base_duration  # work units
            instances.append(_StageInstance(stage, duration))
        return instances

    def _enter_stage(self) -> None:
        inst = self._stages[self._stage_idx]
        self._stage_progress = 0.0
        self._stage_start = self._elapsed
        self._deviation = np.zeros(4)
        self._bursts = []
        self._active_cluster = inst.spec.clusters[
            int(self._rng.integers(len(inst.spec.clusters)))
        ]
        self._dwell_left = self._sample_dwell(inst.spec)

    def _sample_dwell(self, stage: StageSpec) -> float:
        if len(stage.clusters) == 1:
            return np.inf
        # Uniform around the mean (0.6–1.4×): dwell heavy tails would let a
        # single cluster monopolise a short stage, aliasing the stage type.
        return max(5.0, float(stage.cluster_dwell * self._rng.uniform(0.6, 1.4)))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """All stages completed."""
        return self._stage_idx >= len(self._stages)

    @property
    def elapsed(self) -> int:
        """Simulated seconds consumed so far."""
        return self._elapsed

    @property
    def current_stage(self) -> StageSpec:
        """The stage the session is currently in."""
        if self.finished:
            raise RuntimeError(f"session {self.session_id} has finished")
        return self._stages[self._stage_idx].spec

    @property
    def is_loading(self) -> bool:
        """Whether the session is currently in a loading stage."""
        return not self.finished and self.current_stage.kind is StageKind.LOADING

    @property
    def resolved_stage_names(self) -> Tuple[str, ...]:
        """The stage order actually played this session (ground truth)."""
        return tuple(inst.spec.name for inst in self._stages)

    def nominal_duration(self) -> float:
        """Sum of realized durations at full supply (Eq-2's ``S_i``)."""
        return float(sum(inst.duration for inst in self._stages))

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def advance(self, allocation: ResourceVector) -> SessionTick:
        """Simulate one second under the given resource ceiling.

        Returns the tick record.  Calling after the session finished
        raises ``RuntimeError``.
        """
        if self.finished:
            raise RuntimeError(f"session {self.session_id} has finished")
        inst = self._stages[self._stage_idx]
        stage = inst.spec
        cluster = self.spec.clusters[self._active_cluster]

        demand = self._sample_demand(cluster, stage)
        self._elapsed += 1

        if stage.kind is StageKind.LOADING:
            # Loading advances at the CPU-supply rate: starving it is the
            # regulator's time-stealing lever.
            d_cpu = demand.cpu
            rate = 1.0 if d_cpu <= 1e-9 else min(1.0, allocation.cpu / d_cpu)
            self._stage_progress += rate
        else:
            self._stage_progress += 1.0
            self._advance_cluster_dwell(stage)

        stage_completed = self._stage_progress >= inst.duration - 1e-9
        if stage_completed:
            self.history.append((stage.name, self._stage_start, self._elapsed))
            self._stage_idx += 1
            if not self.finished:
                self._enter_stage()

        return SessionTick(
            time=self._elapsed,
            demand=demand,
            stage_name=stage.name,
            stage_kind=stage.kind,
            stage_type=stage.stage_type,
            cluster=cluster.name,
            nominal_fps=cluster.nominal_fps,
            frame_lock=self.spec.frame_lock,
            stage_completed=stage_completed,
            finished=self.finished,
        )

    def _advance_cluster_dwell(self, stage: StageSpec) -> None:
        if len(stage.clusters) == 1:
            return
        self._dwell_left -= 1.0
        if self._dwell_left <= 0:
            others = [c for c in stage.clusters if c != self._active_cluster]
            self._active_cluster = others[int(self._rng.integers(len(others)))]
            self._dwell_left = self._sample_dwell(stage)
            self._deviation = np.zeros(4)

    def _sample_demand(self, cluster, stage: StageSpec) -> ResourceVector:
        mean = self.platform.scale_demand(cluster.mean).array
        std = cluster.std.array * self.platform.factors.array
        noise = self._rng.normal(size=4) * std * np.sqrt(1.0 - _AR_RHO**2)
        self._deviation = _AR_RHO * self._deviation + noise
        demand = mean + self._deviation

        if stage.kind is StageKind.EXECUTION:
            burst = self.player.maybe_burst(self._rng)
            if burst is not None:
                self._bursts.append(burst)
            if self._bursts:
                for b in self._bursts:
                    demand = demand + b.extra.array
                self._bursts = [b.tick() for b in self._bursts]
                self._bursts = [b for b in self._bursts if b.active]

        return ResourceVector.from_array(np.clip(demand, 0.0, 100.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = "finished" if self.finished else self.current_stage.name
        return (
            f"GameSession({self.session_id!r}, {self.spec.name!r}/"
            f"{self.script.name!r}, at={where}, t={self._elapsed})"
        )
