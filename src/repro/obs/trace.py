"""Sim-time tracing spans with deterministic identities.

A :class:`Span` is one named interval on a *stream* (the Perfetto
"thread": ``serve``, ``cluster``, ``faults``, ``node:<id>``).  Span ids
are derived from ``(stream, per-stream sequence)`` — never wall clock,
never ``id()`` — so two same-seed runs produce identical traces byte
for byte.

Two recording shapes:

* :meth:`Tracer.span` — a context manager for code-scoped work
  (``with tracer.span("gateway.pump", time=now): ...``).  Nesting is
  tracked per stream: an inner span's ``parent`` is the enclosing open
  span, and closing out of order raises :class:`SpanNestingError`.
* :meth:`Tracer.record` — a complete span whose window is known up
  front (a fault's ``[start, recover)`` window).

Export refuses to run while spans are still open
(:class:`UnclosedSpanError`): a truncated trace would silently hide the
very interval that was being measured.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanNestingError",
    "UnclosedSpanError",
    "Tracer",
]


class SpanNestingError(RuntimeError):
    """A span was closed that is not the innermost open span of its
    stream (or was never begun / already closed)."""


class UnclosedSpanError(RuntimeError):
    """The trace was exported (or checked) with spans still open."""


@dataclass
class Span:  # lint: disable=CG013 -- exported via the obs trace, not the fleet digest
    """One traced interval.

    ``seq`` is the span's position in its stream's begin order; the
    identity ``"<stream>#<seq>"`` is therefore a pure function of the
    run's event sequence.  ``args`` may be filled in until the span is
    closed (they land in the Chrome trace's ``args`` object).
    """

    name: str
    stream: str
    seq: int
    begin: float
    end: Optional[float] = None
    parent: Optional[str] = None
    args: Dict[str, object] = field(default_factory=dict)

    @property
    def span_id(self) -> str:
        """Deterministic identity: stream + per-stream sequence."""
        return f"{self.stream}#{self.seq}"

    @property
    def closed(self) -> bool:
        """Whether the span has an end time."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in (sim) seconds; 0 for point spans."""
        if self.end is None:
            raise UnclosedSpanError(f"span {self.span_id} ({self.name}) is open")
        return self.end - self.begin


class Tracer:
    """Collects spans over one run.

    All times are simulation seconds supplied by the caller; the tracer
    never reads a clock of its own.
    """

    def __init__(self) -> None:
        self._spans: List[Span] = []
        self._next_seq: Dict[str, int] = {}
        self._open: Dict[str, List[Span]] = {}  # per-stream stacks

    # ------------------------------------------------------------------
    def begin(
        self, name: str, time: float, *, stream: str = "main", **args: object
    ) -> Span:
        """Open a span at ``time``; it nests under the stream's current
        innermost open span, if any."""
        seq = self._next_seq.get(stream, 0)
        self._next_seq[stream] = seq + 1
        stack = self._open.setdefault(stream, [])
        parent = stack[-1].span_id if stack else None
        span = Span(
            name=name,
            stream=stream,
            seq=seq,
            begin=float(time),
            parent=parent,
            args=dict(args),
        )
        stack.append(span)
        self._spans.append(span)
        return span

    def end(self, span: Span, time: Optional[float] = None) -> None:
        """Close ``span`` at ``time`` (default: its begin — a point span).

        The span must be the innermost open span of its stream;
        anything else is a structural bug and raises loudly.
        """
        stack = self._open.get(span.stream, [])
        if span.closed or span not in stack:
            raise SpanNestingError(
                f"span {span.span_id} ({span.name}) is not open"
            )
        if stack[-1] is not span:
            raise SpanNestingError(
                f"span {span.span_id} ({span.name}) closed before its inner "
                f"span {stack[-1].span_id} ({stack[-1].name})"
            )
        end = span.begin if time is None else float(time)
        if end < span.begin:
            raise ValueError(
                f"span {span.span_id} cannot end at {end} < begin {span.begin}"
            )
        span.end = end
        stack.pop()

    @contextmanager
    def span(
        self, name: str, time: float, *, stream: str = "main", **args: object
    ) -> Iterator[Span]:
        """Context manager over :meth:`begin`/:meth:`end`.

        The span closes at its begin time (sim time rarely advances
        inside one engine callback); set ``span.end`` beforehand — or
        mutate ``span.args`` — to annotate the interval::

            with tracer.span("gateway.pump", time=now, stream="serve") as s:
                started = pump()
                s.args["started"] = len(started)
        """
        s = self.begin(name, time, stream=stream, **args)
        try:
            yield s
        finally:
            # The body may have assigned ``s.end`` to stretch the span;
            # route that through :meth:`end` so the stack still pops.
            if s in self._open.get(stream, []):
                end, s.end = s.end, None
                self.end(s, end)

    def record(
        self,
        name: str,
        begin: float,
        end: Optional[float] = None,
        *,
        stream: str = "main",
        **args: object,
    ) -> Span:
        """Record a complete span in one call (window known up front)."""
        span = self.begin(name, begin, stream=stream, **args)
        self.end(span, end)
        return span

    # ------------------------------------------------------------------
    @property
    def spans(self) -> List[Span]:
        """Every recorded span, in begin order (copy)."""
        return list(self._spans)

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet closed, sorted by stream then seq."""
        return [
            s
            for stream in sorted(self._open)
            for s in self._open[stream]
        ]

    def require_closed(self) -> None:
        """Raise :class:`UnclosedSpanError` naming any open span."""
        open_ = self.open_spans()
        if open_:
            ids = ", ".join(f"{s.span_id} ({s.name})" for s in open_)
            raise UnclosedSpanError(f"spans still open: {ids}")

    def streams(self) -> List[str]:
        """Streams that recorded at least one span, sorted."""
        return sorted(self._next_seq)

    def __len__(self) -> int:
        return len(self._spans)
