"""The metrics registry: labeled counters, gauges, fixed-bucket histograms.

Design rules, all in service of *deterministic* observability (same seed
⇒ byte-identical ``metrics.prom``):

* metrics are registered once by canonical name
  (:mod:`repro.obs.naming`); re-registering the same name with the same
  kind/labels returns the existing family, a conflicting signature
  raises — so two subsystems can share one fleet-wide counter without
  coordinating construction order;
* samples are stamped with **simulation time** (passed explicitly, or
  inherited from :meth:`MetricsRegistry.set_time`) — never wall clock;
* histogram buckets are fixed at registration, never data-derived;
* iteration everywhere is sorted (families by name, children by label
  values), so exports cannot inherit insertion order.

The hot-path cost of an update is one dict lookup (memoised by callers
holding the child) plus a float add — cheap enough that instrumented
code stays within the benchmark's overhead budget even when every
admission increments several counters.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.naming import check_label_name, check_metric_name

__all__ = [
    "MetricError",
    "Counter",
    "CounterChild",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]


class MetricError(ValueError):
    """Raised on metric misuse: re-registration with a different
    signature, unknown/missing labels, or a decreasing counter."""


LabelValues = Tuple[str, ...]


class _Child:
    """One labeled sample of a counter or gauge."""

    __slots__ = ("value", "time", "_registry")

    def __init__(self, registry: "MetricsRegistry"):
        self.value = 0.0
        self.time: Optional[float] = None
        self._registry = registry

    def _stamp(self, time: Optional[float]) -> None:
        self.time = time if time is not None else self._registry.now

    def inc(self, amount: float = 1.0, *, time: Optional[float] = None) -> None:
        """Add ``amount`` (must be ≥ 0 for counters; checked by caller)."""
        self.value += amount
        self._stamp(time)

    def set(self, value: float, *, time: Optional[float] = None) -> None:
        """Overwrite the sample (gauges only; counters hide this)."""
        self.value = float(value)
        self._stamp(time)


class _HistogramChild:
    """One labeled histogram: fixed-bucket counts, sum and count."""

    __slots__ = ("counts", "sum", "count", "time", "_bounds", "_registry")

    def __init__(self, bounds: Tuple[float, ...], registry: "MetricsRegistry"):
        self._bounds = bounds  # ascending, +inf last
        self.counts = [0] * len(bounds)
        self.sum = 0.0
        self.count = 0
        self.time: Optional[float] = None
        self._registry = registry

    def observe(self, value: float, *, time: Optional[float] = None) -> None:
        """Record one observation into its (first fitting) bucket."""
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                self.counts[i] += 1
                break
        self.sum += value
        self.count += 1
        self.time = time if time is not None else self._registry.now

    def cumulative(self) -> List[int]:
        """Prometheus-style cumulative bucket counts (``le`` semantics)."""
        out: List[int] = []
        acc = 0
        for c in self.counts:
            acc += c
            out.append(acc)
        return out


class _Family:
    """Common machinery: label handling and sorted child iteration."""

    kind = ""

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        registry: "MetricsRegistry",
    ):
        self.name = check_metric_name(name)
        self.help = help
        self.labelnames = tuple(check_label_name(n) for n in labelnames)
        self._registry = registry
        self._children: Dict[LabelValues, object] = {}

    def _make_child(self) -> object:
        raise NotImplementedError

    def labels(self, **labelvalues: str):
        """The child for one label-value combination (created on first
        use, cached after — hold the child on hot paths)."""
        if set(labelvalues) != set(self.labelnames):
            raise MetricError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[n]) for n in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._make_child()
            self._children[key] = child
        return child

    def _default_child(self):
        """The single unlabeled child (for label-less families)."""
        if self.labelnames:
            raise MetricError(
                f"{self.name} declares labels {self.labelnames}; "
                "use .labels(...)"
            )
        return self.labels()

    def samples(self) -> Iterator[Tuple[LabelValues, object]]:
        """Children in sorted label order (deterministic export)."""
        for key in sorted(self._children):
            yield key, self._children[key]

    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        """What must match on re-registration."""
        return (self.kind, self.labelnames)


class Counter(_Family):
    """A monotonically increasing count (``*_total``)."""

    kind = "counter"

    def _make_child(self) -> _Child:
        return _Child(self._registry)

    def inc(self, amount: float = 1.0, *, time: Optional[float] = None) -> None:
        """Increment the (unlabeled) counter by ``amount`` ≥ 0."""
        if amount < 0:
            raise MetricError(f"{self.name}: counters only go up, got {amount}")
        self._default_child().inc(amount, time=time)

    def labels(self, **labelvalues: str) -> "_CounterChild":
        child = super().labels(**labelvalues)
        return child  # type: ignore[return-value]

    @property
    def value(self) -> float:
        """Value of the unlabeled counter (0 before the first inc)."""
        if self.labelnames:
            raise MetricError(f"{self.name} is labeled; read .labels(...).value")
        child = self._children.get(())
        return child.value if child is not None else 0.0


# A counter child is a plain _Child but callers should not .set() it;
# the public alias exists for type readability at instrumented call
# sites (which hold pre-resolved children on hot paths).
CounterChild = _Child
_CounterChild = _Child


class Gauge(_Family):
    """A value that can go up and down (depths, sizes, temperatures)."""

    kind = "gauge"

    def _make_child(self) -> _Child:
        return _Child(self._registry)

    def set(self, value: float, *, time: Optional[float] = None) -> None:
        """Set the (unlabeled) gauge."""
        self._default_child().set(value, time=time)

    def add(self, amount: float, *, time: Optional[float] = None) -> None:
        """Adjust the (unlabeled) gauge by ``amount`` (may be negative)."""
        self._default_child().inc(amount, time=time)

    @property
    def value(self) -> float:
        """Value of the unlabeled gauge (0 before the first set)."""
        if self.labelnames:
            raise MetricError(f"{self.name} is labeled; read .labels(...).value")
        child = self._children.get(())
        return child.value if child is not None else 0.0


class Histogram(_Family):
    """Fixed-bucket distribution (waits, durations, sizes).

    ``buckets`` are the finite upper bounds, ascending; ``+Inf`` is
    appended automatically.  Buckets are part of the registration
    signature: re-registering with different buckets raises.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        registry: "MetricsRegistry",
        buckets: Sequence[float],
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise MetricError(f"{name}: a histogram needs >= 1 bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise MetricError(f"{name}: buckets must be strictly ascending")
        if math.isinf(bounds[-1]):
            bounds = bounds[:-1]
        self.buckets: Tuple[float, ...] = bounds + (math.inf,)
        super().__init__(name, help, labelnames, registry)

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets, self._registry)

    def observe(self, value: float, *, time: Optional[float] = None) -> None:
        """Record one observation on the unlabeled histogram."""
        self._default_child().observe(value, time=time)

    def signature(self) -> Tuple[str, Tuple[str, ...]]:
        return (f"histogram{self.buckets}", self.labelnames)


class MetricsRegistry:
    """The process-wide (well: observer-wide) metric namespace.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the family, later calls with the same signature
    return it, a conflicting signature raises :class:`MetricError`.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        #: Current simulation time; samples updated without an explicit
        #: ``time=`` inherit it.  Never wall clock (lint rule CG005/12).
        self.now: Optional[float] = None

    def set_time(self, time: float) -> None:
        """Advance the registry clock (monotone max of what it is told)."""
        self.now = time if self.now is None else max(self.now, float(time))

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, factory, signature) -> _Family:
        existing = self._families.get(name)
        if existing is not None:
            if existing.signature() != signature:
                raise MetricError(
                    f"{name} is already registered as {existing.signature()}, "
                    f"requested {signature}"
                )
            return existing
        family = factory()
        self._families[name] = family
        return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter family."""
        names = tuple(labelnames)
        return self._get_or_create(  # type: ignore[return-value]
            name,
            lambda: Counter(name, help, names, self),
            ("counter", names),
        )

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge family."""
        names = tuple(labelnames)
        return self._get_or_create(  # type: ignore[return-value]
            name,
            lambda: Gauge(name, help, names, self),
            ("gauge", names),
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float],
    ) -> Histogram:
        """Register (or fetch) a fixed-bucket histogram family."""
        names = tuple(labelnames)
        bounds = tuple(float(b) for b in buckets)
        probe = Histogram(name, help, names, self, bounds)
        return self._get_or_create(  # type: ignore[return-value]
            name, lambda: probe, probe.signature()
        )

    # ------------------------------------------------------------------
    def families(self) -> List[_Family]:
        """Registered families, sorted by name (deterministic export)."""
        return [self._families[n] for n in sorted(self._families)]

    def get(self, name: str) -> Optional[_Family]:
        """Look one family up by canonical name (``None`` if absent)."""
        return self._families.get(name)

    def __len__(self) -> int:
        return len(self._families)
