"""The one handle instrumented code holds: registry + tracer together.

Subsystems accept ``obs: Optional[Observer] = None`` and guard every
touch with ``if obs is not None`` (or hold pre-resolved metric children)
— so an unobserved run pays one attribute check per hot-path event and
nothing else.  One :class:`Observer` is typically shared fleet-wide:
the registry's get-or-create semantics let the gateway, every node's
scheduler, the cluster dispatcher and the fault injector all register
into a single namespace without coordinating construction order.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

from repro.obs.export import chrome_trace_json, prometheus_text, trace_digest
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = ["Observer"]


class Observer:
    """Bundles a :class:`MetricsRegistry` and a :class:`Tracer`.

    Parameters
    ----------
    registry / tracer:
        Pre-built components to share; fresh ones by default.
    """

    def __init__(
        self,
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()

    # ------------------------------------------------------------------
    # Registry conveniences
    # ------------------------------------------------------------------
    def tick(self, time: float) -> None:
        """Advance the sim clock metrics are stamped with."""
        self.registry.set_time(time)

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        """Register (or fetch) a counter on the shared registry."""
        return self.registry.counter(name, help, labelnames)

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        """Register (or fetch) a gauge on the shared registry."""
        return self.registry.gauge(name, help, labelnames)

    def histogram(
        self, name: str, help: str = "", labelnames=(), *, buckets
    ) -> Histogram:
        """Register (or fetch) a histogram on the shared registry."""
        return self.registry.histogram(name, help, labelnames, buckets=buckets)

    # ------------------------------------------------------------------
    # Tracer conveniences
    # ------------------------------------------------------------------
    def span(self, name: str, time: float, *, stream: str = "main", **args):
        """Context-managed span on the shared tracer."""
        return self.tracer.span(name, time, stream=stream, **args)

    def record_span(
        self,
        name: str,
        begin: float,
        end: Optional[float] = None,
        *,
        stream: str = "main",
        **args,
    ) -> Span:
        """Complete span (window known up front) on the shared tracer."""
        return self.tracer.record(name, begin, end, stream=stream, **args)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """``metrics.prom`` content (Prometheus text exposition)."""
        return prometheus_text(self.registry)

    def trace_json(self) -> str:
        """``trace.json`` content (Chrome trace events, Perfetto-loadable)."""
        return chrome_trace_json(self.tracer)

    def trace_digest(self) -> str:
        """sha256 of the canonical trace (the CI determinism handle)."""
        return trace_digest(self.tracer)

    def write(self, out_dir: Union[str, Path]) -> Tuple[Path, Path]:
        """Write ``metrics.prom`` + ``trace.json`` under ``out_dir``.

        Returns the two paths (metrics first).
        """
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        metrics_path = out / "metrics.prom"
        trace_path = out / "trace.json"
        metrics_path.write_text(self.metrics_text())
        trace_path.write_text(self.trace_json())
        return metrics_path, trace_path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Observer(families={len(self.registry)}, "
            f"spans={len(self.tracer)})"
        )
