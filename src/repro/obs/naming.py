"""Canonical metric names and span streams (the observability taxonomy).

Every instrumented subsystem registers its metrics under the names
defined here instead of inventing strings inline, so the whole program
shares one namespace and ``docs/OBSERVABILITY.md`` can document it in
one table.  Conventions (enforced by :func:`check_metric_name`):

* ``snake_case``, prefixed by the owning subsystem (``serve_``,
  ``cluster_``, ``cocg_`` for the core scheduler, ``faults_``,
  ``qos_``);
* monotonic counters end in ``_total``; durations are ``_seconds``;
* label names are ``snake_case`` and low-cardinality (outcomes,
  actions, node ids — never session or request ids).

Span streams (the Perfetto "threads") follow the same ownership split:
one stream per subsystem, plus one ``node:<id>`` stream per fleet node
for its control loop.
"""

from __future__ import annotations

import re

__all__ = [
    "check_metric_name",
    "check_label_name",
    # serve
    "GATEWAY_OUTCOMES",
    "GATEWAY_RETRIES",
    "GATEWAY_DEFERRALS",
    "GATEWAY_THROTTLED_ROUNDS",
    "GATEWAY_QUEUE_DEPTH",
    "QUEUE_WAIT_SECONDS",
    "SLO_OUTCOMES",
    "BATCHER_EVENTS",
    # core
    "ALGO1_BATCHES",
    "ALGO1_EVALUATIONS",
    "SCHED_DECISIONS",
    "SCHED_DEGRADED_TRANSITIONS",
    "GATEWAY_BACKPRESSURE",
    # cluster
    "CLUSTER_DISPATCH",
    "CLUSTER_PUMP_ROUNDS",
    "CLUSTER_LIFECYCLE",
    "PROVISION_LATENCY",
    "PROVISION_EVENTS",
    # fleet
    "FLEET_ROUTED",
    "FLEET_COMPLETED",
    # faults
    "FAULTS_INJECTED",
    # qos
    "QOS_DEGRADED_SECONDS",
    # span streams
    "STREAM_SERVE",
    "STREAM_CLUSTER",
    "STREAM_FAULTS",
    "node_stream",
    "lifecycle_span",
    # histogram buckets
    "WAIT_BUCKETS",
    "PROVISION_BUCKETS",
]

_METRIC_NAME = re.compile(r"^[a-z][a-z0-9]*(_[a-z0-9]+)*$")
_LABEL_NAME = re.compile(r"^[a-z][a-z0-9_]*$")


def check_metric_name(name: str) -> str:
    """Validate a canonical metric name; returns it unchanged."""
    if not _METRIC_NAME.match(name):
        raise ValueError(
            f"metric name {name!r} is not snake_case "
            "(see docs/OBSERVABILITY.md#naming)"
        )
    return name


def check_label_name(name: str) -> str:
    """Validate one label name; returns it unchanged."""
    if not _LABEL_NAME.match(name):
        raise ValueError(f"label name {name!r} is not snake_case")
    return name


# ----------------------------------------------------------------------
# serve/ — the admission gateway and micro-batcher
# ----------------------------------------------------------------------

#: Gateway verdicts; label ``outcome`` ∈ queued/admitted/shed/dead_lettered.
GATEWAY_OUTCOMES = "serve_gateway_outcomes_total"
#: Dispatch attempts beaten back for retry (request stays queued).
GATEWAY_RETRIES = "serve_gateway_retries_total"
#: Dispatch attempts that found no willing node this round.
GATEWAY_DEFERRALS = "serve_gateway_deferrals_total"
#: Pump rounds that ran out of tokens with work still queued.
GATEWAY_THROTTLED_ROUNDS = "serve_gateway_throttled_rounds_total"
#: Requests currently queued, per game category (gauge).
GATEWAY_QUEUE_DEPTH = "serve_gateway_queue_depth"
#: Time-in-queue histogram, per game category.
QUEUE_WAIT_SECONDS = "serve_queue_wait_seconds"
#: Per-category SLO outcome counts; labels ``category``, ``outcome``.
SLO_OUTCOMES = "serve_slo_outcomes_total"
#: Micro-batcher events; label ``event`` ∈ rounds/evaluations/
#: prescreen_rejects/admissions/fallback_probes.
BATCHER_EVENTS = "serve_batcher_events_total"
#: Requests shed early because usable fleet capacity sat below the
#: configured floor (the capacity-coupled backpressure path).
GATEWAY_BACKPRESSURE = "serve_gateway_backpressure_sheds_total"

#: Fixed time-in-queue buckets (seconds).  Fixed — never derived from
#: observed data — so two runs bucket identically by construction.
WAIT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0)

# ----------------------------------------------------------------------
# core/ — Algorithm 1 and the CoCG control loop
# ----------------------------------------------------------------------

#: Shared Algorithm-1 snapshots opened (``Distributor.begin_batch``).
ALGO1_BATCHES = "cocg_algo1_batches_total"
#: Algorithm-1 candidate evaluations; label ``admitted`` ∈ true/false.
ALGO1_EVALUATIONS = "cocg_algo1_evaluations_total"
#: Scheduler decision-log entries; label ``action`` (admit/reject/
#: stage-end/stage-start/callback/hold/probe/degraded/…).
SCHED_DECISIONS = "cocg_decisions_total"
#: Degraded-mode boundary crossings; label ``direction`` ∈ enter/exit.
SCHED_DEGRADED_TRANSITIONS = "cocg_degraded_transitions_total"

# ----------------------------------------------------------------------
# cluster/ — fleet dispatch
# ----------------------------------------------------------------------

#: Fleet dispatch attempts; label ``outcome`` ∈ dispatched/deferred.
CLUSTER_DISPATCH = "cluster_dispatch_total"
#: Retry-queue pump rounds (the non-gateway path).
CLUSTER_PUMP_ROUNDS = "cluster_pump_rounds_total"
#: Node lifecycle transitions; label ``state`` ∈ warming/up/draining/
#: reclaim-notice → ``reclaim_notice``/down (the resulting state).
CLUSTER_LIFECYCLE = "cluster_lifecycle_transitions_total"
#: Request-to-UP provisioning latency histogram (seconds).
PROVISION_LATENCY = "cluster_provision_latency_seconds"
#: Provisioner events; label ``event`` ∈ requested/provisioned/retried/
#: failed/timed_out/warm_promoted/warm_refill/exhausted.
PROVISION_EVENTS = "cluster_provision_events_total"

#: Fixed provision-latency buckets (seconds).  Fixed — never derived
#: from observed data — so two runs bucket identically by construction.
PROVISION_BUCKETS = (5.0, 10.0, 20.0, 30.0, 45.0, 60.0, 90.0, 120.0, 300.0)

# ----------------------------------------------------------------------
# fleet/ — the fleet-of-fleets controller
# ----------------------------------------------------------------------

#: Requests the session router assigned to each shard; label ``region``.
FLEET_ROUTED = "fleet_requests_routed_total"
#: Sessions completed per regional shard; label ``region``.
FLEET_COMPLETED = "fleet_sessions_completed_total"

# ----------------------------------------------------------------------
# faults/ — the injector
# ----------------------------------------------------------------------

#: Faults fired into the run; label ``kind`` (node_crash/…).
FAULTS_INJECTED = "faults_injected_total"

# ----------------------------------------------------------------------
# platform_/ — QoS accounting
# ----------------------------------------------------------------------

#: Session-seconds under degraded (open-breaker) control; label ``node``.
QOS_DEGRADED_SECONDS = "qos_degraded_seconds_total"

# ----------------------------------------------------------------------
# Span streams
# ----------------------------------------------------------------------

STREAM_SERVE = "serve"
STREAM_CLUSTER = "cluster"
STREAM_FAULTS = "faults"


def node_stream(node_id: str) -> str:
    """The span stream of one fleet node's control loop."""
    return f"node:{node_id}"


def lifecycle_span(node_id: str) -> str:
    """The span name of one node's lifecycle phases.

    Each phase (``provisioning``, ``warming``, ``reclaim-notice``) is
    recorded as a ``node.<id>.lifecycle`` span on the ``cluster`` stream
    with a ``state`` argument, so Perfetto shows a node's life as
    adjacent windows.
    """
    return f"node.{node_id}.lifecycle"
