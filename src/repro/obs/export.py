"""Exporters: Prometheus text exposition and Chrome trace-event JSON.

Both outputs are *canonical*: families sorted by name, samples sorted by
label values, spans sorted by ``(begin, stream, seq)``, floats printed
through one formatter, JSON with sorted keys.  Two same-seed runs
therefore produce byte-identical artifacts, which is exactly what
:func:`trace_digest` (a sha256 over the canonical trace JSON) and the
CI determinism check assert.

``trace.json`` follows the Chrome trace-event format (complete ``"X"``
events plus thread-name metadata), so it opens directly in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``; timestamps are
simulation *micro*seconds (the format's unit), durations likewise.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Dict, List, Optional

from repro.obs.metrics import Histogram, MetricsRegistry, _HistogramChild
from repro.obs.trace import Tracer

__all__ = [
    "format_value",
    "prometheus_text",
    "chrome_trace",
    "chrome_trace_json",
    "trace_digest",
]


def format_value(value: float) -> str:
    """Canonical number rendering: integral floats print as integers,
    the rest through ``repr`` (shortest round-trip form)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    f = float(value)
    if f.is_integer() and abs(f) < 1e15:
        return str(int(f))
    return repr(f)


def _ts(time: Optional[float]) -> str:
    """Optional sample timestamp (sim-time milliseconds), with a
    leading space, or the empty string when the sample was never
    stamped."""
    if time is None:
        return ""
    return f" {int(round(time * 1000.0))}"


def _labels(names, values, extra: str = "") -> str:
    """``{a="x",b="y"}`` (or empty) for one sample's labels."""
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for values, child in family.samples():
                assert isinstance(child, _HistogramChild)
                cumulative = child.cumulative()
                for bound, count in zip(family.buckets, cumulative):
                    le = _labels(
                        family.labelnames, values,
                        extra=f'le="{format_value(bound)}"',
                    )
                    lines.append(
                        f"{family.name}_bucket{le} {count}{_ts(child.time)}"
                    )
                base = _labels(family.labelnames, values)
                lines.append(
                    f"{family.name}_sum{base} "
                    f"{format_value(child.sum)}{_ts(child.time)}"
                )
                lines.append(
                    f"{family.name}_count{base} {child.count}{_ts(child.time)}"
                )
        else:
            for values, child in family.samples():
                base = _labels(family.labelnames, values)
                lines.append(
                    f"{family.name}{base} "
                    f"{format_value(child.value)}{_ts(child.time)}"  # type: ignore[union-attr]
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Chrome trace events (Perfetto-loadable)
# ----------------------------------------------------------------------

def chrome_trace(tracer: Tracer) -> Dict[str, object]:
    """The tracer's spans as a Chrome trace-event object.

    Raises :class:`~repro.obs.trace.UnclosedSpanError` while any span is
    open — a truncated trace hides the interval under measurement.
    """
    tracer.require_closed()
    streams = tracer.streams()
    tids = {stream: i + 1 for i, stream in enumerate(streams)}
    events: List[Dict[str, object]] = []
    for stream in streams:
        events.append({
            "ph": "M",
            "name": "thread_name",
            "pid": 1,
            "tid": tids[stream],
            "args": {"name": stream},
        })
    for span in sorted(tracer.spans, key=lambda s: (s.begin, s.stream, s.seq)):
        args: Dict[str, object] = {"span_id": span.span_id}
        if span.parent is not None:
            args["parent"] = span.parent
        args.update(span.args)
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.stream,
            "pid": 1,
            "tid": tids[span.stream],
            "ts": int(round(span.begin * 1_000_000)),
            "dur": int(round((span.end - span.begin) * 1_000_000)),  # type: ignore[operator]
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulation-seconds"},
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Canonical (sorted-keys, fixed-separator) trace JSON."""
    return json.dumps(
        chrome_trace(tracer), sort_keys=True, separators=(",", ":")
    ) + "\n"


def trace_digest(tracer: Tracer) -> str:
    """sha256 over the canonical trace JSON.

    Same seed + same fault plan ⇒ same spans ⇒ equal digests; CI
    asserts exactly this across two runs.
    """
    return hashlib.sha256(chrome_trace_json(tracer).encode()).hexdigest()
