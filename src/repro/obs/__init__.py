"""Deterministic observability: metrics, traces, exporters.

The fourth pillar of the reproduction (after correctness tooling,
robustness and serving): every subsystem reports through one pipeline —

* :mod:`~repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauges and fixed-bucket histograms, registered once by
  canonical name and stamped with **simulation** time;
* :mod:`~repro.obs.trace` — sim-time spans with parent/child nesting
  and identities derived from ``(stream, sequence)``, never wall clock;
* :mod:`~repro.obs.export` — Prometheus text exposition and
  Perfetto-loadable Chrome trace JSON, both canonical: same seed + same
  fault plan ⇒ byte-identical ``metrics.prom`` and equal
  :func:`~repro.obs.export.trace_digest`;
* :mod:`~repro.obs.observer` — the nullable :class:`Observer` hook hot
  paths carry (``obs=None`` costs one attribute check);
* :mod:`~repro.obs.naming` — the canonical metric/stream taxonomy.

``repro.obs`` is a *leaf*: it imports nothing from the rest of the
package, so ``core``, ``serve``, ``cluster`` and ``faults`` can all
instrument themselves without a cycle.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    format_value,
    prometheus_text,
    trace_digest,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
)
from repro.obs.observer import Observer
from repro.obs.trace import Span, SpanNestingError, Tracer, UnclosedSpanError

__all__ = [
    "Observer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricError",
    "Tracer",
    "Span",
    "SpanNestingError",
    "UnclosedSpanError",
    "prometheus_text",
    "chrome_trace",
    "chrome_trace_json",
    "trace_digest",
    "format_value",
]
