"""Self-contained machine-learning substrate.

scikit-learn is not available in this environment, so every algorithm the
paper names is implemented here from scratch, vectorized with NumPy:

* :class:`~repro.mlkit.kmeans.KMeans` — Lloyd's algorithm with k-means++
  initialisation, inertia (SSE) reporting and elbow-based model selection
  (used by the frame profiler, Figs 5/6/14).
* :class:`~repro.mlkit.tree.DecisionTreeClassifier` — CART with Gini or
  entropy impurity (the paper's DTC).
* :class:`~repro.mlkit.forest.RandomForestClassifier` — bagged CART trees
  with feature subsampling (the paper's RF).
* :class:`~repro.mlkit.gbdt.GradientBoostedClassifier` — multiclass
  softmax gradient boosting over regression trees (the paper's GBDT).

Plus the supporting kit: metrics, train/test splitting and categorical
preprocessing.
"""

from repro.mlkit.base import ClassifierMixin, Estimator
from repro.mlkit.kmeans import KMeans, elbow_k, sse_curve
from repro.mlkit.tree import DecisionTreeClassifier
from repro.mlkit.regression_tree import DecisionTreeRegressor
from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.gbdt import GradientBoostedClassifier
from repro.mlkit.metrics import (
    accuracy_score,
    confusion_matrix,
    macro_f1_score,
    silhouette_score,
    sse,
)
from repro.mlkit.model_selection import KFold, train_test_split
from repro.mlkit.preprocessing import LabelEncoder, OneHotEncoder, StandardScaler

__all__ = [
    "Estimator",
    "ClassifierMixin",
    "KMeans",
    "elbow_k",
    "sse_curve",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "GradientBoostedClassifier",
    "accuracy_score",
    "confusion_matrix",
    "macro_f1_score",
    "silhouette_score",
    "sse",
    "train_test_split",
    "KFold",
    "LabelEncoder",
    "OneHotEncoder",
    "StandardScaler",
]
