"""CART regression tree — the GBDT base learner.

Also exposed publicly: the allocation planner can regress continuous
resource quantities (e.g. expected stage peak) when a numeric target is
more convenient than a categorical stage type.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mlkit._cart import (
    best_split_regression,
    count_leaves,
    feature_importances,
    grow_tree,
    predict_leaf_values,
    tree_depth,
)
from repro.mlkit.base import Estimator
from repro.util.rng import Seed, as_rng

__all__ = ["DecisionTreeRegressor"]


class DecisionTreeRegressor(Estimator):
    """CART regressor minimising squared error.

    Parameters mirror :class:`~repro.mlkit.tree.DecisionTreeClassifier`.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        seed: Seed = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_features is not None and max_features < 1:
            raise ValueError(f"max_features must be >= 1 or None, got {max_features}")
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on ``(X, y)`` with a continuous target ``y``."""
        X = self._coerce_X(X)
        y = self._coerce_y(y, X.shape[0]).astype(float)
        if not np.all(np.isfinite(y)):
            raise ValueError("y contains NaN or infinite values")
        rng = as_rng(self.seed)

        def splitter(Xn, yn, feats):
            return best_split_regression(Xn, yn, feats, self.min_samples_leaf)

        def leaf_value(yn):
            return np.asarray(yn.mean())

        def impurity(yn):
            return float(yn.var() * yn.size)

        mf = self.max_features
        if mf is not None:
            mf = min(mf, X.shape[1])
        self.root_ = grow_tree(
            X,
            y,
            splitter=splitter,
            leaf_value=leaf_value,
            impurity=impurity,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=mf,
            rng=rng,
        )
        self.n_features_in_ = X.shape[1]
        self._mark_fitted()
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted means, shape ``(n,)``."""
        self._check_fitted()
        X = self._coerce_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with {self.n_features_in_}"
            )
        return predict_leaf_values(self.root_, X).reshape(X.shape[0])

    def score(self, X: np.ndarray, y: np.ndarray) -> float:
        """Coefficient of determination R²."""
        y = np.asarray(y, dtype=float)
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0:
            return 1.0 if ss_res == 0 else 0.0
        return 1.0 - ss_res / ss_tot

    @property
    def depth(self) -> int:
        """Fitted tree depth."""
        self._check_fitted()
        return tree_depth(self.root_)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        self._check_fitted()
        return count_leaves(self.root_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to 1."""
        self._check_fitted()
        return feature_importances(self.root_, self.n_features_in_)
