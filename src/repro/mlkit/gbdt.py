"""Gradient-boosted decision trees — the paper's GBDT backend.

Multiclass softmax boosting: one regression tree per class per round fits
the negative gradient of the cross-entropy loss (``y_onehot - p``), with
shrinkage.  The paper finds GBDT "relatively stable … suitable for games
with a large impact on users" (§IV-B2) — on Genshin-like permuted
workloads it retains accuracy where DTC/RF drop (Fig 15).
"""

from __future__ import annotations


import numpy as np

from repro.mlkit.base import ClassifierMixin, Estimator
from repro.mlkit.regression_tree import DecisionTreeRegressor
from repro.util.rng import Seed, as_rng
from repro.util.validation import check_fraction, check_positive

__all__ = ["GradientBoostedClassifier"]


def _softmax(logits: np.ndarray) -> np.ndarray:
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class GradientBoostedClassifier(Estimator, ClassifierMixin):
    """Softmax gradient boosting over CART regression trees.

    Parameters
    ----------
    n_estimators:
        Boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth:
        Depth of each base regression tree (shallow trees, boosted deep).
    min_samples_leaf:
        Leaf size of the base trees.
    subsample:
        Row subsampling fraction per round (stochastic gradient boosting).
    seed:
        Seed/generator.

    Attributes
    ----------
    classes_:
        Distinct labels.
    estimators_:
        ``n_estimators`` lists of ``n_classes`` fitted regression trees.
    train_losses_:
        Cross-entropy after each round (diagnostic; should be decreasing).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        *,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        seed: Seed = None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        check_positive("learning_rate", learning_rate)
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        check_fraction("subsample", subsample)
        if subsample <= 0:
            raise ValueError("subsample must be in (0, 1]")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.subsample = float(subsample)
        self.seed = seed

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedClassifier":
        """Boost ``n_estimators`` rounds on ``(X, y)``."""
        X = self._coerce_X(X)
        y = self._coerce_y(y, X.shape[0])
        self.classes_ = np.unique(y)
        k = len(self.classes_)
        codes = np.searchsorted(self.classes_, y)
        n = X.shape[0]
        onehot = np.zeros((n, k))
        onehot[np.arange(n), codes] = 1.0

        rng = as_rng(self.seed)
        # Prior log-odds as the initial raw score.
        prior = np.clip(onehot.mean(axis=0), 1e-12, None)
        self.init_score_ = np.log(prior)
        logits = np.tile(self.init_score_, (n, 1))

        self.estimators_: list[list[DecisionTreeRegressor]] = []
        self.train_losses_: list[float] = []
        for _ in range(self.n_estimators):
            p = _softmax(logits)
            residual = onehot - p  # negative gradient of cross-entropy
            if self.subsample < 1.0:
                m = max(2, int(round(self.subsample * n)))
                rows = rng.choice(n, size=m, replace=False)
            else:
                rows = np.arange(n)
            round_trees: list[DecisionTreeRegressor] = []
            for c in range(k):
                tree = DecisionTreeRegressor(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    seed=rng,
                )
                tree.fit(X[rows], residual[rows, c])
                logits[:, c] += self.learning_rate * tree.predict(X)
                round_trees.append(tree)
            self.estimators_.append(round_trees)
            p = np.clip(_softmax(logits), 1e-12, None)
            self.train_losses_.append(float(-(onehot * np.log(p)).sum() / n))
        self.n_features_in_ = X.shape[1]
        self._mark_fitted()
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Raw additive scores (log-odds space), shape ``(n, n_classes)``."""
        self._check_fitted()
        X = self._coerce_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with {self.n_features_in_}"
            )
        logits = np.tile(self.init_score_, (X.shape[0], 1))
        for round_trees in self.estimators_:
            for c, tree in enumerate(round_trees):
                logits[:, c] += self.learning_rate * tree.predict(X)
        return logits

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Softmax class probabilities."""
        return _softmax(self.decision_function(X))

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Highest-scoring class per row."""
        return self.classes_[self.decision_function(X).argmax(axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Importances averaged over every boosted regression tree."""
        self._check_fitted()
        trees = [t for round_trees in self.estimators_ for t in round_trees]
        return np.mean([t.feature_importances_ for t in trees], axis=0)

    def staged_accuracy(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Accuracy after each boosting round (for learning curves)."""
        self._check_fitted()
        X = self._coerce_X(X)
        y = np.asarray(y)
        logits = np.tile(self.init_score_, (X.shape[0], 1))
        out = np.empty(len(self.estimators_))
        for i, round_trees in enumerate(self.estimators_):
            for c, tree in enumerate(round_trees):
                logits[:, c] += self.learning_rate * tree.predict(X)
            pred = self.classes_[logits.argmax(axis=1)]
            out[i] = float(np.mean(pred == y))
        return out
