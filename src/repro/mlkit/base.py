"""Estimator protocol shared by all mlkit models.

Mirrors the familiar fit/predict convention: ``fit(X, y)`` returns
``self``; attributes learned during fitting carry a trailing underscore;
calling ``predict`` before ``fit`` raises :class:`NotFittedError`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.util.validation import check_array_1d, check_array_2d

__all__ = ["NotFittedError", "Estimator", "ClassifierMixin"]


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


class Estimator:
    """Base class providing fitted-state tracking and input coercion."""

    def _mark_fitted(self) -> None:
        self._fitted = True

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed on this instance."""
        return getattr(self, "_fitted", False)

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted; call fit() first"
            )

    @staticmethod
    def _coerce_X(X: Any) -> np.ndarray:
        X = check_array_2d("X", X, dtype=float)
        if X.shape[0] == 0:
            raise ValueError("X must contain at least one sample")
        if not np.all(np.isfinite(X)):
            raise ValueError("X contains NaN or infinite values")
        return X

    @staticmethod
    def _coerce_y(y: Any, n_samples: int) -> np.ndarray:
        y = check_array_1d("y", y)
        if y.shape[0] != n_samples:
            raise ValueError(
                f"X has {n_samples} samples but y has {y.shape[0]} labels"
            )
        return y


class ClassifierMixin:
    """Adds a default ``score`` (accuracy) to classifiers."""

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy of ``self.predict(X)`` against ``y``."""
        from repro.mlkit.metrics import accuracy_score

        return accuracy_score(y, self.predict(X))
