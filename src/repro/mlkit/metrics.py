"""Evaluation metrics used across the library and the benchmarks."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.util.validation import check_array_1d, check_array_2d

__all__ = ["accuracy_score", "confusion_matrix", "macro_f1_score", "sse", "silhouette_score"]


def _align(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = check_array_1d("y_true", y_true)
    y_pred = check_array_1d("y_pred", y_pred)
    if y_true.shape[0] != y_pred.shape[0]:
        raise ValueError(
            f"y_true has {y_true.shape[0]} entries, y_pred has {y_pred.shape[0]}"
        )
    if y_true.shape[0] == 0:
        raise ValueError("metrics are undefined on empty inputs")
    return y_true, y_pred


def accuracy_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exactly matching labels."""
    y_true, y_pred = _align(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, labels: Optional[Sequence] = None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = #samples with true label ``labels[i]``
    predicted as ``labels[j]``.

    Parameters
    ----------
    labels:
        Label ordering; defaults to the sorted union of both arrays.
    """
    y_true, y_pred = _align(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    else:
        labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    n = len(labels)
    out = np.zeros((n, n), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        if t in index and p in index:
            out[index[t], index[p]] += 1
    return out


def macro_f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Unweighted mean of per-class F1 scores.

    Classes absent from both prediction and truth contribute F1 = 0 only
    if they appear in the union of labels (they cannot, by construction),
    so the score is averaged over observed classes.
    """
    y_true, y_pred = _align(y_true, y_pred)
    cm = confusion_matrix(y_true, y_pred)
    tp = np.diag(cm).astype(float)
    fp = cm.sum(axis=0) - tp
    fn = cm.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2 * tp / denom, 0.0)
    return float(f1.mean())


def sse(X: np.ndarray, centers: np.ndarray, labels: np.ndarray) -> float:
    """Sum of squared distances from each row of ``X`` to its assigned
    cluster center (K-means inertia; the y-axis of the paper's Fig 14)."""
    X = check_array_2d("X", X, dtype=float)
    centers = check_array_2d("centers", centers, dtype=float)
    labels = check_array_1d("labels", labels).astype(int)
    if labels.shape[0] != X.shape[0]:
        raise ValueError("labels must have one entry per row of X")
    if labels.size and (labels.min() < 0 or labels.max() >= centers.shape[0]):
        raise ValueError("labels reference nonexistent centers")
    diff = X - centers[labels]
    return float(np.einsum("ij,ij->", diff, diff))


def silhouette_score(X: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient over all samples.

    For each sample, ``a`` is its mean distance to its own cluster's
    other members and ``b`` the smallest mean distance to another
    cluster; the coefficient is ``(b − a) / max(a, b)``.  A principled
    (if quadratic-cost) alternative to the SSE elbow for choosing K —
    the Fig-14 analysis notes where each criterion succeeds.

    Samples in singleton clusters contribute 0, per convention.
    """
    X = check_array_2d("X", X, dtype=float)
    labels = check_array_1d("labels", labels).astype(int)
    if labels.shape[0] != X.shape[0]:
        raise ValueError("labels must have one entry per row of X")
    if X.shape[0] < 2:
        raise ValueError("need at least 2 samples")
    unique = np.unique(labels)
    if len(unique) < 2:
        raise ValueError("need at least 2 clusters")
    # Pairwise distances (n is small in profiling use; O(n²) is fine).
    sq = np.einsum("ij,ij->i", X, X)
    d2 = sq[:, None] - 2.0 * (X @ X.T) + sq[None, :]
    np.maximum(d2, 0.0, out=d2)
    dist = np.sqrt(d2)

    n = X.shape[0]
    scores = np.zeros(n)
    masks = {c: labels == c for c in unique}
    sizes = {c: int(masks[c].sum()) for c in unique}
    for i in range(n):
        own = labels[i]
        if sizes[own] <= 1:
            continue  # singleton: silhouette 0
        a = dist[i, masks[own]].sum() / (sizes[own] - 1)
        b = min(
            dist[i, masks[c]].mean() for c in unique if c != own
        )
        denom = max(a, b)
        scores[i] = (b - a) / denom if denom > 0 else 0.0
    return float(scores.mean())
