"""K-means clustering with k-means++ initialisation and elbow selection.

This is the clustering engine behind the frame-grained game profiler
(paper §IV-A2): game frames — 5-second resource usage vectors — are
clustered, and the per-game cluster count is chosen at the elbow of the
SSE-vs-K curve (paper Fig 14).

Implementation notes (per the HPC guide): distance computation uses the
expanded ``|x - c|² = |x|² - 2 x·c + |c|²`` form so the inner loop is a
single GEMM; no Python-level loops over samples.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.mlkit.base import Estimator
from repro.util.rng import Seed, as_rng
from repro.util.validation import check_positive

__all__ = ["KMeans", "sse_curve", "elbow_k"]


def _pairwise_sq_dists(X: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances, shape ``(n_samples, n_centers)``."""
    x2 = np.einsum("ij,ij->i", X, X)[:, None]
    c2 = np.einsum("ij,ij->i", C, C)[None, :]
    d = x2 - 2.0 * (X @ C.T) + c2
    np.maximum(d, 0.0, out=d)  # clamp tiny negatives from cancellation
    return d


def _kmeanspp_init(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ seeding: spread initial centers by D² sampling."""
    n = X.shape[0]
    centers = np.empty((k, X.shape[1]))
    centers[0] = X[rng.integers(n)]
    closest = _pairwise_sq_dists(X, centers[:1]).ravel()
    for i in range(1, k):
        total = closest.sum()
        if total <= 0:
            # All points coincide with chosen centers; fill with copies.
            centers[i:] = X[rng.integers(n, size=k - i)]
            break
        probs = closest / total
        idx = rng.choice(n, p=probs)
        centers[i] = X[idx]
        np.minimum(closest, _pairwise_sq_dists(X, centers[i : i + 1]).ravel(), out=closest)
    return centers


class KMeans(Estimator):
    """Lloyd's K-means.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``K >= 1``.
    n_init:
        Number of independent k-means++ restarts; the run with the lowest
        SSE wins.
    max_iter:
        Maximum Lloyd iterations per restart.
    tol:
        Relative center-shift tolerance for convergence.
    seed:
        Seed or generator.

    Attributes
    ----------
    cluster_centers_:
        ``(K, D)`` final centers.
    labels_:
        Training-set assignments.
    inertia_:
        Training-set SSE (the paper's Fig-14 y-axis).
    n_iter_:
        Iterations used by the winning restart.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 8,
        max_iter: int = 300,
        tol: float = 1e-6,
        seed: Seed = None,
    ):
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        check_positive("tol", tol)
        self.n_clusters = int(n_clusters)
        self.n_init = int(n_init)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "KMeans":
        """Cluster the rows of ``X``."""
        X = self._coerce_X(X)
        n, d = X.shape
        if self.n_clusters > n:
            raise ValueError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n}"
            )
        rng = as_rng(self.seed)

        best: Optional[Tuple[float, np.ndarray, np.ndarray, int]] = None
        for _ in range(self.n_init):
            centers, labels, inertia, n_iter = self._lloyd(X, rng)
            if best is None or inertia < best[0]:
                best = (inertia, centers, labels, n_iter)
        assert best is not None
        self.inertia_, self.cluster_centers_, self.labels_, self.n_iter_ = best
        self._mark_fitted()
        return self

    def _lloyd(
        self, X: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, float, int]:
        centers = _kmeanspp_init(X, self.n_clusters, rng)
        labels = np.zeros(X.shape[0], dtype=np.int64)
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            dists = _pairwise_sq_dists(X, centers)
            labels = dists.argmin(axis=1)
            new_centers = np.empty_like(centers)
            counts = np.bincount(labels, minlength=self.n_clusters).astype(float)
            sums = np.zeros_like(centers)
            np.add.at(sums, labels, X)
            empty = counts == 0
            nonempty = ~empty
            new_centers[nonempty] = sums[nonempty] / counts[nonempty, None]
            if empty.any():
                # Re-seed empty clusters at the points farthest from their
                # current center — the standard fix that keeps K clusters
                # alive on degenerate data.
                far = dists[np.arange(X.shape[0]), labels].argsort()[::-1]
                for j, ci in enumerate(np.flatnonzero(empty)):
                    new_centers[ci] = X[far[j % X.shape[0]]]
            shift = float(np.linalg.norm(new_centers - centers))
            scale = float(np.linalg.norm(centers)) or 1.0
            centers = new_centers
            if shift / scale <= self.tol:
                break
        dists = _pairwise_sq_dists(X, centers)
        labels = dists.argmin(axis=1)
        inertia = float(dists[np.arange(X.shape[0]), labels].sum())
        return centers, labels, inertia, n_iter

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Assign each row of ``X`` to its nearest fitted center."""
        self._check_fitted()
        X = self._coerce_X(X)
        if X.shape[1] != self.cluster_centers_.shape[1]:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with "
                f"{self.cluster_centers_.shape[1]}"
            )
        return _pairwise_sq_dists(X, self.cluster_centers_).argmin(axis=1)

    def fit_predict(self, X: np.ndarray) -> np.ndarray:
        """Fit and return the training labels."""
        return self.fit(X).labels_

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Euclidean distances to every center, shape ``(n, K)``."""
        self._check_fitted()
        X = self._coerce_X(X)
        return np.sqrt(_pairwise_sq_dists(X, self.cluster_centers_))

    def score(self, X: np.ndarray) -> float:
        """Negative SSE of ``X`` under the fitted centers (higher is better)."""
        self._check_fitted()
        X = self._coerce_X(X)
        d = _pairwise_sq_dists(X, self.cluster_centers_)
        return -float(d.min(axis=1).sum())


def sse_curve(
    X: np.ndarray, k_values: Sequence[int], *, seed: Seed = None, n_init: int = 8
) -> np.ndarray:
    """SSE (inertia) for each K in ``k_values`` — the paper's Fig-14 curve.

    Returns an array aligned with ``k_values``.
    """
    k_values = list(k_values)
    if not k_values:
        raise ValueError("k_values must be non-empty")
    rng = as_rng(seed)
    out = np.empty(len(k_values))
    for i, k in enumerate(k_values):
        out[i] = KMeans(k, n_init=n_init, seed=rng).fit(X).inertia_
    return out


def elbow_k(
    k_values: Sequence[int],
    sses: Sequence[float],
    *,
    tol: float = 0.03,
    method: str = "drop",
) -> int:
    """Pick the elbow of an SSE-vs-K curve (the paper's Fig-14 criterion).

    The paper chooses K where "the SSEs remain few changes" beyond it —
    the inflection where adding a cluster stops buying a real SSE drop.

    ``method="drop"`` (default) finds the *last structural* drop: the
    largest K whose incremental drop ``drop(K) = sse(K-1) - sse(K)`` is
    both (a) at least twice the following drop and (b) at least
    ``tol``-fraction of the curve's total span.  Splitting a real cluster
    pair yields a drop well above the subsequent noise-splitting drops,
    so the criterion is robust to residual within-cluster noise.  On the
    paper's games it recovers the counts they chose by inspection
    (Contra 2, CSGO 4, Genshin 4, DOTA2 5, Devil May Cry 6).

    ``method="flatten"`` returns the smallest K whose *remaining excess*
    SSE — ``(sse(K) - sse(K_max)) / (sse(K_min) - sse(K_max))`` — drops
    below ``tol``.

    ``method="chord"`` uses the kneedle-style maximum-distance-to-chord
    criterion (classic, but biased toward small K on steeply convex
    curves).
    """
    k = np.asarray(list(k_values), dtype=float)
    s = np.asarray(list(sses), dtype=float)
    if k.shape != s.shape or k.size < 3:
        raise ValueError("need >= 3 (k, sse) points with matching lengths")
    if np.any(np.diff(k) <= 0):
        raise ValueError("k_values must be strictly increasing")
    span = s[0] - s[-1]
    if span <= 0:
        return int(k[0])
    if method == "drop":
        drops = s[:-1] - s[1:]  # drops[i] = drop *into* k[i+1]
        np.maximum(drops, 0.0, out=drops)
        floor = max(tol, 1e-6) * span
        best = 0  # default: the first drop is always into k[1]
        for i in range(len(drops) - 1):
            if drops[i] >= 2.0 * drops[i + 1] and drops[i] >= floor:
                best = i
        return int(k[best + 1])
    if method == "flatten":
        excess = (s - s[-1]) / span
        below = np.flatnonzero(excess <= tol)
        if below.size:
            return int(k[below[0]])
        return int(k[-1])
    if method == "chord":
        kn = (k - k[0]) / (k[-1] - k[0])
        sn = (s - s[-1]) / span
        gap = (1.0 - kn) - sn
        return int(k[np.argmax(gap)])
    raise ValueError(f"method must be 'drop', 'flatten' or 'chord', got {method!r}")
