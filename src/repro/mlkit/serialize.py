"""Serialization of fitted mlkit models to/from JSON-compatible dicts.

The paper stresses that "contention feature profiling and model training
only need to be performed once" — which only pays off if the trained
artifacts can be persisted.  Every fitted estimator round-trips through a
plain dict (``model_to_dict`` / ``model_from_dict``) containing only
JSON-safe types, so a :class:`~repro.core.pipeline.GameProfile` can be
written to disk and reloaded on any host.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.mlkit._cart import Node
from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.gbdt import GradientBoostedClassifier
from repro.mlkit.regression_tree import DecisionTreeRegressor
from repro.mlkit.tree import DecisionTreeClassifier

__all__ = ["model_to_dict", "model_from_dict"]


def _classes_to_list(classes: np.ndarray) -> list:
    return [c.item() if hasattr(c, "item") else c for c in classes]


def model_to_dict(model: Any) -> Dict[str, Any]:
    """Serialize a *fitted* mlkit model to a JSON-compatible dict."""
    if isinstance(model, DecisionTreeClassifier):
        model._check_fitted()
        return {
            "kind": "dtc",
            "classes": _classes_to_list(model.classes_),
            "n_features": int(model.n_features_in_),
            "root": model.root_.to_dict(),
        }
    if isinstance(model, DecisionTreeRegressor):
        model._check_fitted()
        return {
            "kind": "dtr",
            "n_features": int(model.n_features_in_),
            "root": model.root_.to_dict(),
        }
    if isinstance(model, RandomForestClassifier):
        model._check_fitted()
        return {
            "kind": "rf",
            "classes": _classes_to_list(model.classes_),
            "n_features": int(model.n_features_in_),
            "trees": [model_to_dict(t) for t in model.estimators_],
        }
    if isinstance(model, GradientBoostedClassifier):
        model._check_fitted()
        return {
            "kind": "gbdt",
            "classes": _classes_to_list(model.classes_),
            "n_features": int(model.n_features_in_),
            "learning_rate": float(model.learning_rate),
            "init_score": np.asarray(model.init_score_).tolist(),
            "rounds": [
                [model_to_dict(t) for t in round_trees]
                for round_trees in model.estimators_
            ],
        }
    raise TypeError(f"cannot serialize model of type {type(model).__name__}")


def model_from_dict(data: Dict[str, Any]) -> Any:
    """Rebuild a fitted mlkit model from :func:`model_to_dict` output."""
    kind = data.get("kind")
    if kind == "dtc":
        model = DecisionTreeClassifier()
        model.classes_ = np.asarray(data["classes"])
        model.n_features_in_ = int(data["n_features"])
        model.root_ = Node.from_dict(data["root"])
        model._mark_fitted()
        return model
    if kind == "dtr":
        model = DecisionTreeRegressor()
        model.n_features_in_ = int(data["n_features"])
        model.root_ = Node.from_dict(data["root"])
        model._mark_fitted()
        return model
    if kind == "rf":
        model = RandomForestClassifier(max(len(data["trees"]), 1))
        model.classes_ = np.asarray(data["classes"])
        model.n_features_in_ = int(data["n_features"])
        model.estimators_ = [model_from_dict(t) for t in data["trees"]]
        model._mark_fitted()
        return model
    if kind == "gbdt":
        model = GradientBoostedClassifier(
            max(len(data["rounds"]), 1), learning_rate=float(data["learning_rate"])
        )
        model.classes_ = np.asarray(data["classes"])
        model.n_features_in_ = int(data["n_features"])
        model.init_score_ = np.asarray(data["init_score"], dtype=float)
        model.estimators_ = [
            [model_from_dict(t) for t in round_trees]
            for round_trees in data["rounds"]
        ]
        model.train_losses_ = []
        model._mark_fitted()
        return model
    raise ValueError(f"unknown model kind {kind!r}")
