"""Feature preprocessing: label encoding, one-hot, standardisation.

The stage predictor's features are categorical stage-type histories;
:class:`LabelEncoder` and :class:`OneHotEncoder` turn those into dense
numeric matrices the tree models consume.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.mlkit.base import Estimator
from repro.util.validation import check_array_1d, check_array_2d

__all__ = ["LabelEncoder", "OneHotEncoder", "StandardScaler"]


class LabelEncoder(Estimator):
    """Map arbitrary hashable labels to contiguous integers ``0..K-1``.

    Attributes
    ----------
    classes_:
        Sorted array of the distinct labels seen during :meth:`fit`.
    """

    def fit(self, y: Sequence[Any]) -> "LabelEncoder":
        """Learn the label set."""
        y = np.asarray(y)
        if y.size == 0:
            raise ValueError("cannot fit LabelEncoder on empty input")
        self.classes_ = np.unique(y)
        self._index = {c: i for i, c in enumerate(self.classes_.tolist())}
        self._mark_fitted()
        return self

    def transform(self, y: Sequence[Any]) -> np.ndarray:
        """Encode labels; unseen labels raise ``ValueError``."""
        self._check_fitted()
        out = np.empty(len(y), dtype=np.int64)
        for i, label in enumerate(np.asarray(y).tolist()):
            try:
                out[i] = self._index[label]
            except KeyError:
                raise ValueError(f"unseen label {label!r}") from None
        return out

    def fit_transform(self, y: Sequence[Any]) -> np.ndarray:
        """Fit, then encode."""
        return self.fit(y).transform(y)

    def inverse_transform(self, codes: Sequence[int]) -> np.ndarray:
        """Decode integer codes back to the original labels."""
        self._check_fitted()
        codes = check_array_1d("codes", codes).astype(int)
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.classes_)):
            raise ValueError("codes out of range for fitted classes")
        return self.classes_[codes]

    @property
    def n_classes(self) -> int:
        """Number of distinct labels seen at fit."""
        self._check_fitted()
        return len(self.classes_)


class OneHotEncoder(Estimator):
    """One-hot encode an integer category column-wise.

    Fit on a 2-D integer matrix; each column gets its own category set.
    """

    def fit(self, X: Sequence[Sequence[Any]]) -> "OneHotEncoder":
        """Learn per-column category sets."""
        X = np.asarray(X)
        if X.ndim != 2 or X.size == 0:
            raise ValueError(f"X must be a non-empty 2-D array, got shape {X.shape}")
        self.categories_ = [np.unique(X[:, j]) for j in range(X.shape[1])]
        self._n_in = X.shape[1]
        self._mark_fitted()
        return self

    def transform(self, X: Sequence[Sequence[Any]]) -> np.ndarray:
        """Return the dense one-hot matrix; unseen values map to all-zeros."""
        self._check_fitted()
        X = np.asarray(X)
        if X.ndim != 2 or X.shape[1] != self._n_in:
            raise ValueError(f"expected shape (*, {self._n_in}), got {X.shape}")
        blocks = []
        for j, cats in enumerate(self.categories_):
            block = (X[:, j][:, None] == cats[None, :]).astype(float)
            blocks.append(block)
        return np.concatenate(blocks, axis=1)

    def fit_transform(self, X: Sequence[Sequence[Any]]) -> np.ndarray:
        """Fit, then encode."""
        return self.fit(X).transform(X)

    @property
    def n_features_out(self) -> int:
        """Width of the one-hot output."""
        self._check_fitted()
        return int(sum(len(c) for c in self.categories_))


class StandardScaler(Estimator):
    """Column-wise standardisation to zero mean, unit variance.

    Constant columns are left centred but unscaled (divisor forced to 1)
    so the transform never divides by zero.
    """

    def fit(self, X: np.ndarray) -> "StandardScaler":
        """Learn per-column mean and scale."""
        X = check_array_2d("X", X, dtype=float)
        if X.shape[0] == 0:
            raise ValueError("cannot fit StandardScaler on empty input")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        self._mark_fitted()
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Standardise columns."""
        self._check_fitted()
        X = check_array_2d("X", X, dtype=float)
        if X.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"expected {self.mean_.shape[0]} features, got {X.shape[1]}"
            )
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        """Fit, then standardise."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        self._check_fitted()
        X = check_array_2d("X", X, dtype=float)
        return X * self.scale_ + self.mean_
