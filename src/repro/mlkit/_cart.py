"""Shared CART machinery for the classification and regression trees.

A tree is grown depth-first.  The split search is fully vectorized: for a
node with ``n`` samples and ``d`` candidate features it costs
``O(d · n log n)`` (one argsort per feature) with no Python loop over
samples, per the HPC guide.  The per-task parts — how impurity is scored
and what a leaf stores — are supplied by the caller as callbacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "Node",
    "grow_tree",
    "predict_leaf_values",
    "tree_depth",
    "count_leaves",
    "feature_importances",
    "best_split_classification",
    "best_split_regression",
]


@dataclass
class Node:
    """One tree node.

    Internal nodes carry ``feature``/``threshold`` and children; leaves
    carry ``value`` (class-probability vector or scalar mean) and have
    ``feature == -1``.
    """

    feature: int = -1
    threshold: float = 0.0
    left: Optional["Node"] = None
    right: Optional["Node"] = None
    value: Optional[np.ndarray] = None
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        """Whether this node stores a value instead of a split."""
        return self.feature < 0

    def to_dict(self) -> dict:
        """JSON-serializable form (recursive)."""
        out = {
            "feature": int(self.feature),
            "threshold": float(self.threshold),
            "n_samples": int(self.n_samples),
            "impurity": float(self.impurity),
            "value": np.asarray(self.value, dtype=float).tolist(),
        }
        if not self.is_leaf:
            assert self.left is not None and self.right is not None
            out["left"] = self.left.to_dict()
            out["right"] = self.right.to_dict()
        return out

    @staticmethod
    def from_dict(data: dict) -> "Node":
        """Rebuild a node tree from :meth:`to_dict` output."""
        node = Node(
            feature=int(data["feature"]),
            threshold=float(data["threshold"]),
            n_samples=int(data["n_samples"]),
            impurity=float(data["impurity"]),
            value=np.asarray(data["value"], dtype=float),
        )
        if not node.is_leaf:
            node.left = Node.from_dict(data["left"])
            node.right = Node.from_dict(data["right"])
        return node


# A splitter receives (X_node, y_node, feature_indices) and returns
# (feature, threshold, gain) for the best admissible split, or None.
Splitter = Callable[[np.ndarray, np.ndarray, np.ndarray], Optional[Tuple[int, float, float]]]
# A leaf factory receives y_node and returns the stored leaf value.
LeafValue = Callable[[np.ndarray], np.ndarray]
# An impurity function receives y_node and returns its impurity.
Impurity = Callable[[np.ndarray], float]


def grow_tree(
    X: np.ndarray,
    y: np.ndarray,
    *,
    splitter: Splitter,
    leaf_value: LeafValue,
    impurity: Impurity,
    max_depth: Optional[int],
    min_samples_split: int,
    min_samples_leaf: int,
    max_features: Optional[int],
    rng: np.random.Generator,
) -> Node:
    """Grow a CART tree over ``(X, y)`` and return its root.

    ``max_features`` selects a fresh random feature subset at every node
    (random-forest style); ``None`` uses all features.
    """
    n_features = X.shape[1]

    def build(idx: np.ndarray, depth: int) -> Node:
        y_node = y[idx]
        node = Node(
            n_samples=idx.size,
            impurity=impurity(y_node),
            value=leaf_value(y_node),
        )
        if (
            idx.size < min_samples_split
            or idx.size < 2 * min_samples_leaf
            or (max_depth is not None and depth >= max_depth)
            or node.impurity <= 1e-12
        ):
            return node

        if max_features is not None and max_features < n_features:
            feats = rng.choice(n_features, size=max_features, replace=False)
        else:
            feats = np.arange(n_features)

        found = splitter(X[idx], y_node, feats)
        if found is None:
            return node
        feature, threshold, _gain = found
        mask = X[idx, feature] <= threshold
        left_idx = idx[mask]
        right_idx = idx[~mask]
        if left_idx.size < min_samples_leaf or right_idx.size < min_samples_leaf:
            return node
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = build(left_idx, depth + 1)
        node.right = build(right_idx, depth + 1)
        return node

    return build(np.arange(X.shape[0]), 0)


def predict_leaf_values(root: Node, X: np.ndarray) -> np.ndarray:
    """Route every row of ``X`` to its leaf and stack the leaf values.

    Traversal is level-by-level over index partitions rather than
    row-by-row, so the cost is ``O(depth)`` vector operations instead of
    ``O(n · depth)`` Python steps.
    """
    first = root.value
    assert first is not None
    out = np.empty((X.shape[0],) + np.shape(first), dtype=float)
    stack = [(root, np.arange(X.shape[0]))]
    while stack:
        node, idx = stack.pop()
        if idx.size == 0:
            continue
        if node.is_leaf:
            out[idx] = node.value
            continue
        mask = X[idx, node.feature] <= node.threshold
        assert node.left is not None and node.right is not None
        stack.append((node.left, idx[mask]))
        stack.append((node.right, idx[~mask]))
    return out


def feature_importances(root: Node, n_features: int) -> np.ndarray:
    """Impurity-decrease feature importances, normalised to sum to 1.

    Each split contributes ``n·imp − n_left·imp_left − n_right·imp_right``
    to its feature (the classic CART importance).  All-zero (a lone leaf)
    stays all-zero rather than dividing by zero.
    """
    if n_features < 1:
        raise ValueError(f"n_features must be >= 1, got {n_features}")
    out = np.zeros(n_features)

    def visit(node: Node) -> None:
        if node.is_leaf:
            return
        assert node.left is not None and node.right is not None
        gain = (
            node.n_samples * node.impurity
            - node.left.n_samples * node.left.impurity
            - node.right.n_samples * node.right.impurity
        )
        out[node.feature] += max(gain, 0.0)
        visit(node.left)
        visit(node.right)

    visit(root)
    total = out.sum()
    if total > 0:
        out /= total
    return out


def tree_depth(root: Node) -> int:
    """Depth of the tree (a lone leaf has depth 0)."""
    if root.is_leaf:
        return 0
    assert root.left is not None and root.right is not None
    return 1 + max(tree_depth(root.left), tree_depth(root.right))


def count_leaves(root: Node) -> int:
    """Number of leaves."""
    if root.is_leaf:
        return 1
    assert root.left is not None and root.right is not None
    return count_leaves(root.left) + count_leaves(root.right)


# ----------------------------------------------------------------------
# Vectorized split searches
# ----------------------------------------------------------------------

def best_split_classification(
    Xn: np.ndarray, yn: np.ndarray, feats: np.ndarray, n_classes: int,
    criterion: str, min_samples_leaf: int,
) -> Optional[Tuple[int, float, float]]:
    """Best (feature, threshold, gain) under Gini or entropy impurity.

    ``yn`` must hold integer class codes in ``[0, n_classes)``.
    """
    n = yn.size
    onehot = np.zeros((n, n_classes))
    onehot[np.arange(n), yn] = 1.0

    if criterion == "gini":
        def node_impurity(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
            with np.errstate(invalid="ignore", divide="ignore"):
                p = counts / totals[..., None]
            imp = 1.0 - np.einsum("...k,...k->...", p, p)
            return np.where(totals > 0, imp, 0.0)
    elif criterion == "entropy":
        def node_impurity(counts: np.ndarray, totals: np.ndarray) -> np.ndarray:
            with np.errstate(invalid="ignore", divide="ignore"):
                p = counts / totals[..., None]
                safe = np.where(p > 0, p, 1.0)
                logp = np.where(p > 0, np.log2(safe), 0.0)
            imp = -np.einsum("...k,...k->...", p, logp)
            return np.where(totals > 0, imp, 0.0)
    else:
        raise ValueError(f"criterion must be 'gini' or 'entropy', got {criterion!r}")

    total_counts = onehot.sum(axis=0)
    parent_imp = float(node_impurity(total_counts[None, :], np.array([float(n)]))[0])

    best: Optional[Tuple[int, float, float]] = None
    for f in feats:
        xf = Xn[:, f]
        order = np.argsort(xf, kind="stable")
        xs = xf[order]
        left = np.cumsum(onehot[order], axis=0)[:-1]  # counts left of split i (size i+1)
        nl = np.arange(1, n, dtype=float)
        nr = n - nl
        right = total_counts[None, :] - left
        valid = (xs[1:] != xs[:-1]) & (nl >= min_samples_leaf) & (nr >= min_samples_leaf)
        if not valid.any():
            continue
        child = (nl * node_impurity(left, nl) + nr * node_impurity(right, nr)) / n
        gain = parent_imp - child
        gain[~valid] = -np.inf
        i = int(np.argmax(gain))
        g = float(gain[i])
        if g <= 1e-12:
            continue
        threshold = 0.5 * (xs[i] + xs[i + 1])
        if best is None or g > best[2]:
            best = (int(f), float(threshold), g)
    return best


def best_split_regression(
    Xn: np.ndarray, yn: np.ndarray, feats: np.ndarray, min_samples_leaf: int,
) -> Optional[Tuple[int, float, float]]:
    """Best (feature, threshold, gain) under squared-error impurity."""
    n = yn.size
    total_sum = float(yn.sum())
    total_sq = float(np.dot(yn, yn))
    parent_sse = total_sq - total_sum**2 / n

    best: Optional[Tuple[int, float, float]] = None
    for f in feats:
        xf = Xn[:, f]
        order = np.argsort(xf, kind="stable")
        xs = xf[order]
        ys = yn[order]
        csum = np.cumsum(ys)[:-1]
        csq = np.cumsum(ys * ys)[:-1]
        nl = np.arange(1, n, dtype=float)
        nr = n - nl
        sse_left = csq - csum**2 / nl
        rs = total_sum - csum
        rq = total_sq - csq
        sse_right = rq - rs**2 / nr
        valid = (xs[1:] != xs[:-1]) & (nl >= min_samples_leaf) & (nr >= min_samples_leaf)
        if not valid.any():
            continue
        gain = parent_sse - (sse_left + sse_right)
        gain[~valid] = -np.inf
        i = int(np.argmax(gain))
        g = float(gain[i])
        if g <= 1e-12:
            continue
        threshold = 0.5 * (xs[i] + xs[i + 1])
        if best is None or g > best[2]:
            best = (int(f), float(threshold), g)
    return best
