"""Random forest classifier — the paper's RF backend.

Bootstrap-aggregated CART trees with per-node feature subsampling.  The
paper recommends RF "for simple, small tasks" (§IV-B2, *Replacing
model*); the predictor's model-replacement policy cycles to it when DTC
keeps mispredicting.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.mlkit.base import ClassifierMixin, Estimator
from repro.mlkit.tree import DecisionTreeClassifier
from repro.util.rng import Seed, spawn_rngs

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Estimator, ClassifierMixin):
    """Bagged CART ensemble.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf, criterion:
        Passed to each tree.
    max_features:
        Per-node feature subsample; ``"sqrt"`` (default), ``None`` (all),
        or an int.
    bootstrap:
        Sample each tree's training set with replacement.
    seed:
        Seed/generator; each tree gets an independent child stream.

    Attributes
    ----------
    classes_:
        Distinct labels.
    estimators_:
        The fitted trees.
    """

    def __init__(
        self,
        n_estimators: int = 50,
        *,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: Union[str, int, None] = "sqrt",
        bootstrap: bool = True,
        seed: Seed = None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        if not (max_features is None or max_features == "sqrt" or (
            isinstance(max_features, (int, np.integer)) and max_features >= 1
        )):
            raise ValueError(
                f"max_features must be None, 'sqrt' or a positive int, got {max_features!r}"
            )
        self.n_estimators = int(n_estimators)
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.max_features = max_features
        self.bootstrap = bool(bootstrap)
        self.seed = seed

    def _resolve_max_features(self, n_features: int) -> Optional[int]:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        return min(int(self.max_features), n_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        """Fit ``n_estimators`` trees on bootstrap replicates of ``(X, y)``."""
        X = self._coerce_X(X)
        y = self._coerce_y(y, X.shape[0])
        self.classes_ = np.unique(y)
        codes = np.searchsorted(self.classes_, y)
        n = X.shape[0]
        mf = self._resolve_max_features(X.shape[1])
        rngs = spawn_rngs(self.seed, self.n_estimators)

        self.estimators_ = []
        for rng in rngs:
            if self.bootstrap:
                idx = rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                criterion=self.criterion,
                max_features=mf,
                seed=rng,
            )
            # Fit on codes so every tree shares the same class indexing even
            # if its bootstrap sample misses a class.
            tree.fit(X[idx], codes[idx])
            self.estimators_.append(tree)
        self.n_features_in_ = X.shape[1]
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Forest-averaged class probabilities, shape ``(n, n_classes)``."""
        self._check_fitted()
        X = self._coerce_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with {self.n_features_in_}"
            )
        n_classes = len(self.classes_)
        acc = np.zeros((X.shape[0], n_classes))
        for tree in self.estimators_:
            proba = tree.predict_proba(X)
            # Map the tree's (possibly smaller) class set into the full one.
            cols = tree.classes_.astype(int)
            acc[:, cols] += proba
        acc /= len(self.estimators_)
        return acc

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-probability class for each row."""
        return self.classes_[self.predict_proba(X).argmax(axis=1)]

    @property
    def feature_importances_(self) -> np.ndarray:
        """Forest-averaged impurity-decrease importances."""
        self._check_fitted()
        return np.mean([t.feature_importances_ for t in self.estimators_], axis=0)
