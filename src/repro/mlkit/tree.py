"""CART decision-tree classifier — the paper's DTC backend.

The stage predictor (§IV-B) offers three interchangeable models; the
Decision Tree Classifier is the default and, per the paper's Fig 15,
reaches > 92 % next-stage accuracy on most games.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mlkit._cart import (
    best_split_classification,
    count_leaves,
    feature_importances,
    grow_tree,
    predict_leaf_values,
    tree_depth,
)
from repro.mlkit.base import ClassifierMixin, Estimator
from repro.util.rng import Seed, as_rng
from repro.util.validation import check_in

__all__ = ["DecisionTreeClassifier"]


class DecisionTreeClassifier(Estimator, ClassifierMixin):
    """CART classifier with Gini or entropy impurity.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until pure or exhausted.
    min_samples_split:
        Minimum node size eligible for splitting.
    min_samples_leaf:
        Minimum samples in each child of a split.
    criterion:
        ``"gini"`` or ``"entropy"``.
    max_features:
        Features considered per node; ``None`` = all, an int = that many
        random features (used by the random forest).
    seed:
        Seed/generator for feature subsampling.

    Attributes
    ----------
    classes_:
        Distinct labels in training order (sorted).
    root_:
        The fitted tree root.
    """

    def __init__(
        self,
        *,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        criterion: str = "gini",
        max_features: Optional[int] = None,
        seed: Seed = None,
    ):
        if max_depth is not None and max_depth < 1:
            raise ValueError(f"max_depth must be >= 1 or None, got {max_depth}")
        if min_samples_split < 2:
            raise ValueError(f"min_samples_split must be >= 2, got {min_samples_split}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        if max_features is not None and max_features < 1:
            raise ValueError(f"max_features must be >= 1 or None, got {max_features}")
        check_in("criterion", criterion, ("gini", "entropy"))
        self.max_depth = max_depth
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.criterion = criterion
        self.max_features = max_features
        self.seed = seed

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeClassifier":
        """Grow the tree on ``(X, y)``; labels may be any hashable values."""
        X = self._coerce_X(X)
        y = self._coerce_y(y, X.shape[0])
        self.classes_, codes = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        rng = as_rng(self.seed)

        def splitter(Xn, yn, feats):
            return best_split_classification(
                Xn, yn, feats, n_classes, self.criterion, self.min_samples_leaf
            )

        def leaf_value(yn):
            counts = np.bincount(yn, minlength=n_classes).astype(float)
            return counts / counts.sum()

        def impurity(yn):
            p = np.bincount(yn, minlength=n_classes) / yn.size
            if self.criterion == "gini":
                return float(1.0 - np.dot(p, p))
            nz = p[p > 0]
            return float(-(nz * np.log2(nz)).sum())

        mf = self.max_features
        if mf is not None:
            mf = min(mf, X.shape[1])
        self.root_ = grow_tree(
            X,
            codes,
            splitter=splitter,
            leaf_value=leaf_value,
            impurity=impurity,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=mf,
            rng=rng,
        )
        self.n_features_in_ = X.shape[1]
        self._mark_fitted()
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Class-probability estimates, shape ``(n, n_classes)``."""
        self._check_fitted()
        X = self._coerce_X(X)
        if X.shape[1] != self.n_features_in_:
            raise ValueError(
                f"X has {X.shape[1]} features; model was fitted with {self.n_features_in_}"
            )
        return predict_leaf_values(self.root_, X)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class for each row."""
        proba = self.predict_proba(X)  # raises NotFittedError when unfitted
        return self.classes_[proba.argmax(axis=1)]

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Fitted tree depth."""
        self._check_fitted()
        return tree_depth(self.root_)

    @property
    def n_leaves(self) -> int:
        """Number of leaves in the fitted tree."""
        self._check_fitted()
        return count_leaves(self.root_)

    @property
    def feature_importances_(self) -> np.ndarray:
        """Impurity-decrease importances, normalised to sum to 1."""
        self._check_fitted()
        return feature_importances(self.root_, self.n_features_in_)
