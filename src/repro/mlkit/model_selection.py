"""Dataset splitting utilities (train/test split, k-fold).

The paper trains on a random 75 % of the generated samples and tests on
the remaining 25 % (§V-D2); :func:`train_test_split` with
``test_size=0.25`` reproduces that protocol.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

from repro.util.rng import Seed, as_rng
from repro.util.validation import check_fraction

__all__ = ["train_test_split", "KFold"]


def train_test_split(
    X: np.ndarray,
    y: np.ndarray,
    *,
    test_size: float = 0.25,
    seed: Seed = None,
    stratify: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Randomly partition ``(X, y)`` into train and test subsets.

    Parameters
    ----------
    test_size:
        Fraction of samples assigned to the test set, in ``(0, 1)``.
    seed:
        Seed or generator for the shuffle.
    stratify:
        When true, split each class of ``y`` proportionally so rare stage
        types are represented in both subsets.

    Returns
    -------
    X_train, X_test, y_train, y_test
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    check_fraction("test_size", test_size, inclusive=False)
    rng = as_rng(seed)

    if stratify:
        test_idx_parts = []
        for label in np.unique(y):
            idx = np.flatnonzero(y == label)
            rng.shuffle(idx)
            n_test = int(round(len(idx) * test_size))
            # Keep at least one sample on each side when the class allows it.
            if len(idx) >= 2:
                n_test = min(max(n_test, 1), len(idx) - 1)
            else:
                n_test = 0
            test_idx_parts.append(idx[:n_test])
        test_idx = np.concatenate(test_idx_parts) if test_idx_parts else np.array([], int)
        mask = np.zeros(n, dtype=bool)
        mask[test_idx] = True
    else:
        perm = rng.permutation(n)
        n_test = min(max(int(round(n * test_size)), 1), n - 1)
        mask = np.zeros(n, dtype=bool)
        mask[perm[:n_test]] = True

    return X[~mask], X[mask], y[~mask], y[mask]


class KFold:
    """Deterministic k-fold cross-validation index generator.

    Parameters
    ----------
    n_splits:
        Number of folds, ``>= 2``.
    shuffle:
        Shuffle indices before folding.
    seed:
        Seed for the shuffle.
    """

    def __init__(self, n_splits: int = 5, *, shuffle: bool = True, seed: Seed = None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = int(n_splits)
        self.shuffle = bool(shuffle)
        self.seed = seed

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_idx, test_idx)`` pairs over ``range(n_samples)``."""
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        idx = np.arange(n_samples)
        if self.shuffle:
            as_rng(self.seed).shuffle(idx)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test
