"""Command-line interface.

Four subcommands cover the operator workflow the paper describes:

* ``cocg catalog`` — list the evaluated games and their structure;
* ``cocg profile GAME -o FILE`` — run the offline pipeline once and
  persist the artifact (frame clustering + stage library + trained
  predictors);
* ``cocg colocate GAME [GAME …]`` — run a co-location experiment under a
  chosen strategy and print throughput/QoS;
* ``cocg fleet GAME [GAME …]`` — dispatch Poisson arrivals over a small
  heterogeneous fleet; ``--regions N`` runs the fleet-of-fleets instead:
  N independent regional shards behind the consistent-hash session
  router, merged into one cross-shard digest (``docs/FLEET.md``);
* ``cocg serve GAME [GAME …]`` — the fleet behind the serve-layer
  admission gateway: bounded queues, rate limiting, micro-batched
  Algorithm-1 dispatch, per-category SLO report (``docs/SERVE.md``);
* ``cocg chaos GAME [GAME …]`` — the fleet experiment under an injected
  fault plan, reported against the fault-free run (``docs/FAULTS.md``);
* ``cocg obs GAME [GAME …]`` — run a gateway-fronted experiment with the
  deterministic observability pipeline attached and export
  ``metrics.prom`` + ``trace.json`` (``docs/OBSERVABILITY.md``);
  ``--check-determinism`` runs twice and verifies the artifacts are
  byte-identical;
* ``cocg record GAME [GAME …] -o FILE`` — run a gateway-fronted fleet
  experiment with a trace recorder attached and persist the run as a
  versioned ``.cgtrace`` file (``docs/TRACE.md``);
* ``cocg replay TRACE`` — rebuild the fleet from a trace's header and
  replay its recorded workload; non-zero exit unless the replayed fleet
  telemetry digest matches the recorded one byte-for-byte;
* ``cocg corpus list|generate`` — list the shipped workload scenarios or
  regenerate their ``.cgtrace`` files under ``corpus/``;
* ``cocg lint [PATH …]`` — run the CoCG invariant checker
  (:mod:`repro.lint`, per-file rules CG001–CG009 plus the
  whole-program rules CG010–CG014 and the effect system
  CG015–CG018) over the codebase.

Diagnostics (bad plans, unknown games/scenarios, digest mismatches) go
to stderr; stdout carries only the requested report, so piping
``cocg … | tee`` captures clean output.

``cocg fleet`` and ``cocg serve`` certify the shard-plan certificate
(the packaged ``shardplan.json``, or ``--shard-plan PATH``) against the
runtime's registered entry points before starting; a stale or
undecorated certificate fails fast with exit code 2.

Run ``python -m repro.cli --help`` (or the installed ``cocg`` script).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "main",
    "build_parser",
    "cmd_catalog",
    "cmd_profile",
    "cmd_colocate",
    "cmd_fleet",
    "cmd_serve",
    "cmd_chaos",
    "cmd_obs",
    "cmd_record",
    "cmd_replay",
    "cmd_corpus",
    "cmd_lint",
]

_STRATEGIES = ("cocg", "reactive", "gaugur", "vbp", "max-static")


def _err(message: str) -> None:
    """Print an error diagnostic to stderr (stdout stays report-only)."""
    print(message, file=sys.stderr)


def _certify_or_fail(args) -> int:
    """Startup shard-plan certification shared by fleet/serve.

    Returns 0 when the certificate matches the runtime's registered
    entry points, 2 (with the full problem list on stderr) when it is
    stale, undecorated, or unreadable.
    """
    from repro.fleet import certify_runtime
    from repro.sim import ShardPlanError

    path = getattr(args, "shard_plan", None)
    try:
        certify_runtime(path)
    except (ShardPlanError, OSError, ValueError) as exc:
        _err(f"shard-plan certification failed: {exc}")
        _err("hint: regenerate with `cocg lint src/ --shard-plan-out "
             "src/repro/shardplan.json`")
        return 2
    return 0


def _make_strategy(name: str):
    from repro.baselines import (
        CoCGStrategy,
        GAugurStrategy,
        MaxStaticStrategy,
        ReactiveStrategy,
        VBPStrategy,
    )

    return {
        "cocg": CoCGStrategy,
        "reactive": ReactiveStrategy,
        "gaugur": GAugurStrategy,
        "vbp": VBPStrategy,
        "max-static": MaxStaticStrategy,
    }[name]()


def _load_or_build_profiles(
    games: Sequence[str], args
) -> Dict[str, "GameProfile"]:
    from pathlib import Path

    from repro.core.pipeline import GameProfile
    from repro.games.catalog import build_catalog

    catalog = build_catalog()
    unknown = [g for g in games if g not in catalog]
    if unknown:
        raise SystemExit(
            f"unknown game(s) {unknown}; available: {', '.join(sorted(catalog))}"
        )
    profiles = {}
    for game in games:
        path = Path(args.profiles_dir) / f"{game}.profile.json" if args.profiles_dir else None
        if path is not None and path.exists():
            profiles[game] = GameProfile.load(path, catalog[game])
            print(f"loaded profile: {path}")
        else:
            print(f"profiling {game} (no saved profile)…")
            profiles[game] = GameProfile.build(
                catalog[game],
                n_players=args.players,
                sessions_per_player=args.sessions,
                seed=args.seed,
            )
            if path is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                profiles[game].save(path)
                print(f"saved profile: {path}")
    return profiles


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_catalog(args) -> int:
    """``cocg catalog``: list the evaluated games and their structure."""
    from repro.games.catalog import build_catalog

    catalog = build_catalog()
    print(f"{'game':14} {'category':8} {'K':>2} {'lock':>5} {'length':7} scripts")
    print("-" * 70)
    for name, spec in sorted(catalog.items()):
        lock = f"{spec.frame_lock:.0f}" if spec.frame_lock else "-"
        length = "long" if spec.long_term else "short"
        scripts = ", ".join(s.name for s in spec.scripts)
        print(
            f"{name:14} {spec.category.value:8} {len(spec.clusters):>2} "
            f"{lock:>5} {length:7} {scripts}"
        )
    return 0


def cmd_profile(args) -> int:
    """``cocg profile``: run the offline pipeline, optionally persist."""
    from repro.core.pipeline import GameProfile
    from repro.games.catalog import build_catalog

    catalog = build_catalog()
    if args.game not in catalog:
        raise SystemExit(
            f"unknown game {args.game!r}; available: {', '.join(sorted(catalog))}"
        )
    profile = GameProfile.build(
        catalog[args.game],
        n_players=args.players,
        sessions_per_player=args.sessions,
        seed=args.seed,
    )
    print(profile.library.summary())
    for backend, predictor in sorted(profile.predictors.items()):
        print(f"{backend}: next-stage accuracy {predictor.accuracy_:.1%}")
    if args.output:
        profile.save(args.output)
        print(f"saved: {args.output}")
    return 0


def cmd_colocate(args) -> int:
    """``cocg colocate``: run one co-location experiment and report."""
    from repro.workloads.experiment import ColocationExperiment

    profiles = _load_or_build_profiles(args.games, args)
    strategy = _make_strategy(args.strategy)
    result = ColocationExperiment(
        profiles, strategy, horizon=args.horizon, seed=args.seed
    ).run()
    print(f"\nstrategy:           {result.strategy}")
    print(f"throughput (Eq 2):  {result.throughput:,.0f} game-seconds")
    print(f"completed runs:     {result.completed_runs}")
    print(f"co-located seconds: {result.colocated_seconds}/{result.horizon}")
    print(f"peak usage:         {np.round(result.peak_total_usage, 1)} (cap 95)")
    print(f"over-cap seconds:   {result.over_cap_seconds}")
    for game in sorted(profiles):
        fob = result.fraction_of_best[game]
        if not np.isnan(fob):
            print(f"  {game:14} {fob:.0%} of best FPS")
    return 0


def _cmd_fleet_regions(args) -> int:
    """The ``cocg fleet --regions N`` path: the fleet-of-fleets."""
    from repro.fleet import FleetOfFleets, RegionSpec
    from repro.trace import RunConfig

    if args.heterogeneous:
        _err("note: --heterogeneous is ignored with --regions "
             "(regional shards run the reference platform)")
    try:
        config = RunConfig(
            games=tuple(args.games),
            nodes=args.nodes,
            policy=args.policy,
            strategy=args.strategy,
            horizon=args.horizon,
            rate_per_minute=args.rate,
            seed=args.seed,
            players=args.players,
            sessions=args.sessions,
            gateway=False,
        )
        regions = [RegionSpec(f"r{i}") for i in range(args.regions)]
        result = FleetOfFleets(config, regions).run()
    except ValueError as exc:
        _err(str(exc))
        return 2
    print(f"\nfleet-of-fleets: {args.regions} regions x {args.nodes} "
          f"nodes, policy={args.policy}")
    print(f"throughput (Eq 2):  {result.throughput:,.0f} game-seconds")
    print(f"completed runs:     {result.completed_runs}")
    print(f"{'region':8} {'routed':>7} {'completed':>10} digest")
    for name in sorted(result.regions):
        outcome = result.regions[name]
        print(f"  {name:8} {result.requests_routed.get(name, 0):>5} "
              f"{sum(outcome.result.completed_runs.values()):>10} "
              f"{outcome.digest[:16]}…")
    print(f"merged digest:      {result.merged_digest}")
    return 0


def cmd_fleet(args) -> int:
    """``cocg fleet``: Poisson arrivals over a (possibly heterogeneous)
    fleet of CoCG- or baseline-scheduled nodes; ``--regions N`` runs
    the sharded fleet-of-fleets instead."""
    from repro.cluster import ClusterScheduler, FleetExperiment, FleetNode
    from repro.games.catalog import build_catalog
    from repro.platform_.profile import (
        BIG_SERVER_PLATFORM,
        REFERENCE_PLATFORM,
        WEAK_GPU_PLATFORM,
    )

    rc = _certify_or_fail(args)
    if rc:
        return rc
    if args.regions > 1:
        return _cmd_fleet_regions(args)
    catalog = build_catalog()
    profiles = _load_or_build_profiles(args.games, args)
    platforms = [REFERENCE_PLATFORM, WEAK_GPU_PLATFORM, BIG_SERVER_PLATFORM]
    nodes = [
        FleetNode(
            f"node-{i}",
            _make_strategy(args.strategy),
            profiles,
            platform=platforms[i % len(platforms)] if args.heterogeneous
            else REFERENCE_PLATFORM,
            seed=args.seed + i,
        )
        for i in range(args.nodes)
    ]
    cluster = ClusterScheduler(nodes, policy=args.policy)
    result = FleetExperiment(
        cluster,
        [catalog[g] for g in args.games],
        horizon=args.horizon,
        rate_per_minute=args.rate,
        seed=args.seed,
    ).run()
    print(f"\nfleet of {args.nodes} nodes, policy={args.policy}")
    print(f"throughput (Eq 2):  {result.throughput:,.0f} game-seconds")
    print(f"completed runs:     {result.completed_runs}")
    print(f"mean wait:          {result.mean_wait_seconds:.1f}s "
          f"({result.deferrals} deferrals, {result.waiting} still queued)")
    print(f"fraction of best:   {result.fraction_of_best:.0%}")
    for node_id, gpu in sorted(result.per_node_mean_gpu.items()):
        print(f"  {node_id:8} mean GPU {gpu:5.1f} %  "
              f"runs {result.per_node_completed.get(node_id, {})}")
    return 0


def cmd_serve(args) -> int:
    """``cocg serve``: the fleet behind the admission gateway."""
    from repro.cluster import ClusterScheduler, FleetExperiment, FleetNode
    from repro.games.catalog import build_catalog
    from repro.obs import Observer
    from repro.serve import AdmissionGateway, GatewayConfig, RolloutCache

    rc = _certify_or_fail(args)
    if rc:
        return rc
    catalog = build_catalog()
    profiles = _load_or_build_profiles(args.games, args)
    obs = Observer() if getattr(args, "obs_out", None) else None
    nodes = [
        FleetNode(
            f"node-{i}",
            _make_strategy("cocg"),
            profiles,
            seed=args.seed + i,
        )
        for i in range(args.nodes)
    ]
    cluster = ClusterScheduler(nodes, policy=args.policy)
    gateway = AdmissionGateway(
        cluster,
        config=GatewayConfig(
            queue_capacity=args.queue_capacity,
            rate_per_second=args.rate_limit,
            burst=args.burst,
            max_queue_seconds=args.max_queue_seconds,
            micro_batching=not args.no_batching,
        ),
        obs=obs,
    )
    cluster.attach_gateway(gateway)
    cache = RolloutCache()
    for node in nodes:
        node.strategy.scheduler.attach_rollout_cache(cache)
    result = FleetExperiment(
        cluster,
        [catalog[g] for g in args.games],
        horizon=args.horizon,
        rate_per_minute=args.rate,
        seed=args.seed,
        obs=obs,
    ).run()
    stats = gateway.stats()
    print(f"\nfleet of {args.nodes} nodes behind the gateway "
          f"(policy={args.policy}, "
          f"batching={'off' if args.no_batching else 'on'})")
    print(f"throughput (Eq 2):  {result.throughput:,.0f} game-seconds")
    print(f"completed runs:     {result.completed_runs}")
    print(f"gateway outcomes:   queued={stats['queued']} "
          f"admitted={stats['admitted']} shed={stats['shed']} "
          f"dead-lettered={stats['dead_lettered']}")
    print(f"still queued:       {stats['depth']} "
          f"({stats['throttled_rounds']} throttled rounds)")
    if not args.no_batching:
        b = gateway.batcher.stats()
        print(f"micro-batching:     {b['evaluations']} shared evaluations, "
              f"{b['prescreen_rejects']} pre-screen rejects")
    print(f"rollout cache:      {cache.hits} hits / {cache.misses} misses "
          f"({cache.hit_rate:.0%})")
    print("per-category SLO (time in queue):")
    for line in gateway.slo.summary_lines():
        print(f"  {line}")
    print(f"telemetry digest:   {result.telemetry_digest}")
    if obs is not None:
        metrics_path, trace_path = obs.write(args.obs_out)
        print(f"observability:      {metrics_path} + {trace_path} "
              f"(trace digest {obs.trace_digest()[:16]}…)")
    return 0


def cmd_chaos(args) -> int:
    """``cocg chaos``: the fleet run with vs. without injected faults.

    ``--validate`` parses and checks ``--plan`` without running anything
    (exit 1 on any problem); ``--scenario reclaim-storm`` runs the
    elastic-capacity storm with a provisioner attached.
    """
    import json
    from pathlib import Path

    from repro.cluster import ClusterScheduler, FleetNode, Provisioner, ProvisionerConfig
    from repro.faults import (
        FaultPlan,
        default_plan,
        reclaim_storm_plan,
        run_chaos,
        validate_plan_payload,
    )
    from repro.games.catalog import build_catalog
    from repro.obs import Observer

    if args.validate:
        if not args.plan:
            _err("--validate needs --plan <plan.json>")
            return 2
        try:
            payload = json.loads(Path(args.plan).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            _err(f"{args.plan}: cannot read plan: {exc}")
            return 1
        errors = validate_plan_payload(payload)
        if errors:
            _err(f"{args.plan}: {len(errors)} problem(s)")
            for error in errors:
                _err(f"  {error}")
            return 1
        plan = FaultPlan.from_dict(payload)
        print(f"{args.plan}: ok ({len(plan)} faults, seed {plan.seed})")
        return 0

    if not args.games:
        _err("at least one GAME is required (unless --validate)")
        return 2

    catalog = build_catalog()
    profiles = _load_or_build_profiles(args.games, args)
    if args.plan:
        try:
            plan = FaultPlan.from_dict(json.loads(Path(args.plan).read_text()))
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            _err(f"{args.plan}: bad fault plan: {exc}")
            _err("hint: cocg chaos --validate --plan "
                 f"{args.plan} lists every problem")
            return 2
        print(f"loaded fault plan: {args.plan} ({len(plan)} faults)")
    elif args.scenario == "reclaim-storm":
        plan = reclaim_storm_plan(
            args.horizon,
            seed=args.seed,
            nodes=tuple(f"node-{i}" for i in range(args.nodes)),
        )
        print(f"scenario: reclaim-storm ({len(plan)} faults)")
    else:
        plan = default_plan(
            args.horizon, seed=args.seed, crash_node=f"node-{args.nodes - 1}"
        )

    def make_cluster() -> ClusterScheduler:
        nodes = [
            FleetNode(
                f"node-{i}",
                _make_strategy(args.strategy),
                profiles,
                seed=args.seed + i,
            )
            for i in range(args.nodes)
        ]
        return ClusterScheduler(nodes, policy=args.policy)

    make_provisioner = None
    warm_pool = args.warm_pool
    if warm_pool is None and args.scenario == "reclaim-storm":
        warm_pool = 1
    if warm_pool is not None:

        def make_provisioner(cluster: ClusterScheduler) -> Provisioner:
            return Provisioner(
                cluster,
                lambda node_id: FleetNode(
                    node_id,
                    _make_strategy(args.strategy),
                    profiles,
                    seed=args.seed,
                ),
                config=ProvisionerConfig(warm_pool_size=warm_pool),
                seed=args.seed,
            )

    obs = Observer() if getattr(args, "obs_out", None) else None
    report = run_chaos(
        make_cluster,
        [catalog[g] for g in args.games],
        plan=plan,
        horizon=args.horizon,
        rate_per_minute=args.rate,
        seed=args.seed,
        make_provisioner=make_provisioner,
        obs=obs,
    )
    print()
    for line in report.summary_lines():
        print(line)
    print(f"\ntelemetry digest (faulted): {report.faulted.telemetry_digest}")
    if obs is not None:
        metrics_path, trace_path = obs.write(args.obs_out)
        print(f"observability (faulted run): {metrics_path} + {trace_path} "
              f"(trace digest {obs.trace_digest()[:16]}…)")
    if report.faulted.unaccounted_sessions:
        _err(
            f"WARNING: {report.faulted.unaccounted_sessions} unaccounted "
            "sessions — the robustness ledger does not balance"
        )
        return 1
    return 0


def cmd_obs(args) -> int:
    """``cocg obs``: run one observed experiment, export the artifacts.

    Runs the gateway-fronted fleet with the observability pipeline
    attached and writes ``metrics.prom`` (Prometheus text exposition)
    and ``trace.json`` (Chrome trace events — load it in Perfetto) under
    ``--out``.  ``--check-determinism`` repeats the run from the same
    seeds and fails unless both artifacts come back byte-identical —
    the same property CI asserts.
    """
    from repro.cluster import ClusterScheduler, FleetExperiment, FleetNode
    from repro.faults import default_plan
    from repro.games.catalog import build_catalog
    from repro.obs import Observer
    from repro.serve import AdmissionGateway

    catalog = build_catalog()
    profiles = _load_or_build_profiles(args.games, args)
    plan = (
        default_plan(
            args.horizon, seed=args.seed, crash_node=f"node-{args.nodes - 1}"
        )
        if args.faults
        else None
    )

    def run():
        obs = Observer()
        nodes = [
            FleetNode(
                f"node-{i}",
                _make_strategy("cocg"),
                profiles,
                seed=args.seed + i,
            )
            for i in range(args.nodes)
        ]
        cluster = ClusterScheduler(nodes, policy=args.policy)
        gateway = AdmissionGateway(cluster, obs=obs)
        cluster.attach_gateway(gateway)
        result = FleetExperiment(
            cluster,
            [catalog[g] for g in args.games],
            horizon=args.horizon,
            rate_per_minute=args.rate,
            seed=args.seed,
            fault_plan=plan,
            obs=obs,
        ).run()
        return result, obs

    result, obs = run()
    if args.check_determinism:
        result2, obs2 = run()
        same_metrics = obs.metrics_text() == obs2.metrics_text()
        same_trace = obs.trace_digest() == obs2.trace_digest()
        same_telemetry = result.telemetry_digest == result2.telemetry_digest
        print(f"metrics byte-identical across runs: {same_metrics}")
        print(f"trace digests equal across runs:    {same_trace}")
        print(f"telemetry digests equal:            {same_telemetry}")
        if not (same_metrics and same_trace and same_telemetry):
            raise SystemExit("observability output is not deterministic")
    metrics_path, trace_path = obs.write(args.out)
    print(f"metric families:    {len(obs.registry)}")
    print(f"trace spans:        {len(obs.tracer)} "
          f"on streams {', '.join(obs.tracer.streams())}")
    print(f"trace digest:       {obs.trace_digest()}")
    print(f"wrote:              {metrics_path}")
    print(f"wrote:              {trace_path}")
    return 0


def cmd_record(args) -> int:
    """``cocg record``: run one experiment and persist it as a trace.

    The run is gateway-fronted (same shape as ``cocg serve``); an
    optional ``--plan`` injects a fault schedule and ``--warm-pool N``
    attaches a capacity plane — both are captured in the trace, so
    ``cocg replay`` reproduces the whole run.
    """
    import json
    from pathlib import Path

    from repro.faults import FaultPlan
    from repro.trace import RunConfig, record_run

    plan = None
    if args.plan:
        try:
            plan = FaultPlan.from_dict(
                json.loads(Path(args.plan).read_text())
            )
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            _err(f"{args.plan}: bad fault plan: {exc}")
            _err("hint: cocg chaos --validate --plan "
                 f"{args.plan} lists every problem")
            return 2
    try:
        config = RunConfig(
            games=tuple(args.games),
            nodes=args.nodes,
            policy=args.policy,
            strategy=args.strategy,
            horizon=args.horizon,
            rate_per_minute=args.rate,
            seed=args.seed,
            players=args.players,
            sessions=args.sessions,
            queue_capacity=args.queue_capacity,
            rate_limit=args.rate_limit,
            burst=args.burst,
            max_queue_seconds=args.max_queue_seconds,
            warm_pool=args.warm_pool,
        )
        result, recorder = record_run(config, plan=plan)
    except ValueError as exc:
        _err(str(exc))
        return 2
    path = recorder.save(args.output)
    stats = recorder.stats()
    document = recorder.document
    print(f"recorded {args.horizon}s over {args.nodes} nodes: "
          f"{stats['arrivals']} arrivals, {stats['stages']} stage records, "
          f"{stats['faults']} scheduled faults")
    print(f"throughput (Eq 2):  {result.throughput:,.0f} game-seconds")
    print(f"completed runs:     {result.completed_runs}")
    print(f"fleet digest:       {document.trailer.fleet_digest}")
    print(f"wrote:              {path}")
    return 0


def cmd_replay(args) -> int:
    """``cocg replay``: replay a trace, check the digest contract.

    Exit 0 when the replayed fleet telemetry digest matches the trace's
    trailer byte-for-byte, 1 on divergence (the first divergent record
    is named on stderr), 2 when the trace itself cannot be parsed.
    """
    from repro.trace import TraceError, replay_path

    try:
        report = replay_path(args.trace, strict=False)
    except (OSError, TraceError, ValueError) as exc:
        _err(f"{args.trace}: {exc}")
        return 2
    for line in report.summary_lines():
        print(line)
    if not report.matched:
        _err(f"{args.trace}: replay diverged from the recorded run"
             + (f" at {report.divergence}" if report.divergence else ""))
        return 1
    return 0


def cmd_corpus(args) -> int:
    """``cocg corpus``: list or regenerate the shipped scenario corpus.

    ``list`` prints the catalogue; ``generate [NAME …]`` re-records the
    named scenarios (default: all) under ``--out``.  Generation is
    deterministic — the same repo state always produces byte-identical
    ``.cgtrace`` files, which is how CI keeps ``corpus/`` honest.
    """
    from pathlib import Path

    from repro.trace import SCENARIOS, generate_scenario, scenario_names

    if args.action == "list":
        print(f"{'scenario':14} {'games':18} {'horizon':>7} {'faults':>6}  description")
        print("-" * 78)
        for name in scenario_names():
            spec = SCENARIOS[name]
            plan = spec.plan()
            print(
                f"{name:14} {','.join(spec.config.games):18} "
                f"{spec.config.horizon:>6}s {len(plan) if plan else 0:>6}  "
                f"{spec.description}"
            )
        return 0

    names = list(args.names) or scenario_names()
    unknown = sorted(set(names) - set(scenario_names()))
    if unknown:
        _err(f"unknown scenario(s) {', '.join(unknown)}; shipped: "
             f"{', '.join(scenario_names())}")
        return 2
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for name in names:
        result, recorder = generate_scenario(name)
        path = recorder.save(out / f"{name}.cgtrace")
        document = recorder.document
        print(f"{name}: {document.trailer.records} records, "
              f"digest {document.trailer.fleet_digest[:16]}… -> {path}")
    return 0


def cmd_lint(args) -> int:
    """``cocg lint``: run the invariant checker (exit 1 on findings)."""
    from repro.lint.__main__ import run_from_args

    return run_from_args(args)


# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="cocg",
        description="CoCG: fine-grained cloud game co-location (IPDPS'24 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("catalog", help="list the evaluated games").set_defaults(
        func=cmd_catalog
    )

    p = sub.add_parser("profile", help="run the offline pipeline for one game")
    p.add_argument("game")
    p.add_argument("-o", "--output", help="save the profile JSON here")
    p.add_argument("--players", type=int, default=6)
    p.add_argument("--sessions", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_profile)

    c = sub.add_parser("colocate", help="co-locate games on one server")
    c.add_argument("games", nargs="+")
    c.add_argument("--strategy", choices=_STRATEGIES, default="cocg")
    c.add_argument("--horizon", type=int, default=3600)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--players", type=int, default=5)
    c.add_argument("--sessions", type=int, default=4)
    c.add_argument("--profiles-dir", help="cache profiles here")
    c.set_defaults(func=cmd_colocate)

    f = sub.add_parser("fleet", help="Poisson arrivals over a fleet")
    f.add_argument("games", nargs="+")
    f.add_argument("--nodes", type=int, default=3)
    f.add_argument("--policy", choices=("first-fit", "best-fit", "round-robin"),
                   default="first-fit")
    f.add_argument("--strategy", choices=_STRATEGIES, default="cocg")
    f.add_argument("--heterogeneous", action="store_true",
                   help="mix reference/weak-GPU/big-server platforms")
    f.add_argument("--rate", type=float, default=1.0, help="arrivals per minute")
    f.add_argument("--horizon", type=int, default=2400)
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--players", type=int, default=4)
    f.add_argument("--sessions", type=int, default=3)
    f.add_argument("--profiles-dir", help="cache profiles here")
    f.add_argument("--regions", type=int, default=1, metavar="N",
                   help="run N regional shards behind the consistent-hash "
                        "session router (fleet-of-fleets; default 1 = the "
                        "classic single fleet)")
    f.add_argument("--shard-plan", metavar="PATH",
                   help="shard-plan certificate to certify against "
                        "(default: the packaged shardplan.json)")
    f.set_defaults(func=cmd_fleet)

    s = sub.add_parser(
        "serve", help="fleet behind the serve-layer admission gateway"
    )
    s.add_argument("games", nargs="+")
    s.add_argument("--nodes", type=int, default=3)
    s.add_argument("--policy", choices=("first-fit", "best-fit", "round-robin"),
                   default="round-robin")
    s.add_argument("--rate", type=float, default=4.0, help="arrivals per minute")
    s.add_argument("--horizon", type=int, default=1800)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--queue-capacity", type=int, default=64,
                   help="per-category queue bound (overflow sheds)")
    s.add_argument("--rate-limit", type=float, default=4.0,
                   help="dispatch attempts per second (token refill)")
    s.add_argument("--burst", type=int, default=8, help="token-bucket depth")
    s.add_argument("--max-queue-seconds", type=float, default=300.0,
                   help="queue patience before dead-lettering")
    s.add_argument("--no-batching", action="store_true",
                   help="naive per-request dispatch (same outcomes, "
                        "more predictor rollouts)")
    s.add_argument("--players", type=int, default=4)
    s.add_argument("--sessions", type=int, default=3)
    s.add_argument("--profiles-dir", help="cache profiles here")
    s.add_argument("--obs-out", metavar="DIR",
                   help="attach the observability pipeline and write "
                        "metrics.prom + trace.json here")
    s.add_argument("--shard-plan", metavar="PATH",
                   help="shard-plan certificate to certify against "
                        "(default: the packaged shardplan.json)")
    s.set_defaults(func=cmd_serve)

    ch = sub.add_parser(
        "chaos", help="fleet experiment under an injected fault plan"
    )
    ch.add_argument("games", nargs="*",
                    help="game mix (required unless --validate)")
    ch.add_argument("--nodes", type=int, default=2)
    ch.add_argument("--policy", choices=("first-fit", "best-fit", "round-robin"),
                    default="round-robin")
    ch.add_argument("--strategy", choices=_STRATEGIES, default="cocg")
    ch.add_argument("--plan", help="fault-plan JSON file (default: demo plan)")
    ch.add_argument("--validate", action="store_true",
                    help="parse and check --plan without running; "
                         "non-zero exit on any unknown kind/field")
    ch.add_argument("--scenario", choices=("default", "reclaim-storm"),
                    default="default",
                    help="built-in plan when --plan is absent "
                         "(reclaim-storm attaches a provisioner)")
    ch.add_argument("--warm-pool", type=int, default=None, metavar="N",
                    help="attach a Provisioner with N pre-booted standbys "
                         "(implied =1 by --scenario reclaim-storm)")
    ch.add_argument("--rate", type=float, default=2.0, help="arrivals per minute")
    ch.add_argument("--horizon", type=int, default=900)
    ch.add_argument("--seed", type=int, default=0)
    ch.add_argument("--players", type=int, default=4)
    ch.add_argument("--sessions", type=int, default=3)
    ch.add_argument("--profiles-dir", help="cache profiles here")
    ch.add_argument("--obs-out", metavar="DIR",
                    help="attach the observability pipeline to the "
                         "faulted run and write metrics.prom + "
                         "trace.json here")
    ch.set_defaults(func=cmd_chaos)

    o = sub.add_parser(
        "obs",
        help="run an observed experiment; export metrics.prom + trace.json",
    )
    o.add_argument("games", nargs="+")
    o.add_argument("--nodes", type=int, default=2)
    o.add_argument("--policy", choices=("first-fit", "best-fit", "round-robin"),
                   default="round-robin")
    o.add_argument("--rate", type=float, default=2.0, help="arrivals per minute")
    o.add_argument("--horizon", type=int, default=600)
    o.add_argument("--seed", type=int, default=0)
    o.add_argument("--faults", action="store_true",
                   help="replay the demo fault plan (fault spans in the trace)")
    o.add_argument("--out", default="obs-out", metavar="DIR",
                   help="artifact directory (default: obs-out)")
    o.add_argument("--check-determinism", action="store_true",
                   help="run twice; fail unless the artifacts are "
                        "byte-identical")
    o.add_argument("--players", type=int, default=4)
    o.add_argument("--sessions", type=int, default=3)
    o.add_argument("--profiles-dir", help="cache profiles here")
    o.set_defaults(func=cmd_obs)

    r = sub.add_parser(
        "record",
        help="record a gateway-fronted run as a .cgtrace file",
    )
    r.add_argument("games", nargs="+")
    r.add_argument("-o", "--output", default="run.cgtrace",
                   help="trace file to write (default: run.cgtrace)")
    r.add_argument("--nodes", type=int, default=2)
    r.add_argument("--policy", choices=("first-fit", "best-fit", "round-robin"),
                   default="round-robin")
    r.add_argument("--strategy", choices=_STRATEGIES, default="cocg")
    r.add_argument("--rate", type=float, default=2.0, help="arrivals per minute")
    r.add_argument("--horizon", type=int, default=600)
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("--plan", help="fault-plan JSON to inject and record")
    r.add_argument("--warm-pool", type=int, default=None, metavar="N",
                   help="attach a Provisioner with N pre-booted standbys")
    r.add_argument("--queue-capacity", type=int, default=64)
    r.add_argument("--rate-limit", type=float, default=4.0)
    r.add_argument("--burst", type=int, default=8)
    r.add_argument("--max-queue-seconds", type=float, default=300.0)
    r.add_argument("--players", type=int, default=3,
                   help="profile-corpus players (captured in the trace)")
    r.add_argument("--sessions", type=int, default=2)
    r.set_defaults(func=cmd_record)

    rp = sub.add_parser(
        "replay",
        help="replay a .cgtrace; fail unless the fleet digest matches",
    )
    rp.add_argument("trace", help="the .cgtrace file to replay")
    rp.set_defaults(func=cmd_replay)

    co = sub.add_parser(
        "corpus", help="list or regenerate the shipped scenario corpus"
    )
    co.add_argument("action", choices=("list", "generate"))
    co.add_argument("names", nargs="*",
                    help="scenarios to generate (default: all)")
    co.add_argument("--out", default="corpus", metavar="DIR",
                    help="output directory (default: corpus/)")
    co.set_defaults(func=cmd_corpus)

    from repro.lint.__main__ import configure_parser as _configure_lint_parser

    lint = sub.add_parser(
        "lint", help="check CoCG invariants (rules CG001-CG018)"
    )
    _configure_lint_parser(lint)
    lint.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
