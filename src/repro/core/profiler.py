"""The frame-grained game profiler (paper §IV-A).

Pipeline, run offline once per game ("contention feature profiling and
model training only need to be performed once"):

1. **Cluster frames.**  All complete 5-second frames of the input traces
   are pooled and K-means-clustered; K is chosen at the elbow of the
   SSE-vs-K curve (Fig 14) unless fixed explicitly.
2. **Identify loading clusters.**  Observation 3: a loading screen
   pre-computes the next scene — CPU-heavy, GPU-idle (the screen is
   black).  Clusters whose GPU/CPU centroid ratio falls below a threshold
   are loading behaviour.
3. **Segment each trace into stages.**  Loading frames delimit execution
   runs (Observation 2).  Within an execution run, a persistent shift to
   an unseen cluster starts a new stage, while clusters that *interleave*
   (the sequence keeps returning to already-seen clusters) are folded
   into one multi-cluster stage — the paper's "secret realm with bosses
   in any order" situation.
4. **Build the stage library**: per-type peak/mean/duration statistics
   and the empirical transition structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.frames import FRAME_SECONDS, frames_of_series
from repro.core.stages import Segment, StageLibrary, StageTypeId
from repro.mlkit.kmeans import KMeans, elbow_k, sse_curve
from repro.util.rng import Seed
from repro.util.timeseries import ResourceSeries
from repro.util.validation import check_fraction, check_positive

__all__ = ["ProfilerConfig", "FrameGrainedProfiler"]


@dataclass(frozen=True)
class ProfilerConfig:
    """Tuning knobs of the profiler.

    Parameters
    ----------
    k_values:
        Candidate cluster counts for the Fig-14 elbow sweep.
    n_clusters:
        Fixed K; overrides the elbow when given.
    frame_seconds:
        Frame length (paper: 5 s).
    loading_gpu_cpu_ratio:
        A cluster is loading when centroid ``gpu / cpu`` is below this
        (black screen, busy CPU).
    min_loading_cpu:
        … and its CPU centroid is at least this (guards against idle
        clusters).
    lookahead_frames:
        Interleave window: a new cluster merges into the current stage if
        any already-seen cluster returns within this many frames.
    min_presence:
        Minimum fraction of a segment's frames a cluster needs to count
        toward the stage type (filters misclassified flicker frames).
    min_exec_frames:
        Execution segments shorter than this are stage-boundary
        artifacts (a frame straddling two stages) and are absorbed into
        the neighbouring execution segment.
    elbow_tol:
        Flattening tolerance when the ``flatten`` elbow method is used.
    seed:
        Clustering seed.
    """

    k_values: Tuple[int, ...] = tuple(range(1, 11))
    n_clusters: Optional[int] = None
    frame_seconds: int = FRAME_SECONDS
    loading_gpu_cpu_ratio: float = 0.3
    min_loading_cpu: float = 10.0
    lookahead_frames: int = 14
    min_presence: float = 0.12
    min_exec_frames: int = 2
    elbow_tol: float = 0.03
    seed: Seed = 0

    def __post_init__(self) -> None:
        if self.n_clusters is not None and self.n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {self.n_clusters}")
        if len(self.k_values) < 3 and self.n_clusters is None:
            raise ValueError("k_values needs >= 3 entries for the elbow sweep")
        if self.frame_seconds < 1:
            raise ValueError(f"frame_seconds must be >= 1, got {self.frame_seconds}")
        check_positive("loading_gpu_cpu_ratio", self.loading_gpu_cpu_ratio)
        if self.lookahead_frames < 1:
            raise ValueError(
                f"lookahead_frames must be >= 1, got {self.lookahead_frames}"
            )
        check_fraction("min_presence", self.min_presence)


def _as_series(trace) -> ResourceSeries:
    """Accept a ResourceSeries or anything exposing ``.series``."""
    if isinstance(trace, ResourceSeries):
        return trace
    series = getattr(trace, "series", None)
    if isinstance(series, ResourceSeries):
        return series
    raise TypeError(
        f"expected ResourceSeries or TraceBundle-like object, got {type(trace)!r}"
    )


class FrameGrainedProfiler:
    """Builds a :class:`~repro.core.stages.StageLibrary` from traces.

    Parameters
    ----------
    game:
        Game name the library is for.
    config:
        Profiler configuration.

    Attributes (after :meth:`fit`)
    ------------------------------
    library_:
        The built stage library.
    kmeans_:
        The fitted clustering model.
    sse_curve_:
        SSE per candidate K (``None`` when K was fixed).
    chosen_k_:
        Selected cluster count.
    """

    def __init__(self, game: str, *, config: Optional[ProfilerConfig] = None):
        self.game = str(game)
        self.config = config if config is not None else ProfilerConfig()

    # ------------------------------------------------------------------
    def fit(self, traces: Sequence) -> StageLibrary:
        """Profile a set of traces (ResourceSeries or TraceBundles)."""
        if not traces:
            raise ValueError("traces must be non-empty")
        cfg = self.config
        frame_series = [
            frames_of_series(_as_series(t), frame_seconds=cfg.frame_seconds)
            for t in traces
        ]
        frame_series = [f for f in frame_series if f.n_samples > 0]
        if not frame_series:
            raise ValueError("no complete frames in any trace")
        X = np.concatenate([f.values for f in frame_series], axis=0)

        if cfg.n_clusters is not None:
            k = min(cfg.n_clusters, X.shape[0])
            self.sse_curve_ = None
        else:
            k_values = [kv for kv in cfg.k_values if kv <= X.shape[0]]
            self.sse_curve_ = sse_curve(X, k_values, seed=cfg.seed)
            k = elbow_k(k_values, self.sse_curve_, tol=cfg.elbow_tol)
        self.chosen_k_ = int(k)
        self.kmeans_ = KMeans(k, seed=cfg.seed).fit(X)

        loading = self._identify_loading_clusters(self.kmeans_.cluster_centers_)
        library = StageLibrary(
            self.game,
            self.kmeans_.cluster_centers_,
            loading,
            frame_seconds=cfg.frame_seconds,
        )
        for frames in frame_series:
            library.observe_segments(self.segment_with(library, frames.values))
        self.library_ = library
        return library

    # ------------------------------------------------------------------
    def _identify_loading_clusters(self, centers: np.ndarray) -> List[int]:
        """Observation-3 heuristic: CPU-busy, GPU-idle clusters load."""
        cfg = self.config
        cpu = centers[:, 0]
        gpu = centers[:, 1]
        ratio = gpu / np.maximum(cpu, 1e-9)
        mask = (ratio < cfg.loading_gpu_cpu_ratio) & (cpu >= cfg.min_loading_cpu)
        if not mask.any():
            # Fall back to the single most loading-like cluster so every
            # library has a loading type (Obs 2 guarantees one exists).
            mask = np.zeros_like(mask)
            mask[int(np.argmin(ratio))] = True
        return [int(i) for i in np.flatnonzero(mask)]

    # ------------------------------------------------------------------
    def segment_with(
        self, library: StageLibrary, frames: np.ndarray
    ) -> List[Segment]:
        """Segment a frame matrix into stages against a library.

        Exposed separately so already-built libraries can segment new
        traces (the online path reuses the same logic frame by frame).
        """
        frames = np.asarray(frames, dtype=float)
        if frames.ndim != 2 or frames.shape[0] == 0:
            raise ValueError(f"frames must be a non-empty 2-D matrix, got {frames.shape}")
        centers = library.centers
        d = (
            np.einsum("nd,nd->n", frames, frames)[:, None]
            - 2.0 * frames @ centers.T
            + np.einsum("kd,kd->k", centers, centers)[None, :]
        )
        labels = d.argmin(axis=1)
        loading_mask = np.isin(labels, sorted(library.loading_clusters))

        segments: List[Segment] = []
        i = 0
        n = len(labels)
        while i < n:
            if loading_mask[i]:
                j = i
                while j < n and loading_mask[j]:
                    j += 1
                segments.append(self._make_segment(frames, labels, i, j, True))
                i = j
            else:
                j = i
                while j < n and not loading_mask[j]:
                    j += 1
                segments.extend(self._segment_execution(frames, labels, i, j))
                i = j
        return segments

    def segment(self, frames: np.ndarray) -> List[Segment]:
        """Segment against the fitted library."""
        if not hasattr(self, "library_"):
            raise RuntimeError("profiler is not fitted; call fit() first")
        return self.segment_with(self.library_, frames)

    # ------------------------------------------------------------------
    def _segment_execution(
        self, frames: np.ndarray, labels: np.ndarray, lo: int, hi: int
    ) -> List[Segment]:
        """Split one execution run into stages via the interleave rule."""
        W = self.config.lookahead_frames
        runs: List[Tuple[int, int, int]] = []  # (cluster, start, end)
        s = lo
        for i in range(lo + 1, hi + 1):
            if i == hi or labels[i] != labels[s]:
                runs.append((int(labels[s]), s, i))
                s = i

        bounds: List[Tuple[int, int]] = []
        seen = {runs[0][0]}
        seg_start = lo
        for cluster, start, end in runs[1:]:
            if cluster in seen:
                continue
            if end - start < 2:
                # A single-frame excursion is burst/noise, not a stage:
                # absorb it (the presence filter keeps it out of the type).
                continue
            window = labels[start : min(start + W, hi)]
            # Require two returning frames: one could be a burst/noise
            # misclassification, a real interleave keeps coming back.
            returns = int(np.sum(np.isin(window, list(seen))))
            if returns >= 2:
                seen.add(cluster)  # interleaved — same stage
            else:
                bounds.append((seg_start, start))
                seg_start = start
                seen = {cluster}
        bounds.append((seg_start, hi))

        # Absorb boundary artifacts: segments shorter than min_exec_frames
        # are frames straddling a stage transition, not real stages.
        min_len = self.config.min_exec_frames
        merged: List[Tuple[int, int]] = []
        for b in bounds:
            if merged and (
                b[1] - b[0] < min_len or merged[-1][1] - merged[-1][0] < min_len
            ):
                merged[-1] = (merged[-1][0], b[1])
            else:
                merged.append(b)
        return [
            self._make_segment(frames, labels, s, e, False) for s, e in merged
        ]

    def _make_segment(
        self,
        frames: np.ndarray,
        labels: np.ndarray,
        start: int,
        end: int,
        is_loading: bool,
    ) -> Segment:
        window = frames[start:end]
        seg_labels = labels[start:end]
        counts = np.bincount(seg_labels)
        total = end - start
        threshold = max(1, int(np.ceil(self.config.min_presence * total)))
        members = [int(c) for c in np.flatnonzero(counts >= threshold)]
        if not members:
            members = [int(np.argmax(counts))]
        # Statistics over member-cluster frames only: boundary/burst frames
        # belonging to other clusters would inflate the stage peak and the
        # allocations planned from it.
        member_mask = np.isin(seg_labels, members)
        stats_window = window[member_mask] if member_mask.any() else window
        return Segment(
            type_id=StageTypeId(members),
            start_frame=start,
            end_frame=end,
            is_loading=is_loading,
            peak=stats_window.max(axis=0),
            mean=stats_window.mean(axis=0),
            q95=np.quantile(stats_window, 0.95, axis=0),
        )
