"""CoCG core: the paper's contribution.

Three cooperating components (paper Fig 3):

* the **frame-grained game profiler**
  (:class:`~repro.core.profiler.FrameGrainedProfiler`) clusters 5-second
  frames and segments the timeline into loading/execution stages, giving
  each game a :class:`~repro.core.stages.StageLibrary`;
* the **ML-based stage predictor**
  (:class:`~repro.core.predictor.StagePredictor`) judges the current
  stage every 5 s and predicts the next execution stage at each loading,
  with the §IV-B2 dynamic adjustments (rehearsal callback, Eq-1
  redundancy, model replacement);
* the **complementary resource scheduler**
  (:class:`~repro.core.scheduler.CoCGScheduler`) combining the
  Algorithm-1 distributor and the time-stealing regulator.
"""

from repro.core.frames import frame_matrix, frames_of_series
from repro.core.health import BreakerState, PredictorHealth
from repro.core.stages import StageLibrary, StageStats, StageTypeId, Segment
from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.core.dataset import StageDatasetBuilder, StageSample
from repro.core.predictor import (
    Judgment,
    JudgmentKind,
    PredictionCostModel,
    StagePredictor,
)
from repro.core.adjustment import DynamicAdjuster, redundancy_allocation
from repro.core.allocation import AllocationPlanner
from repro.core.distributor import Distributor, AdmissionDecision
from repro.core.regulator import Regulator, RegulatorConfig
from repro.core.pipeline import GameProfile
from repro.core.scheduler import CoCGConfig, CoCGScheduler, SessionControl

__all__ = [
    "frame_matrix",
    "frames_of_series",
    "StageTypeId",
    "StageStats",
    "Segment",
    "StageLibrary",
    "FrameGrainedProfiler",
    "ProfilerConfig",
    "StageDatasetBuilder",
    "StageSample",
    "StagePredictor",
    "PredictionCostModel",
    "Judgment",
    "JudgmentKind",
    "DynamicAdjuster",
    "redundancy_allocation",
    "AllocationPlanner",
    "Distributor",
    "AdmissionDecision",
    "Regulator",
    "RegulatorConfig",
    "GameProfile",
    "CoCGScheduler",
    "CoCGConfig",
    "SessionControl",
    "BreakerState",
    "PredictorHealth",
]
