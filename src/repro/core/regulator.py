"""The regulator — spike resolution at runtime (paper §IV-C2).

Two strategies:

* **Extend loading time.**  Users tolerate a longer loading screen far
  better than dropped frames at a peak.  When a session is about to
  leave loading into a stage whose ceiling does not fit next to the
  other sessions' current demand, the regulator throttles the loading
  CPU grant — loading progress is CPU-bound, so the stage stretches —
  and re-checks every detection tick until the peak passes or the
  extension budget runs out.
* **Distinguish game length.**  Manufacturers publish expected play
  times, so long and short games are separable at coarse granularity.
  When picking the next pending request, the regulator prefers a short
  game if the server is inside (or approaching) a long game's peak
  window, filling the gap between peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.platform_.resources import ResourceVector
from repro.util.validation import check_fraction

__all__ = ["RegulatorConfig", "Regulator"]


@dataclass(frozen=True)
class RegulatorConfig:
    """Regulator tuning.

    Parameters
    ----------
    max_extension_seconds:
        Budget for holding one loading stage beyond its natural end.
    steal_fraction:
        CPU fraction granted to a held loading stage (progress rate ≈
        this fraction, so the stretch factor is its inverse).
    prefer_short_when_headroom_below:
        When the server's free fraction of budget drops below this, the
        request picker prefers short games.
    enabled:
        Master switch (the ablation benches turn it off).
    """

    max_extension_seconds: float = 60.0
    steal_fraction: float = 0.2
    prefer_short_when_headroom_below: float = 0.35
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.max_extension_seconds < 0:
            raise ValueError(
                f"max_extension_seconds must be >= 0, got {self.max_extension_seconds}"
            )
        check_fraction("steal_fraction", self.steal_fraction, inclusive=False)
        check_fraction(
            "prefer_short_when_headroom_below", self.prefer_short_when_headroom_below
        )


class Regulator:
    """Runtime spike resolution over one server's budget.

    Parameters
    ----------
    budget:
        The scheduler's capacity × cap vector.
    config:
        Tuning knobs.
    """

    def __init__(self, budget: ResourceVector, *, config: Optional[RegulatorConfig] = None):
        self.budget = budget
        self.config = config if config is not None else RegulatorConfig()
        self.holds_started = 0
        self.hold_seconds_total = 0.0

    # ------------------------------------------------------------------
    def should_hold_in_loading(
        self,
        next_stage_plan: ResourceVector,
        others_allocation: ResourceVector,
        held_seconds: float,
    ) -> bool:
        """Whether to keep stealing time from this loading stage.

        True when the next stage's ceiling does not fit beside the other
        sessions *and* the extension budget is not exhausted.
        """
        if not self.config.enabled:
            return False
        if held_seconds >= self.config.max_extension_seconds:
            return False
        fits = (others_allocation + next_stage_plan).fits_within(self.budget)
        return not fits

    def start_hold(self) -> None:
        """Account the start of one loading hold (bench statistics)."""
        self.holds_started += 1

    def note_hold(self, seconds: float) -> None:
        """Account time spent holding (bench statistics)."""
        self.hold_seconds_total += max(float(seconds), 0.0)

    # ------------------------------------------------------------------
    def pick_request(
        self,
        pending: Sequence,
        current_allocation: ResourceVector,
        *,
        long_term_of: Callable[[object], bool] = lambda request: True,
    ) -> Optional[int]:
        """Index of the pending request to try next (§IV-C2 length rule).

        Prefers short games when headroom is tight, long games otherwise;
        falls back to FIFO.  Returns ``None`` when nothing is pending.
        """
        if not pending:
            return None
        if not self.config.enabled:
            return 0
        free = (self.budget - current_allocation).array
        cap = self.budget.array
        headroom = float((free / cap).min())
        tight = headroom < self.config.prefer_short_when_headroom_below
        for i, request in enumerate(pending):
            is_long = bool(long_term_of(request))
            if tight and not is_long:
                return i
            if not tight and is_long:
                return i
        return 0
