"""Stage types and the per-game stage library.

A *stage type* is a combination of frame clusters (§IV-A1): with N
clusters a game has at most 2^N types, empirically no more than ~2N.
:class:`StageTypeId` canonicalises a cluster set as a sorted tuple of
cluster indices, so types hash and compare structurally.

:class:`StageLibrary` is the profiler's output and everything downstream
consumes it: cluster centroids, which clusters are loading, per-type
statistics (peak demand, typical duration) and the empirical transition
structure between types.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.platform_.resources import N_DIMS, ResourceVector

__all__ = ["StageTypeId", "Segment", "StageStats", "StageLibrary"]


class StageTypeId(tuple):
    """Canonical stage type: a sorted tuple of cluster indices.

    ``StageTypeId([2, 0]) == StageTypeId((0, 2))`` and prints as
    ``<0+2>``.
    """

    def __new__(cls, clusters: Iterable[int]) -> "StageTypeId":
        values = tuple(sorted(set(int(c) for c in clusters)))
        if not values:
            raise ValueError("a stage type needs at least one cluster")
        if values[0] < 0:
            raise ValueError(f"cluster indices must be >= 0, got {values}")
        return super().__new__(cls, values)

    @property
    def clusters(self) -> Tuple[int, ...]:
        """The member cluster indices."""
        return tuple(self)

    def contains(self, cluster: int) -> bool:
        """Whether a cluster belongs to this type."""
        return int(cluster) in self

    def __repr__(self) -> str:
        return "<" + "+".join(str(c) for c in self) + ">"


@dataclass(frozen=True)
class Segment:
    """One observed stage instance in a frame sequence.

    Attributes
    ----------
    type_id:
        The stage type (cluster combination) of the segment.
    start_frame, end_frame:
        Frame range ``[start, end)``.
    is_loading:
        Whether the segment is a loading stage.
    peak, mean:
        Per-dimension max / mean over the member frames.
    q95:
        Per-dimension 95th-percentile frame demand — the *planning* peak
        (a ceiling at this level satisfies ~95 % of frames without the
        double-counted safety of hard maxima).
    """

    type_id: StageTypeId
    start_frame: int
    end_frame: int
    is_loading: bool
    peak: np.ndarray
    mean: np.ndarray
    q95: np.ndarray = None

    def __post_init__(self) -> None:
        if self.q95 is None:
            object.__setattr__(self, "q95", np.asarray(self.peak, dtype=float))

    @property
    def n_frames(self) -> int:
        """Segment length in frames."""
        return self.end_frame - self.start_frame

    def duration_seconds(self, frame_seconds: int = 5) -> float:
        """Segment length in seconds."""
        return float(self.n_frames * frame_seconds)


@dataclass
class StageStats:
    """Aggregated statistics of one stage type across observations.

    ``peak`` is a *robust* peak — the 90th percentile of per-segment
    peaks — so a single player-burst outlier in the corpus does not
    inflate every future allocation of the type.  ``hard_peak`` keeps
    the absolute maximum.
    """

    #: Quantile of per-segment peaks reported as the planning peak.
    PEAK_QUANTILE = 0.9

    type_id: StageTypeId
    occurrences: int = 0
    total_frames: int = 0
    segment_peaks: List[np.ndarray] = field(default_factory=list)
    q95_sum: np.ndarray = field(default_factory=lambda: np.zeros(N_DIMS))
    mean_sum: np.ndarray = field(default_factory=lambda: np.zeros(N_DIMS))
    is_loading: bool = False

    def update(self, segment: Segment) -> None:
        """Fold one observed segment into the statistics."""
        if segment.type_id != self.type_id:
            raise ValueError(
                f"segment type {segment.type_id!r} != stats type {self.type_id!r}"
            )
        self.occurrences += 1
        self.total_frames += segment.n_frames
        self.segment_peaks.append(np.asarray(segment.peak, dtype=float))
        self.q95_sum += np.asarray(segment.q95, dtype=float) * segment.n_frames
        self.mean_sum += segment.mean * segment.n_frames
        self.is_loading = self.is_loading or segment.is_loading

    @property
    def peak(self) -> np.ndarray:
        """Robust planning peak: frame-weighted mean of segment q95s.

        A ceiling at this level covers ~95 % of the type's frames; it is
        deliberately *not* the hard maximum — two co-located stages never
        sit at their simultaneous worst, and planning with maxima would
        double-count safety (and block admissions that are fine in
        practice).
        """
        if self.total_frames == 0:
            return np.zeros(N_DIMS)
        return self.q95_sum / self.total_frames

    @property
    def hard_peak(self) -> np.ndarray:
        """Absolute maximum ever observed."""
        if not self.segment_peaks:
            return np.zeros(N_DIMS)
        return np.stack(self.segment_peaks).max(axis=0)

    @property
    def mean(self) -> np.ndarray:
        """Frame-weighted mean demand."""
        if self.total_frames == 0:
            return np.zeros(N_DIMS)
        return self.mean_sum / self.total_frames

    def mean_duration_seconds(self, frame_seconds: int = 5) -> float:
        """Average observed stage length."""
        if self.occurrences == 0:
            return 0.0
        return self.total_frames * frame_seconds / self.occurrences

    @property
    def peak_vector(self) -> ResourceVector:
        """Planning peak as a :class:`ResourceVector`."""
        return ResourceVector.from_array(self.peak)

    @property
    def mean_vector(self) -> ResourceVector:
        """Mean demand as a :class:`ResourceVector`."""
        return ResourceVector.from_array(self.mean)


class StageLibrary:
    """The profiled model of one game.

    Parameters
    ----------
    game:
        Game name.
    centers:
        ``(K, 4)`` cluster centroids in demand space.
    loading_clusters:
        Indices of the clusters identified as loading behaviour.
    frame_seconds:
        Frame length the library was built at.
    """

    def __init__(
        self,
        game: str,
        centers: np.ndarray,
        loading_clusters: Sequence[int],
        *,
        frame_seconds: int = 5,
    ):
        centers = np.asarray(centers, dtype=float)
        if centers.ndim != 2 or centers.shape[1] != N_DIMS:
            raise ValueError(f"centers must be (K, {N_DIMS}), got {centers.shape}")
        self.game = str(game)
        self.centers = centers
        self.loading_clusters = frozenset(int(c) for c in loading_clusters)
        for c in self.loading_clusters:
            if not (0 <= c < centers.shape[0]):
                raise ValueError(f"loading cluster {c} out of range")
        self.frame_seconds = int(frame_seconds)
        self._stats: Dict[StageTypeId, StageStats] = {}
        self._transitions: Dict[StageTypeId, Counter] = {}

    # ------------------------------------------------------------------
    @property
    def n_clusters(self) -> int:
        """Number of frame clusters (K)."""
        return self.centers.shape[0]

    @property
    def loading_type(self) -> StageTypeId:
        """The canonical loading stage type (all loading clusters)."""
        if not self.loading_clusters:
            raise RuntimeError(f"library for {self.game!r} has no loading clusters")
        return StageTypeId(self.loading_clusters)

    @property
    def stage_types(self) -> List[StageTypeId]:
        """All observed stage types, loading included, in stable order."""
        return sorted(self._stats)

    @property
    def execution_types(self) -> List[StageTypeId]:
        """Observed execution stage types."""
        return [t for t in self.stage_types if not self._stats[t].is_loading]

    def stats(self, type_id: StageTypeId) -> StageStats:
        """Statistics of one observed type."""
        try:
            return self._stats[type_id]
        except KeyError:
            raise KeyError(
                f"stage type {type_id!r} was never observed for {self.game!r}"
            ) from None

    def has_type(self, type_id: StageTypeId) -> bool:
        """Whether the type was observed during profiling."""
        return type_id in self._stats

    def type_is_loading(self, type_id: StageTypeId) -> bool:
        """A type is loading when all its clusters are loading clusters."""
        return all(c in self.loading_clusters for c in type_id)

    # ------------------------------------------------------------------
    def observe_segments(self, segments: Sequence[Segment]) -> None:
        """Fold one trace's segment sequence into stats and transitions."""
        for segment in segments:
            stats = self._stats.get(segment.type_id)
            if stats is None:
                stats = StageStats(segment.type_id)
                self._stats[segment.type_id] = stats
            stats.update(segment)
        # Transition structure between consecutive *execution* types
        # (loading separates them; what the predictor predicts is the next
        # execution stage).
        exec_types = [s.type_id for s in segments if not s.is_loading]
        for prev, nxt in zip(exec_types[:-1], exec_types[1:]):
            self._transitions.setdefault(prev, Counter())[nxt] += 1

    def transition_counts(self, type_id: StageTypeId) -> Counter:
        """Observed successors of an execution type."""
        return Counter(self._transitions.get(type_id, Counter()))

    def most_common_successor(self, type_id: StageTypeId) -> Optional[StageTypeId]:
        """Majority-vote next type, or ``None`` if never followed."""
        counts = self._transitions.get(type_id)
        if not counts:
            return None
        return counts.most_common(1)[0][0]

    # ------------------------------------------------------------------
    # Frame classification (used online every 5 s)
    # ------------------------------------------------------------------
    def classify_frame(self, frame: np.ndarray) -> int:
        """Nearest-centroid cluster of one frame vector."""
        frame = np.asarray(frame, dtype=float).reshape(-1)
        if frame.shape != (N_DIMS,):
            raise ValueError(f"frame must have {N_DIMS} dims, got {frame.shape}")
        d = np.einsum("kd,kd->k", self.centers - frame, self.centers - frame)
        return int(np.argmin(d))

    def is_loading_frame(self, frame: np.ndarray) -> bool:
        """Whether a frame falls in a loading cluster."""
        return self.classify_frame(frame) in self.loading_clusters

    def frame_matches_type(self, frame: np.ndarray, type_id: StageTypeId) -> bool:
        """Whether a frame's nearest cluster belongs to a stage type."""
        return self.classify_frame(frame) in type_id

    # ------------------------------------------------------------------
    def peak_of(self, type_id: StageTypeId) -> ResourceVector:
        """Observed peak demand of a type; falls back to centroid maxima
        (+nothing) for never-observed types built from known clusters."""
        if type_id in self._stats:
            return self._stats[type_id].peak_vector
        peak = self.centers[list(type_id)].max(axis=0)
        return ResourceVector.from_array(peak)

    def max_peak(self) -> ResourceVector:
        """Whole-game observed peak (Eq-1's M)."""
        if not self._stats:
            raise RuntimeError(f"library for {self.game!r} has no observations")
        peak = np.zeros(N_DIMS)
        for stats in self._stats.values():
            peak = np.maximum(peak, stats.peak)
        return ResourceVector.from_array(peak)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form of the whole library."""
        return {
            "game": self.game,
            "centers": self.centers.tolist(),
            "loading_clusters": sorted(self.loading_clusters),
            "frame_seconds": self.frame_seconds,
            "stats": [
                {
                    "type": list(t),
                    "occurrences": s.occurrences,
                    "total_frames": s.total_frames,
                    "segment_peaks": [p.tolist() for p in s.segment_peaks],
                    "q95_sum": s.q95_sum.tolist(),
                    "mean_sum": s.mean_sum.tolist(),
                    "is_loading": s.is_loading,
                }
                for t, s in sorted(self._stats.items())
            ],
            "transitions": [
                {
                    "from": list(t),
                    "to": [[list(k), v] for k, v in counter.items()],
                }
                for t, counter in sorted(self._transitions.items())
            ],
        }

    @staticmethod
    def from_dict(data: dict) -> "StageLibrary":
        """Rebuild a library from :meth:`to_dict` output."""
        lib = StageLibrary(
            data["game"],
            np.asarray(data["centers"], dtype=float),
            data["loading_clusters"],
            frame_seconds=int(data["frame_seconds"]),
        )
        for entry in data["stats"]:
            stats = StageStats(
                type_id=StageTypeId(entry["type"]),
                occurrences=int(entry["occurrences"]),
                total_frames=int(entry["total_frames"]),
                segment_peaks=[
                    np.asarray(p, dtype=float) for p in entry["segment_peaks"]
                ],
                q95_sum=np.asarray(entry["q95_sum"], dtype=float),
                mean_sum=np.asarray(entry["mean_sum"], dtype=float),
                is_loading=bool(entry["is_loading"]),
            )
            lib._stats[stats.type_id] = stats
        for entry in data["transitions"]:
            counter = Counter(
                {StageTypeId(k): int(v) for k, v in entry["to"]}
            )
            lib._transitions[StageTypeId(entry["from"])] = counter
        return lib

    def rescaled(self, factors: ResourceVector, *, name: Optional[str] = None) -> "StageLibrary":
        """A copy of this library with demand magnitudes rescaled.

        Implements the §IV-D migration claim: "the number of stages and
        the logical relationship between the stages will not change …
        the only thing that will change is the amount of resources
        consumed, which can be obtained in a single experiment."  The
        cluster centroids and every per-type statistic are multiplied by
        the platform's demand factors (clipped at 100 %); stage types,
        counts, durations and transitions carry over untouched.
        """
        f = factors.array
        out = StageLibrary(
            name if name is not None else self.game,
            np.clip(self.centers * f[None, :], 0.0, 100.0),
            sorted(self.loading_clusters),
            frame_seconds=self.frame_seconds,
        )
        for type_id, stats in self._stats.items():
            scaled = StageStats(
                type_id=type_id,
                occurrences=stats.occurrences,
                total_frames=stats.total_frames,
                segment_peaks=[
                    np.clip(p * f, 0.0, 100.0) for p in stats.segment_peaks
                ],
                q95_sum=np.clip(stats.q95_sum * f, 0.0, 100.0 * stats.total_frames),
                mean_sum=stats.mean_sum * f,
                is_loading=stats.is_loading,
            )
            out._stats[type_id] = scaled
        for type_id, counter in self._transitions.items():
            out._transitions[type_id] = Counter(counter)
        return out

    def summary(self) -> str:
        """Human-readable multi-line description (used by the benches)."""
        lines = [
            f"StageLibrary({self.game!r}): K={self.n_clusters}, "
            f"loading clusters={sorted(self.loading_clusters)}"
        ]
        for t in self.stage_types:
            s = self._stats[t]
            kind = "loading" if s.is_loading else "execution"
            lines.append(
                f"  {t!r:12} {kind:9} n={s.occurrences:3d} "
                f"dur~{s.mean_duration_seconds(self.frame_seconds):6.1f}s "
                f"peak={np.round(s.peak, 1)}"
            )
        return "\n".join(lines)
