"""Dynamic adjustment of prediction errors (paper §IV-B2).

Three emergency mechanisms revise the predictor's output:

* **Rehearsal callback** — when the observed frame matches neither the
  believed stage nor loading, either (a) re-match it to the correct
  known stage and jump there, or (b) recognise a transient that *looked*
  like loading and revert to the previous stage.  The scheduler drives
  the state machine; this module supplies the bookkeeping.
* **Redundancy allocation** (Eq 1) — the callback ceiling carries a
  margin ``S = (1 − P) · M`` where ``P`` is the model's accuracy and
  ``M`` the game's peak consumption: the worse the model, the larger the
  safety cushion.
* **Replacing model** — after repeated errors, rotate to the next
  backend; the rotation order follows the paper's per-category
  recommendation (DTC for long/heavy games, RF for small/simple ones,
  GBDT for user-dominated ones).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.games.category import GameCategory
from repro.platform_.resources import ResourceVector
from repro.util.effects import effects
from repro.util.validation import check_fraction

__all__ = ["redundancy_allocation", "backend_rotation", "DynamicAdjuster"]


@effects(hot_path=True)
def redundancy_allocation(accuracy: float, peak: ResourceVector) -> ResourceVector:
    """Eq 1: ``S = (1 − P) × M``.

    Parameters
    ----------
    accuracy:
        Predictor accuracy ``P`` in [0, 1].
    peak:
        The game's peak consumption ``M``.
    """
    check_fraction("accuracy", accuracy)
    return peak * (1.0 - accuracy)


def backend_rotation(category: GameCategory) -> Tuple[str, ...]:
    """Model-replacement order per game category (§IV-B2).

    "For tasks with a large amount of computation and a long running
    time, DTC is more suitable.  For simple, small tasks, RF.  GBDT is
    relatively stable, so it is more suitable for games with a large
    impact on users."
    """
    if category in (GameCategory.MOBILE, GameCategory.MMO):
        return ("gbdt", "dtc", "rf")
    if category is GameCategory.WEB:
        return ("rf", "dtc", "gbdt")
    return ("dtc", "gbdt", "rf")  # CONSOLE: big, long-running tasks


@dataclass
class DynamicAdjuster:
    """Error bookkeeping for one hosted session.

    Parameters
    ----------
    category:
        The game's category (sets the rotation order).
    replace_after:
        Consecutive-error threshold that triggers model replacement.

    Notes
    -----
    The two §IV-B2 callback flavours are driven by the scheduler:

    * a MISMATCH judgment with a re-matched known type calls
      :meth:`record_error` and jumps;
    * a loading judgment that reverts within one detection interval (the
      misjudged transient of Figs 9/10) calls :meth:`record_transient`,
      which counts as an error but also tracks the revert statistics the
      benches report.
    """

    category: GameCategory
    replace_after: int = 3
    consecutive_errors: int = 0
    total_errors: int = 0
    total_predictions: int = 0
    transients_reverted: int = 0
    replacements: int = 0
    _backend_idx: int = 0

    def __post_init__(self) -> None:
        if self.replace_after < 1:
            raise ValueError(f"replace_after must be >= 1, got {self.replace_after}")
        self._rotation = backend_rotation(self.category)

    @property
    def current_backend(self) -> str:
        """The backend the session should currently use."""
        return self._rotation[self._backend_idx % len(self._rotation)]

    def record_success(self) -> None:
        """A prediction was confirmed by the next detection."""
        self.total_predictions += 1
        self.consecutive_errors = 0

    def record_error(self) -> bool:
        """A prediction error (rehearsal callback fired).

        Returns True when the model should be replaced now.
        """
        self.total_predictions += 1
        self.total_errors += 1
        self.consecutive_errors += 1
        if self.consecutive_errors >= self.replace_after:
            self.consecutive_errors = 0
            self._backend_idx += 1
            self.replacements += 1
            return True
        return False

    def record_transient(self) -> None:
        """A loading misjudgment was reverted (second callback flavour)."""
        self.transients_reverted += 1

    @property
    def observed_accuracy(self) -> float:
        """Online accuracy estimate (1 until evidence accumulates)."""
        if self.total_predictions == 0:
            return 1.0
        return 1.0 - self.total_errors / self.total_predictions
