"""Training-set construction for the stage predictor (paper §IV-B1).

"How to minimise user impact in prediction requires us to classify the
game and select different data as samples for training based on
different game types."  The builder turns profiled traces into
(features, next-stage) samples and applies the category policy:

* **WEB** — pool every player's records into one dataset ("train all
  player's game records as a training set").
* **MOBILE** — one dataset per player ("finely establish a training set
  for each individual player").
* **CONSOLE** — concatenate each player's sessions into one campaign
  sequence before sampling ("connect all the processes of the player
  playing the game").
* **MMO** — group sessions that co-logged and add the group's stage
  context to the features ("package the data of several players who log
  in … at the same time").

Features per sample: one-hot of the last ``history`` execution stage
types, the normalised count of each type seen so far, the stage index —
plus, for MMO, the co-login group's current type histogram.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.stages import Segment, StageLibrary, StageTypeId
from repro.games.category import GameCategory

__all__ = ["StageSample", "StageDataset", "StageDatasetBuilder"]


@dataclass(frozen=True)
class StageSample:
    """One (history → next stage) training sample."""

    features: np.ndarray
    label: int
    player_id: str
    session_index: int
    position: int


@dataclass
class StageDataset:
    """A dataset ready for an mlkit classifier."""

    X: np.ndarray
    y: np.ndarray
    players: Tuple[str, ...]

    @property
    def n_samples(self) -> int:
        """Number of samples in the dataset."""
        return self.X.shape[0]


class StageDatasetBuilder:
    """Builds per-category datasets over a fitted stage library.

    Parameters
    ----------
    library:
        The game's profiled stage library; its execution types define the
        label space.
    history:
        Number of recent stages one-hot-encoded into the features.
    group_size:
        MMO co-login group size.
    """

    def __init__(self, library: StageLibrary, *, history: int = 3, group_size: int = 3):
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        if group_size < 2:
            raise ValueError(f"group_size must be >= 2, got {group_size}")
        self.library = library
        self.history = int(history)
        self.group_size = int(group_size)
        self.types: List[StageTypeId] = library.execution_types
        if not self.types:
            raise ValueError(
                f"library for {library.game!r} has no execution types"
            )
        self._index: Dict[StageTypeId, int] = {t: i for i, t in enumerate(self.types)}

    # ------------------------------------------------------------------
    @property
    def n_types(self) -> int:
        """Size of the label space (execution stage types)."""
        return len(self.types)

    @property
    def n_base_features(self) -> int:
        """Feature width without the MMO group block."""
        return self.history * self.n_types + self.n_types + 1

    def type_index(self, type_id: StageTypeId) -> Optional[int]:
        """Label index of a type, or ``None`` for unknown types."""
        return self._index.get(type_id)

    def sequence_of(self, segments: Sequence[Segment]) -> List[int]:
        """Execution-type index sequence of one trace (unknowns skipped)."""
        out: List[int] = []
        for seg in segments:
            if seg.is_loading:
                continue
            idx = self._index.get(seg.type_id)
            if idx is not None:
                out.append(idx)
        return out

    # ------------------------------------------------------------------
    def encode_history(
        self,
        seq: Sequence[int],
        position: int,
        *,
        group_hist: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Features for predicting ``seq[position]`` from ``seq[:position]``.

        Layout: ``history`` one-hot blocks (most recent first, zero
        padding beyond the start), normalised per-type counts, then the
        normalised position — plus the group histogram when given.
        """
        k = self.n_types
        feats = np.zeros(self.n_base_features + (k if group_hist is not None else 0))
        for h in range(self.history):
            j = position - 1 - h
            if j >= 0:
                feats[h * k + seq[j]] = 1.0
        counts = np.bincount(seq[:position], minlength=k).astype(float)
        feats[self.history * k : self.history * k + k] = np.minimum(counts, 10.0) / 10.0
        feats[self.history * k + k] = min(position, 20) / 20.0
        if group_hist is not None:
            g = np.asarray(group_hist, dtype=float)
            if g.shape != (k,):
                raise ValueError(f"group_hist must have shape ({k},), got {g.shape}")
            total = g.sum()
            feats[-k:] = g / total if total > 0 else 0.0
        return feats

    # ------------------------------------------------------------------
    def _per_session_sequences(
        self, corpus_segments: Sequence[Tuple[str, Sequence[Segment]]]
    ) -> List[Tuple[str, List[int]]]:
        """(player_id, type-index sequence) per session, order preserved."""
        out: List[Tuple[str, List[int]]] = []
        for player_id, segments in corpus_segments:
            seq = self.sequence_of(segments)
            if len(seq) >= 2:
                out.append((player_id, seq))
        return out

    def build(
        self,
        corpus_segments: Sequence[Tuple[str, Sequence[Segment]]],
        category: GameCategory,
    ) -> Dict[str, StageDataset]:
        """Build the category's dataset(s).

        Parameters
        ----------
        corpus_segments:
            ``(player_id, segments)`` per profiled session, in collection
            order (the order defines CONSOLE campaign concatenation and
            MMO co-login grouping).
        category:
            Fig-7 quadrant selecting the policy.

        Returns
        -------
        dict
            ``{"*": dataset}`` for pooled policies (WEB, CONSOLE, MMO) or
            ``{player_id: dataset}`` for MOBILE.  MMO feature vectors are
            wider (group histogram block appended).
        """
        sessions = self._per_session_sequences(corpus_segments)
        if not sessions:
            raise ValueError("no usable sessions (need >= 2 execution stages each)")
        if category is GameCategory.WEB:
            return {"*": self._pool(sessions)}
        if category is GameCategory.MOBILE:
            return self._per_player(sessions)
        if category is GameCategory.CONSOLE:
            return {"*": self._campaign(sessions)}
        if category is GameCategory.MMO:
            return {"*": self._grouped(sessions)}
        raise ValueError(f"unknown category {category!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _samples_of(self, seq: Sequence[int]) -> List[Tuple[np.ndarray, int]]:
        return [
            (self.encode_history(seq, i), seq[i]) for i in range(1, len(seq))
        ]

    def _pool(self, sessions) -> StageDataset:
        X, y, players = [], [], []
        for player_id, seq in sessions:
            for feats, label in self._samples_of(seq):
                X.append(feats)
                y.append(label)
                players.append(player_id)
        return StageDataset(np.stack(X), np.asarray(y), tuple(players))

    def _per_player(self, sessions) -> Dict[str, StageDataset]:
        by_player: Dict[str, List[Tuple[str, List[int]]]] = {}
        for player_id, seq in sessions:
            by_player.setdefault(player_id, []).append((player_id, seq))
        out: Dict[str, StageDataset] = {}
        for player_id, subset in by_player.items():
            ds = self._pool(subset)
            if ds.n_samples >= 2:
                out[player_id] = ds
        if not out:
            raise ValueError("no player has enough samples for a per-player model")
        return out

    def _campaign(self, sessions) -> StageDataset:
        # Concatenate each player's sessions (collection order) into one
        # long sequence, then sample across session boundaries too.
        by_player: Dict[str, List[int]] = {}
        for player_id, seq in sessions:
            by_player.setdefault(player_id, []).extend(seq)
        X, y, players = [], [], []
        for player_id, seq in by_player.items():
            for feats, label in self._samples_of(seq):
                X.append(feats)
                y.append(label)
                players.append(player_id)
        return StageDataset(np.stack(X), np.asarray(y), tuple(players))

    def _grouped(self, sessions) -> StageDataset:
        # A co-logged party transitions scenes around the same time: when
        # one member is still loading, most of the party has often already
        # entered the next scene.  The group histogram therefore mixes the
        # peers' previous and next stages (deterministically seeded), which
        # is exactly the signal the paper's "package co-logged players into
        # one sample" policy exploits — a peer already in the match reveals
        # which mode the party queued for.
        from repro.util.rng import as_rng, derive_seed

        k = self.n_types
        X, y, players = [], [], []
        for g0 in range(0, len(sessions), self.group_size):
            group = sessions[g0 : g0 + self.group_size]
            for m, (player_id, seq) in enumerate(group):
                others = [s for j, (_, s) in enumerate(group) if j != m]
                for i in range(1, len(seq)):
                    rng = as_rng(derive_seed(0, "colog", f"g{g0}", f"m{m}", f"i{i}"))
                    hist = np.zeros(k)
                    for other in others:
                        ahead = rng.random() < 0.75 and i < len(other)
                        pos = min(i if ahead else i - 1, len(other) - 1)
                        hist[other[pos]] += 1.0
                    feats = self.encode_history(seq, i, group_hist=hist)
                    X.append(feats)
                    y.append(seq[i])
                    players.append(player_id)
        return StageDataset(np.stack(X), np.asarray(y), tuple(players))
