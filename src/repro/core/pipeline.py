"""Offline profiling pipeline: game → :class:`GameProfile`.

"Contention feature profiling and model training only need to be
performed once" (§IV-B1).  :meth:`GameProfile.build` runs the whole
offline side — corpus generation, frame clustering, stage segmentation,
and training all three predictor backends — and returns the artifact the
online scheduler consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.predictor import BACKENDS, StagePredictor
from repro.core.profiler import FrameGrainedProfiler, ProfilerConfig
from repro.core.stages import Segment, StageLibrary
from repro.games.spec import GameSpec
from repro.games.tracegen import TraceBundle, generate_corpus
from repro.util.rng import Seed

if TYPE_CHECKING:
    from repro.platform_.profile import PlatformProfile

__all__ = ["GameProfile"]


@dataclass
class GameProfile:
    """Everything the online system knows about one game.

    Attributes
    ----------
    spec:
        The game (used for category, frame lock, length class — all
        public, manufacturer-published facts).
    library:
        Profiled stage library.
    predictors:
        One trained :class:`~repro.core.predictor.StagePredictor` per
        backend name.
    corpus_segments:
        The profiled training sessions (kept for ablations/benches).
    """

    spec: GameSpec
    library: StageLibrary
    predictors: Dict[str, StagePredictor]
    corpus_segments: List[Tuple[str, List[Segment]]]

    @classmethod
    def build(
        cls,
        spec: GameSpec,
        *,
        n_players: int = 8,
        sessions_per_player: int = 4,
        seed: Seed = 0,
        backends: Sequence[str] = BACKENDS,
        profiler_config: Optional[ProfilerConfig] = None,
        history: int = 3,
        corpus: Optional[Sequence[TraceBundle]] = None,
        auto_k: bool = False,
    ) -> "GameProfile":
        """Run the full offline pipeline for one game.

        Parameters
        ----------
        spec:
            The game to profile.
        n_players, sessions_per_player, seed:
            Corpus-generation parameters (ignored when ``corpus`` given).
        backends:
            Which predictor backends to train.
        profiler_config:
            Profiler tuning; defaults are the paper's settings.
        history:
            Stage-history length of the predictor features.
        corpus:
            Pre-generated traces, e.g. from a non-reference platform.
        auto_k:
            Select K with the Fig-14 elbow sweep instead of the game's
            published cluster count.  The paper itself chose K per game
            by inspecting the Fig-14 curves once offline ("guides us to
            choose the appropriate k value") and then fixed it — the
            default reproduces that workflow; ``auto_k=True`` runs the
            fully automatic criterion (see the Fig-14 bench for how the
            two compare).
        """
        bundles = (
            list(corpus)
            if corpus is not None
            else generate_corpus(
                spec,
                n_players=n_players,
                sessions_per_player=sessions_per_player,
                seed=seed,
            )
        )
        if profiler_config is None:
            profiler_config = ProfilerConfig(
                n_clusters=None if auto_k else len(spec.clusters)
            )
        profiler = FrameGrainedProfiler(spec.name, config=profiler_config)
        library = profiler.fit(bundles)

        corpus_segments: List[Tuple[str, List[Segment]]] = [
            (b.player_id, profiler.segment_with(library, b.frames().values))
            for b in bundles
        ]
        predictors: Dict[str, StagePredictor] = {}
        for backend in backends:
            predictor = StagePredictor(
                library, spec.category, backend=backend, history=history, seed=seed
            )
            predictor.train(corpus_segments)
            predictors[backend] = predictor
        return cls(
            spec=spec,
            library=library,
            predictors=predictors,
            corpus_segments=corpus_segments,
        )

    # ------------------------------------------------------------------
    def predictor(self, backend: str) -> StagePredictor:
        """The trained predictor for a backend."""
        try:
            return self.predictors[backend]
        except KeyError:
            raise KeyError(
                f"no {backend!r} predictor trained for {self.spec.name!r}; "
                f"have {sorted(self.predictors)}"
            ) from None

    def accuracy(self, backend: str) -> float:
        """Held-out accuracy of one backend (Eq-1's P)."""
        acc = self.predictor(backend).accuracy_
        return float(acc) if acc is not None else 0.0

    def best_backend(self) -> str:
        """Backend with the highest held-out accuracy."""
        return max(self.predictors, key=self.accuracy)

    # ------------------------------------------------------------------
    # Persistence: "profiling and model training only need to be
    # performed once" — so the artifact must survive the process.
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> None:
        """Write the profile (library + trained predictors) as JSON.

        The game spec itself is not serialized — it is code, identified
        by name; :meth:`load` takes the spec to rebind.  Corpus segments
        are profiling intermediates and are not persisted.
        """
        import json

        payload = {
            "format": "cocg-game-profile/1",
            "game": self.spec.name,
            "library": self.library.to_dict(),
            "predictors": {
                backend: predictor.to_dict()
                for backend, predictor in self.predictors.items()
            },
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: Union[str, Path], spec: GameSpec) -> "GameProfile":
        """Reload a saved profile, rebinding it to its game spec."""
        import json

        from repro.core.predictor import StagePredictor
        from repro.core.stages import StageLibrary

        payload = json.loads(Path(path).read_text())
        if payload.get("format") != "cocg-game-profile/1":
            raise ValueError(f"{path} is not a CoCG game profile")
        if payload["game"] != spec.name:
            raise ValueError(
                f"profile is for game {payload['game']!r}, not {spec.name!r}"
            )
        library = StageLibrary.from_dict(payload["library"])
        predictors = {
            backend: StagePredictor.from_dict(data, library)
            for backend, data in payload["predictors"].items()
        }
        return cls(
            spec=spec, library=library, predictors=predictors, corpus_segments=[]
        )

    def rescaled(self, platform: "PlatformProfile") -> "GameProfile":
        """This profile migrated to another platform (§IV-D).

        The stage structure (types, transitions, trained predictors) is
        platform-invariant; only the demand magnitudes change, by the
        platform's factors.  This is exactly the paper's argument for why
        one profiling pass suffices across a heterogeneous fleet.

        Parameters
        ----------
        platform:
            A :class:`~repro.platform_.profile.PlatformProfile`.
        """
        import copy

        library = self.library.rescaled(platform.factors)
        predictors = {}
        for backend, predictor in self.predictors.items():
            clone = copy.copy(predictor)
            clone.library = library  # judge/classify against scaled centers
            predictors[backend] = clone
        return GameProfile(
            spec=self.spec,
            library=library,
            predictors=predictors,
            corpus_segments=self.corpus_segments,
        )
