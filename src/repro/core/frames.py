"""Frame extraction: 1-second telemetry → the paper's 5-second frames.

"Each frame cluster represents the amount of resources consumed in a
certain 5-second slice" (§IV-A2).  These helpers are deliberately tiny —
a frame is just the mean of five consecutive telemetry rows — but they
pin the convention (mean aggregation, trailing partial windows dropped)
in one place.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.timeseries import ResourceSeries

__all__ = ["FRAME_SECONDS", "frames_of_series", "frame_matrix"]

#: The paper's detection interval: every loading stage exceeds 5 s, so a
#: 5-second frame can never straddle an entire loading stage unseen.
FRAME_SECONDS = 5


def frames_of_series(
    series: ResourceSeries, *, frame_seconds: int = FRAME_SECONDS
) -> ResourceSeries:
    """Aggregate a 1-second series into frames (mean per window)."""
    if frame_seconds < 1:
        raise ValueError(f"frame_seconds must be >= 1, got {frame_seconds}")
    return series.resample(float(frame_seconds), reduce="mean")


def frame_matrix(
    series_list: Sequence[ResourceSeries], *, frame_seconds: int = FRAME_SECONDS
) -> np.ndarray:
    """Stack the frames of many traces into one ``(N, D)`` matrix.

    The profiler clusters this matrix; traces contribute only complete
    frames.
    """
    if not series_list:
        raise ValueError("series_list must be non-empty")
    parts = []
    for series in series_list:
        frames = frames_of_series(series, frame_seconds=frame_seconds)
        if frames.n_samples:
            parts.append(frames.values)
    if not parts:
        raise ValueError("no complete frames in any input series")
    return np.concatenate(parts, axis=0)
