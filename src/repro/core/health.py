"""Predictor health: a consecutive-failure circuit breaker.

The CoCG control loop leans on a trained model every 5 seconds; a broken
backend must not turn every tick into an exception storm.
:class:`PredictorHealth` implements the classic three-state breaker over
*simulation* time (no wall clock):

* **closed** — the model chain is trusted and used normally;
* **open** — after ``threshold`` consecutive chain failures the breaker
  trips: the scheduler stops calling the models, serves stage-history
  priors, and drops the session into reactive (usage-following)
  allocation — CoCG degrades into the paper's "improved" baseline
  instead of crashing the tick;
* **half-open** — once ``cooldown`` seconds have passed the next call is
  allowed through as a probe; success re-closes the breaker, failure
  re-opens it and restarts the cooldown.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["BreakerState", "PredictorHealth"]


class BreakerState(Enum):
    """Circuit-breaker state."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class PredictorHealth:
    """Consecutive-failure circuit breaker with cooldown re-probe.

    Parameters
    ----------
    threshold:
        Consecutive failures that trip the breaker open.
    cooldown:
        Simulation seconds an open breaker waits before permitting a
        half-open probe.
    """

    def __init__(self, *, threshold: int = 3, cooldown: float = 60.0):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = int(threshold)
        self.cooldown = float(cooldown)
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self.consecutive_failures = 0
        self.total_failures = 0
        self.total_successes = 0
        self.open_count = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> BreakerState:
        """Current breaker state."""
        return self._state

    @property
    def is_open(self) -> bool:
        """True while the model chain is distrusted (open or probing)."""
        return self._state is not BreakerState.CLOSED

    def allow(self, now: float) -> bool:
        """Whether a model call may be attempted at sim-time ``now``.

        An open breaker transitions to half-open (and answers True) once
        the cooldown has elapsed; the caller's next
        :meth:`record_success`/:meth:`record_failure` settles the probe.
        """
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.OPEN:
            if now >= self._opened_at + self.cooldown:
                self._state = BreakerState.HALF_OPEN
                return True
            return False
        return True  # HALF_OPEN: the probe is in flight

    def record_success(self) -> None:
        """A model call succeeded; close the breaker."""
        self.total_successes += 1
        self.consecutive_failures = 0
        self._state = BreakerState.CLOSED

    def record_failure(self, now: float) -> None:
        """A model call (or probe) failed at sim-time ``now``."""
        self.total_failures += 1
        self.consecutive_failures += 1
        tripped = (
            self._state is BreakerState.HALF_OPEN
            or self.consecutive_failures >= self.threshold
        )
        if tripped:
            self._state = BreakerState.OPEN
            self._opened_at = float(now)
            self.open_count += 1
            self.consecutive_failures = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PredictorHealth(state={self._state.value!r}, "
            f"failures={self.total_failures}, opens={self.open_count})"
        )
