"""The CoCG scheduler: the online control loop over one server.

Every ``detect_interval`` seconds (paper: 5 s — longer than any loading
stage, so no loading can slip through unseen), the scheduler runs the
four-step cycle of Fig 8 for every hosted session:

1. **Real-time data collection** — read the last telemetry window.
2. **Stage judgment** — SAME / LOADING / MISMATCH against the believed
   stage (``StagePredictor.judge``).
3. **Next-stage prediction** — on entering loading, predict the next
   execution stage from the stage history.
4. **Resource adjustment** — retune the cgroup ceilings: predicted-stage
   peak + Eq-1 redundancy for execution, loading plan (possibly
   throttled by the regulator's time stealing) for loading.

The §IV-B2 dynamic adjustments are embedded in the state machine:
rehearsal callback (both flavours), redundancy allocation, and model
replacement after repeated errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

import numpy as np

from repro.core.adjustment import DynamicAdjuster, backend_rotation
from repro.core.allocation import AllocationPlanner
from repro.core.distributor import AdmissionDecision, Distributor
from repro.core.pipeline import GameProfile
from repro.core.predictor import (
    Judgment,
    JudgmentKind,
    PredictorBackendError,
    StagePredictor,
)
from repro.core.regulator import Regulator, RegulatorConfig
from repro.core.stages import StageTypeId
from repro.core.health import BreakerState, PredictorHealth
from repro.obs.metrics import Counter, CounterChild
from repro.obs.naming import (
    SCHED_DECISIONS,
    SCHED_DEGRADED_TRANSITIONS,
    node_stream,
)
from repro.obs.observer import Observer
from repro.games.session import GameSession
from repro.platform_.allocator import AllocationError, Allocator
from repro.platform_.resources import ResourceVector
from repro.sim.telemetry import TelemetryRecorder
from repro.streaming.encoder import EncoderModel
from repro.util.effects import effects

__all__ = [
    "CoCGConfig",
    "CoCGScheduler",
    "SessionControl",
    "Decision",
    "RolloutMemo",
]


class RolloutMemo(Protocol):
    """A shared predictor-rollout memo (``repro.serve.rollout_cache``).

    Keyed by ``(session id, epoch, horizon)``: the epoch is the
    session's stage-transition counter, so entries from before a
    transition can never answer for the state after it.  Defined here as
    a Protocol so :mod:`repro.core` stays import-free of the serve
    layer.
    """

    def get(
        self, session_id: str, epoch: int, horizon: int
    ) -> Optional[List[ResourceVector]]:
        """Return the memoized peaks, or ``None`` on a miss."""
        ...

    def put(
        self,
        session_id: str,
        epoch: int,
        horizon: int,
        peaks: List[ResourceVector],
    ) -> None:
        """Memoize one rollout's peaks."""
        ...

    def invalidate(self, session_id: str) -> None:
        """Drop every entry of one session (stage transition/release)."""
        ...


@dataclass(frozen=True)
class Decision:
    """One entry of the scheduler's decision log.

    ``action`` is one of: ``admit``, ``reject``, ``stage-end`` (loading
    detected, next stage predicted), ``stage-start`` (prediction
    confirmed), ``callback`` (rehearsal callback, either flavour),
    ``transient-revert``, ``hold`` (loading extended), ``probe``
    (starved ceiling raised), ``release``.
    """

    time: float
    session_id: str
    action: str
    detail: str = ""


@dataclass(frozen=True)
class CoCGConfig:
    """Scheduler tuning (defaults = the paper's settings).

    Parameters
    ----------
    detect_interval:
        Detection period in seconds.
    horizon:
        Distributor prediction iterations (Algorithm-1 ``N``).
    overshoot_tolerance:
        Admission tolerance on predicted peaks (§IV-D: brief degradation
        is compensated, so CoCG co-locates "as much as possible").
    use_redundancy:
        Apply the Eq-1 margin (ablation switch).
    replace_after:
        Consecutive errors before model replacement.
    regulator:
        Regulator configuration.
    stream_encoder:
        Charge each session this encoder's CPU overhead (``None`` = off).
    failure_threshold:
        Consecutive model-chain failures that trip a session's
        :class:`~repro.core.health.PredictorHealth` breaker open.
    failure_cooldown:
        Seconds an open breaker waits before a half-open re-probe.
    degraded_margin:
        Multiplicative headroom over observed usage in degraded
        (reactive) mode — mirrors ``baselines.reactive``.
    degraded_floor:
        Per-dimension minimum ceiling (percent) in degraded mode.
    """

    detect_interval: int = 5
    horizon: int = 3
    overshoot_tolerance: float = 0.10
    use_redundancy: bool = True
    replace_after: int = 3
    regulator: RegulatorConfig = field(default_factory=RegulatorConfig)
    stream_encoder: Optional[EncoderModel] = None
    failure_threshold: int = 3
    failure_cooldown: float = 60.0
    degraded_margin: float = 0.15
    degraded_floor: float = 8.0

    def __post_init__(self) -> None:
        if self.detect_interval < 1:
            raise ValueError(
                f"detect_interval must be >= 1, got {self.detect_interval}"
            )
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.failure_cooldown < 0:
            raise ValueError(
                f"failure_cooldown must be >= 0, got {self.failure_cooldown}"
            )


class SessionControl:
    """Per-session scheduler state (also the distributor's task view)."""

    def __init__(
        self,
        session: GameSession,
        profile: GameProfile,
        planner: AllocationPlanner,
        backend: str,
        replace_after: int,
        steal_fraction: float = 0.2,
        health: Optional[PredictorHealth] = None,
        now: float = 0.0,
    ):
        self.session = session
        self.profile = profile
        self.planner = planner
        self.backend = backend
        self.steal_fraction = float(steal_fraction)
        self.adjuster = DynamicAdjuster(
            profile.spec.category, replace_after=replace_after
        )
        self.health = health if health is not None else PredictorHealth()
        self.phase: str = "loading"  # sessions always boot by loading
        self.believed: Optional[StageTypeId] = None
        self.prev_exec: Optional[StageTypeId] = None
        self.exec_history: List[StageTypeId] = []
        self.predicted: Optional[StageTypeId] = None
        self.predicted_conf: float = 0.0
        self.maybe_transient: bool = False
        self.redundant: bool = False
        self.hold_seconds: float = 0.0
        self.degraded_logged: bool = False
        self.prior_served: int = 0
        self._peaks_cache: Dict[int, List[ResourceVector]] = {}
        #: Bumped on every control-visible state change; rollout-cache
        #: entries are keyed by it so stale epochs can never answer.
        self.rollout_epoch: int = 0
        #: Optional shared memo (attached by the serve layer).
        self.rollout_cache: Optional[RolloutMemo] = None
        self.desired: ResourceVector = planner.for_loading()
        # Prime the first prediction from the empty history.
        self._predict_next(now)

    # ------------------------------------------------------------------
    @property
    def predictor(self) -> StagePredictor:
        """The trained predictor for the session's current backend."""
        preds = self.profile.predictors
        if self.backend in preds:
            return preds[self.backend]
        return next(iter(preds.values()))

    @property
    def player_id(self) -> str:
        """The controlling player's stable id."""
        return self.session.player.player_id

    def _model_chain(self) -> List[StagePredictor]:
        """Trained predictors in fallback order: current backend first,
        then the category's rotation order (§IV-B2)."""
        preds = self.profile.predictors
        order = [self.backend] + [
            b for b in backend_rotation(self.profile.spec.category)
            if b != self.backend
        ]
        return [preds[b] for b in order if b in preds]

    def _chain_predict(
        self, history: List[StageTypeId], now: float
    ) -> tuple:
        """Predict via the fallback chain under the circuit breaker.

        Returns ``(stage_type, confidence, from_model)``.  Walks the
        trained backends in rotation order; if every backend fails (or
        the breaker is open) the stage-history prior answers instead and
        ``from_model`` is False.
        """
        if self.health.allow(now):
            for predictor in self._model_chain():
                try:
                    stage, conf = predictor.predict_next(
                        history, player_id=self.player_id
                    )
                except PredictorBackendError:
                    continue
                self.health.record_success()
                return stage, conf, True
            self.health.record_failure(now)
        self.prior_served += 1
        stage, conf = self.predictor.prior_prediction()
        return stage, conf, False

    def try_probe(self, now: float) -> bool:
        """Half-open probe: is the model chain serving again?

        Consults the breaker first (no-op while the cooldown runs) and
        records the probe's outcome, so a success re-closes the breaker
        and a failure restarts the cooldown.
        """
        if not self.health.allow(now):
            return False
        _stage, _conf, from_model = self._chain_predict(self.exec_history, now)
        return from_model

    def _predict_next(self, now: float = 0.0) -> None:
        self.predicted, self.predicted_conf, _ = self._chain_predict(
            self.exec_history, now
        )

    def _rotate_backend(self) -> None:
        self.backend = self.adjuster.current_backend
        acc = self.profile.predictors.get(self.backend)
        if acc is not None and acc.accuracy_ is not None:
            self.planner.set_accuracy(acc.accuracy_)

    # ------------------------------------------------------------------
    # RunningTaskView protocol
    # ------------------------------------------------------------------
    @property
    def current_allocation(self) -> ResourceVector:
        """The ceiling the session currently wants (RunningTaskView)."""
        return self.desired

    def min_allocation(self) -> ResourceVector:
        """Smallest viable ceiling right now.

        A loading session is compressible — its progress rate scales with
        the CPU grant (time stealing) — so the distributor counts it at
        its throttled footprint when testing whether a newcomer can boot.
        """
        if self.phase == "loading":
            return self.planner.throttled_loading(self.steal_fraction)
        return self.desired

    def invalidate_rollouts(self) -> None:
        """Drop every memoized rollout of this session.

        Called whenever control-visible state may change (each control
        visit, release): the local per-tick cache is cleared and the
        session's epoch is bumped, which orphans any entries a shared
        :class:`RolloutMemo` still holds.
        """
        self._peaks_cache.clear()
        self.rollout_epoch += 1
        if self.rollout_cache is not None:
            self.rollout_cache.invalidate(self.session.session_id)

    @effects(hot_path=True)
    def predicted_peaks(self, horizon: int) -> List[ResourceVector]:
        """Rolled-forward allocation peaks for the distributor.

        Memoized between control ticks: the rollout only depends on
        state the 5-second control loop mutates, while the distributor
        may ask for it once per queued request per admission round.
        When a shared :class:`RolloutMemo` is attached it answers first
        (so the serve layer's hit/miss counters see every lookup);
        otherwise a session-local cache serves repeats.
        """
        cache = self.rollout_cache
        if cache is not None:
            sid = self.session.session_id
            cached = cache.get(sid, self.rollout_epoch, horizon)
            if cached is None:
                cached = self._compute_peaks(horizon)
                cache.put(sid, self.rollout_epoch, horizon, cached)
            return cached
        local = self._peaks_cache.get(horizon)
        if local is None:
            local = self._compute_peaks(horizon)
            self._peaks_cache[horizon] = local
        return local

    @effects(hot_path=True)
    def _compute_peaks(self, horizon: int) -> List[ResourceVector]:
        """One uncached rollout: walk the predicted stage chain and map
        each stage to its (margin-free) execution plan."""
        start = self.believed if self.phase == "execution" else self.predicted
        chain = self.predictor.rollout(
            self.exec_history, horizon, start=start, player_id=self.player_id
        )
        if not chain:
            # No stage belief yet: the current ceiling is the best guess.
            return [self.desired]
        return [self.planner.for_execution(t, redundancy=False) for t in chain]


class CoCGScheduler:
    """CoCG control over one server.

    Parameters
    ----------
    allocator:
        The server's (capped) allocation front end.
    config:
        Scheduler configuration.

    Notes
    -----
    The scheduler never reads a session's ground truth — only the
    telemetry windows handed to :meth:`control`.
    """

    def __init__(self, allocator: Allocator, *, config: Optional[CoCGConfig] = None):
        self.allocator = allocator
        self.config = config if config is not None else CoCGConfig()
        budget = allocator.capped_capacity(0)
        self.distributor = Distributor(
            budget,
            horizon=self.config.horizon,
            overshoot_tolerance=self.config.overshoot_tolerance,
        )
        self.regulator = Regulator(budget, config=self.config.regulator)
        self._sessions: Dict[str, SessionControl] = {}
        self._last_window: Optional[np.ndarray] = None
        self._now: float = 0.0
        self.decision_log: List[Decision] = []
        self.rejections = 0
        self.admissions = 0
        #: Shared rollout memo (attached by the serve layer, if any).
        self.rollout_cache: Optional[RolloutMemo] = None
        self._terms_cache: Dict[str, Tuple[ResourceVector, ResourceVector]] = {}
        #: Shared observer (attached by the fleet, if any).
        self.obs: Optional[Observer] = None
        self._obs_stream: str = node_stream("server")
        self._c_decisions: Optional[Counter] = None
        self._c_deg_enter: Optional[CounterChild] = None
        self._c_deg_exit: Optional[CounterChild] = None

    # ------------------------------------------------------------------
    @property
    def sessions(self) -> Dict[str, SessionControl]:
        """Hosted sessions' control state (read-only copy)."""
        return dict(self._sessions)

    def allocation_of(self, session_id: str) -> ResourceVector:
        """The ceiling currently granted to a hosted session."""
        return self.allocator.allocation_of(session_id)

    def _log(self, session_id: str, action: str, detail: str = "") -> None:
        self.decision_log.append(Decision(self._now, session_id, action, detail))
        if self._c_decisions is not None:
            self._c_decisions.labels(action=action).inc(time=self._now)
            # Degraded-mode boundary crossings get their own metric:
            # "degraded" is logged once per entry (degraded_logged
            # guard), "breaker-close" once per exit.
            if action == "degraded" and self._c_deg_enter is not None:
                self._c_deg_enter.inc(time=self._now)
            elif action == "breaker-close" and self._c_deg_exit is not None:
                self._c_deg_exit.inc(time=self._now)

    def _make_planner(self, profile: GameProfile, backend: str) -> AllocationPlanner:
        return AllocationPlanner(
            profile.library,
            accuracy=profile.accuracy(backend),
            encoder=self.config.stream_encoder,
        )

    def _admission_planner(
        self, profile: GameProfile
    ) -> Tuple[str, AllocationPlanner]:
        """The backend (category rotation head) and planner admission uses."""
        backend = next(
            (
                b
                for b in backend_rotation(profile.spec.category)
                if b in profile.predictors
            ),
            next(iter(profile.predictors)),
        )
        return backend, self._make_planner(profile, backend)

    def admission_terms(
        self, profile: GameProfile
    ) -> Tuple[ResourceVector, ResourceVector]:
        """The newcomer's Algorithm-1 terms for one game.

        Returns ``(entry_min, steady_peak)``: the throttled boot
        footprint (the boot itself is compressible — time stealing
        applies to it too) and the frame-weighted typical play ceiling.
        Both are pure functions of the game's profile, so they are
        memoized per game; the serve-layer batcher calls this once per
        candidate without re-deriving planners.
        """
        name = profile.spec.name
        cached = self._terms_cache.get(name)
        if cached is None:
            _backend, planner = self._admission_planner(profile)
            cached = (
                planner.throttled_loading(self.config.regulator.steal_fraction),
                self._typical_plan(planner),
            )
            self._terms_cache[name] = cached
        return cached

    def task_views(self) -> List[SessionControl]:
        """The running set as Algorithm-1 task views (batcher input)."""
        return list(self._sessions.values())

    def attach_rollout_cache(self, cache: RolloutMemo) -> None:
        """Share a rollout memo across this scheduler's sessions."""
        self.rollout_cache = cache
        for ctl in self._sessions.values():
            ctl.rollout_cache = cache

    def attach_observer(self, obs: Observer, *, node: str = "") -> None:
        """Report decisions and control cycles through a shared observer.

        Every decision-log entry is mirrored into
        ``cocg_decisions_total{action}``, degraded-mode entries/exits
        into ``cocg_degraded_transitions_total{direction}``, and each
        :meth:`control` cycle becomes a ``cocg.control`` span on the
        node's stream (``node:<id>``).
        """
        self.obs = obs
        self._obs_stream = node_stream(node or "server")
        self._c_decisions = obs.counter(
            SCHED_DECISIONS,
            "CoCG scheduler decision-log entries by action.",
            ("action",),
        )
        transitions = obs.counter(
            SCHED_DEGRADED_TRANSITIONS,
            "Degraded-mode boundary crossings by direction.",
            ("direction",),
        )
        self._c_deg_enter = transitions.labels(direction="enter")
        self._c_deg_exit = transitions.labels(direction="exit")

    # ------------------------------------------------------------------
    # Admission (the distributor front end)
    # ------------------------------------------------------------------
    def try_admit(
        self,
        session: GameSession,
        profile: GameProfile,
        *,
        time: float = 0.0,
        gpu_index: Optional[int] = None,
    ) -> AdmissionDecision:
        """Algorithm-1 admission; on success the session is placed."""
        backend, planner = self._admission_planner(profile)
        entry = planner.for_loading()
        entry_min, steady = self.admission_terms(profile)
        decision = self.distributor.can_admit(
            entry_min, steady, self.task_views()
        )
        if not decision.admitted:
            self.rejections += 1
            self._now = time
            self._log(session.session_id, "reject", decision.reason)
            return decision
        gi = gpu_index if gpu_index is not None else self.allocator.gpu_order()[0]
        throttled = planner.throttled_loading(self.config.regulator.steal_fraction)
        grant = entry.minimum(self.allocator.capped_available(gi)).maximum(
            throttled.minimum(entry)
        )
        try:
            self.allocator.place(session.session_id, grant, gpu_index=gi, time=time)
        except AllocationError:
            self.rejections += 1
            return AdmissionDecision(False, "placement failed under the cap")
        ctl = SessionControl(
            session,
            profile,
            planner,
            backend,
            self.config.replace_after,
            steal_fraction=self.config.regulator.steal_fraction,
            health=PredictorHealth(
                threshold=self.config.failure_threshold,
                cooldown=self.config.failure_cooldown,
            ),
            now=time,
        )
        if not self.config.use_redundancy:
            ctl.planner.set_accuracy(1.0)  # zero Eq-1 margin
        ctl.rollout_cache = self.rollout_cache
        ctl.desired = entry
        self._sessions[session.session_id] = ctl
        self.admissions += 1
        self._now = time
        self._log(session.session_id, "admit", decision.reason)
        return decision

    @staticmethod
    def _typical_plan(planner: AllocationPlanner) -> ResourceVector:
        """Frame-weighted median execution-stage plan (the game's
        *typical* play ceiling, used as Algorithm-1's newcomer term)."""
        lib = planner.library
        types = lib.execution_types
        if not types:
            return planner.peak_plan()
        weighted = sorted(
            ((lib.stats(t).total_frames, t) for t in types),
            key=lambda x: planner.for_execution(x[1], redundancy=False).max_component(),
        )
        total = sum(w for w, _ in weighted)
        acc = 0
        for w, t in weighted:
            acc += w
            if acc * 2 >= total:
                return planner.for_execution(t, redundancy=False)
        return planner.for_execution(weighted[-1][1], redundancy=False)

    def release(self, session_id: str, *, time: float = 0.0) -> None:
        """Remove a finished/aborted session."""
        if session_id in self._sessions:
            self._sessions[session_id].invalidate_rollouts()
            del self._sessions[session_id]
            self.allocator.release(session_id, time=time)
            self._now = time
            self._log(session_id, "release")

    # ------------------------------------------------------------------
    # The 5-second control cycle
    # ------------------------------------------------------------------
    def control(self, time: float, telemetry: TelemetryRecorder) -> None:
        """Run one detection cycle over every hosted session.

        The cycle is fault-isolated: an exception in one session's
        control path is logged to telemetry, trips that session's
        predictor breaker, and leaves it on a safe peak-reserve ceiling
        — it never aborts the tick for its neighbours.
        """
        interval = self.config.detect_interval
        self._now = time
        if self.obs is not None:
            self.obs.tick(time)
            with self.obs.span(
                "cocg.control", time, stream=self._obs_stream
            ) as span:
                self._control_cycle(time, telemetry, interval)
                span.args["sessions"] = len(self._sessions)
            return
        self._control_cycle(time, telemetry, interval)

    def _control_cycle(
        self, time: float, telemetry: TelemetryRecorder, interval: int
    ) -> None:
        for sid, ctl in self._sessions.items():
            window = telemetry.observed_window(sid, interval)
            if window is None:
                continue
            try:
                self._control_session(ctl, window, interval)
            except Exception as exc:
                telemetry.record_fault_event(
                    time, "control-error", f"{sid}: {exc!r}"
                )
                ctl.health.record_failure(time)
                ctl.desired = ctl.planner.peak_plan()
                self._log(sid, "control-error", repr(exc))
        self._grant_all(time)

    def degraded_sessions(self) -> List[str]:
        """Sessions currently running in degraded (open-breaker) mode."""
        return [
            sid
            for sid, ctl in self._sessions.items()
            if ctl.health.state is not BreakerState.CLOSED
        ]

    def _control_session(
        self, ctl: SessionControl, window: np.ndarray, interval: int
    ) -> None:
        ctl.invalidate_rollouts()  # state may change below
        self._last_window = window
        if ctl.health.state is not BreakerState.CLOSED:
            # Open breaker: the model chain is distrusted.  Probe once
            # the cooldown allows it; until a probe succeeds the session
            # runs reactive usage-following (the "improved" baseline)
            # instead of predictive control.
            if ctl.try_probe(self._now):
                ctl.degraded_logged = False
                self._log(
                    ctl.session.session_id, "breaker-close",
                    "predictor chain restored; resuming predictive control",
                )
            else:
                self._control_degraded(ctl, window)
                return
        judgment = ctl.predictor.judge(
            window, ctl.believed if ctl.phase == "execution" else None
        )
        if ctl.phase == "execution":
            # Saturation guard: telemetry shows *usage*, which is clipped
            # at the granted ceiling.  A window pinned against the grant
            # no longer resembles the stage's true clusters —
            # reinterpreting it would "discover" a cheaper stage, shrink
            # the grant, and spiral.  A pinned window means demand ≥
            # grant, not a stage change.  The one trustworthy signal
            # while pinned is a *voluntary* GPU drop far below the grant:
            # that is a real loading screen.
            try:
                granted = self.allocator.allocation_of(
                    ctl.session.session_id
                ).array
            except KeyError:  # pragma: no cover - defensive
                granted = ctl.desired.array
            # "Pinned" must mean *clipped at the ceiling*, not merely high:
            # q95-planned ceilings put healthy usage at 0.85–0.95 of the
            # grant.  A 5-second usage mean within noise of the grant
            # itself only happens when demand exceeds it every second.
            meaningful = granted > 1.0
            slack = np.maximum(0.8, 0.015 * granted)
            pinned = bool(np.any(meaningful & (window >= granted - slack)))
            if pinned:
                gpu_granted = granted[1]
                voluntary_gpu_drop = (
                    judgment.kind is JudgmentKind.LOADING
                    and gpu_granted > 1.0
                    and window[1] < 0.7 * gpu_granted
                )
                if not voluntary_gpu_drop:
                    # Starved: probe the ceiling upward (geometrically,
                    # capped at the whole-game peak) until usage unpins —
                    # only then can the frame be judged faithfully.
                    target = ctl.planner.peak_plan()
                    probe = np.minimum(
                        ctl.desired.array * 1.3 + 2.0, target.array
                    )
                    ctl.desired = ctl.desired.maximum(
                        ResourceVector.from_array(probe)
                    )
                    self._log(
                        ctl.session.session_id, "probe",
                        f"ceiling raised toward {np.round(target.array, 1)}",
                    )
                    return
            self._control_execution(ctl, judgment)
        else:
            self._control_loading(ctl, judgment, interval)

    def _control_degraded(self, ctl: SessionControl, window: np.ndarray) -> None:
        """Reactive usage-following for an open-breaker session.

        Mirrors ``baselines.reactive``: ceiling = observed window ×
        (1 + margin), floored per dimension — no model, no prediction.
        """
        target = np.maximum(
            window * (1.0 + self.config.degraded_margin),
            self.config.degraded_floor,
        )
        ctl.desired = ResourceVector.from_array(np.clip(target, 0.0, 100.0))
        if not ctl.degraded_logged:
            ctl.degraded_logged = True
            self._log(
                ctl.session.session_id, "degraded",
                "predictor breaker open; reactive peak-reserve allocation",
            )

    def _control_execution(self, ctl: SessionControl, j: Judgment) -> None:
        if j.kind is JudgmentKind.SAME:
            # Settle on the plain stage plan: this releases both the Eq-1
            # callback cushion and any starvation probe once the stage is
            # confirmed and usage floats freely below the ceiling.
            if ctl.believed is not None:
                ctl.desired = ctl.planner.for_execution(ctl.believed, redundancy=False)
                ctl.redundant = False
            return
        if j.kind is JudgmentKind.LOADING:
            # Stage ended; enter loading and predict the next stage.
            ctl.phase = "loading"
            ctl.maybe_transient = True
            ctl.prev_exec = ctl.believed
            if ctl.believed is not None:
                ctl.exec_history.append(ctl.believed)
            ctl._predict_next(self._now)
            ctl.hold_seconds = 0.0
            ctl.desired = ctl.planner.for_loading()
            self._log(
                ctl.session.session_id, "stage-end",
                f"predicted next {ctl.predicted!r} "
                f"(conf {ctl.predicted_conf:.0%})",
            )
            return
        # MISMATCH: rehearsal callback (first flavour) — jump to the
        # re-matched stage with the Eq-1 cushion.
        if ctl.adjuster.record_error():
            ctl._rotate_backend()
        if j.matched_type is not None:
            ctl.believed = j.matched_type
            ctl.desired = ctl.planner.for_execution(
                ctl.believed, redundancy=self.config.use_redundancy
            )
        else:
            ctl.desired = ctl.planner.peak_plan()
        ctl.redundant = self.config.use_redundancy
        self._log(
            ctl.session.session_id, "callback",
            f"re-matched to {ctl.believed!r}",
        )

    def _control_loading(
        self, ctl: SessionControl, j: Judgment, interval: int
    ) -> None:
        if j.kind is JudgmentKind.LOADING:
            # GPU-pin check: a genuine loading screen uses far less GPU
            # than the (headroomed) loading ceiling; usage pinned at the
            # GPU grant means the next stage has started but is clipped
            # into looking like loading.  Promote to execution on the
            # predicted stage — a following MISMATCH callback corrects a
            # wrong guess once the ceiling stops clipping.
            try:
                granted = self.allocator.allocation_of(
                    ctl.session.session_id
                ).array
            except KeyError:  # pragma: no cover - defensive
                granted = ctl.desired.array
            window = self._last_window
            if (
                window is not None
                and granted[1] > 1.0
                and window[1] >= 0.9 * granted[1]
            ):
                ctl.phase = "execution"
                ctl.hold_seconds = 0.0
                ctl.believed = ctl.predicted
                ctl.predicted = None
                ctl.redundant = False
                ctl.desired = (
                    ctl.planner.for_execution(ctl.believed, redundancy=False)
                    if ctl.believed is not None
                    else ctl.planner.peak_plan()
                )
                return
            ctl.maybe_transient = False  # two windows of loading = real
            plan_next = (
                ctl.planner.for_execution(ctl.predicted, redundancy=False)
                if ctl.predicted is not None
                else ctl.planner.peak_plan()
            )
            others = ResourceVector.zeros()
            for other_sid, other in self._sessions.items():
                if other is not ctl:
                    others = others + other.desired
            if self.regulator.should_hold_in_loading(
                plan_next, others, ctl.hold_seconds
            ):
                if ctl.hold_seconds == 0.0:
                    self.regulator.start_hold()
                ctl.hold_seconds += interval
                self.regulator.note_hold(interval)
                ctl.desired = ctl.planner.throttled_loading(
                    self.config.regulator.steal_fraction
                )
                self._log(
                    ctl.session.session_id, "hold",
                    f"loading extended ({ctl.hold_seconds:.0f}s so far); "
                    f"next stage {ctl.predicted!r} does not fit",
                )
            else:
                ctl.desired = ctl.planner.for_loading()
            return

        # An execution cluster appeared.
        if (
            ctl.maybe_transient
            and ctl.prev_exec is not None
            and ctl.prev_exec.contains(j.cluster)
        ):
            # Rehearsal callback (second flavour): the "loading" was a
            # transient dip — revert to the previous stage immediately.
            ctl.adjuster.record_transient()
            ctl.phase = "execution"
            ctl.believed = ctl.prev_exec
            if ctl.exec_history and ctl.exec_history[-1] == ctl.prev_exec:
                ctl.exec_history.pop()
            ctl.desired = ctl.planner.for_execution(
                ctl.believed, redundancy=self.config.use_redundancy
            )
            ctl.redundant = self.config.use_redundancy
            self._log(
                ctl.session.session_id, "transient-revert",
                f"back to {ctl.believed!r}",
            )
            return

        # Loading finished: the next stage has begun.
        ctl.phase = "execution"
        ctl.hold_seconds = 0.0
        if ctl.predicted is not None and ctl.predicted.contains(j.cluster):
            ctl.believed = ctl.predicted
            ctl.adjuster.record_success()
            callback = False
            self._log(
                ctl.session.session_id, "stage-start",
                f"{ctl.believed!r} as predicted",
            )
        else:
            # Misprediction: this grant is a rehearsal callback and gets
            # the Eq-1 cushion on top of the re-matched stage's peak.
            if ctl.adjuster.record_error():
                ctl._rotate_backend()
            ctl.believed = (
                j.matched_type if j.matched_type is not None else ctl.predicted
            )
            callback = self.config.use_redundancy
        ctl.redundant = callback
        ctl.predicted = None
        ctl.desired = (
            ctl.planner.for_execution(ctl.believed, redundancy=callback)
            if ctl.believed is not None
            else ctl.planner.peak_plan()
        )

    # ------------------------------------------------------------------
    # Granting under the cap
    # ------------------------------------------------------------------
    def _grant_all(self, time: float) -> None:
        """Retune every ceiling, scaling down on conflict.

        Loading sessions absorb shortage first (the paper's preference:
        steal from loading rather than from a peaked game), then the
        remainder is scaled proportionally.  Shrinking sessions are
        applied before growing ones so the cap is never violated
        transiently.
        """
        if not self._sessions:
            return
        placements = self.allocator.server.placements
        budget = self.allocator.capped_capacity(0).array

        desired: Dict[str, np.ndarray] = {
            sid: ctl.desired.array.copy() for sid, ctl in self._sessions.items()
        }
        total = np.sum(list(desired.values()), axis=0)
        over = total > budget + 1e-9
        if over.any():
            # Phase 1: throttle loading sessions on the violated dims.
            steal = self.config.regulator.steal_fraction
            for sid, ctl in self._sessions.items():
                if ctl.phase == "loading":
                    throttled = ctl.planner.throttled_loading(steal).array
                    desired[sid] = np.where(over, np.minimum(desired[sid], throttled), desired[sid])
            total = np.sum(list(desired.values()), axis=0)
            # Phase 2: proportional scale on still-violated dims.
            with np.errstate(divide="ignore", invalid="ignore"):
                factors = np.where(total > budget, budget / np.maximum(total, 1e-9), 1.0)
            for sid in desired:
                desired[sid] = desired[sid] * factors

        # Apply: shrinks first, then grows (cap-safe ordering).
        shrinks, grows = [], []
        for sid, vec in desired.items():
            old = placements[sid].allocation.array
            (shrinks if np.all(vec <= old + 1e-9) else grows).append(sid)
        for sid in shrinks + grows:
            self.allocator.retune_clamped(
                sid, ResourceVector.from_array(desired[sid]), time=time
            )
