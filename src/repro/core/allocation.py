"""Stage-wise allocation planning.

Turns a predicted stage type into the cgroup ceiling to grant: the
type's observed peak demand, plus the Eq-1 redundancy margin scaled by
the predictor's accuracy, plus the streaming encoder's CPU overhead.
Loading stages get their own (CPU-heavy) plan, with a throttled variant
the regulator uses for time stealing.
"""

from __future__ import annotations

from typing import Optional

from repro.core.adjustment import redundancy_allocation
from repro.core.stages import StageLibrary, StageTypeId
from repro.platform_.resources import ResourceVector
from repro.streaming.encoder import EncoderModel
from repro.util.validation import check_fraction

__all__ = ["AllocationPlanner"]


class AllocationPlanner:
    """Plans ceilings for one game.

    Parameters
    ----------
    library:
        The game's stage library.
    accuracy:
        Predictor accuracy ``P`` used in the Eq-1 margin.
    encoder:
        Optional streaming encoder whose CPU overhead is charged to the
        session (at the game's nominal streamed FPS).
    stream_fps:
        FPS assumed for the encoder overhead.
    headroom:
        Small multiplicative cushion on top of observed peaks (sensor
        noise guard).
    """

    def __init__(
        self,
        library: StageLibrary,
        *,
        accuracy: float = 0.9,
        encoder: Optional[EncoderModel] = None,
        stream_fps: float = 60.0,
        headroom: float = 0.03,
    ):
        check_fraction("accuracy", accuracy)
        check_fraction("headroom", headroom)
        self.library = library
        self.accuracy = float(accuracy)
        self.encoder = encoder
        self.stream_fps = float(stream_fps)
        self.headroom = float(headroom)

    def set_accuracy(self, accuracy: float) -> None:
        """Update ``P`` (after a model replacement or online estimate)."""
        check_fraction("accuracy", accuracy)
        self.accuracy = float(accuracy)

    # ------------------------------------------------------------------
    def _encoder_overhead(self) -> ResourceVector:
        if self.encoder is None:
            return ResourceVector.zeros()
        return ResourceVector(cpu=self.encoder.cpu_overhead(self.stream_fps))

    def for_execution(
        self, type_id: StageTypeId, *, redundancy: bool = True
    ) -> ResourceVector:
        """Ceiling for an execution stage of the given type."""
        plan = self.library.peak_of(type_id) * (1.0 + self.headroom)
        if redundancy:
            plan = plan + redundancy_allocation(self.accuracy, self.library.max_peak())
        return (plan + self._encoder_overhead()).clip(0.0, 100.0)

    def for_loading(self) -> ResourceVector:
        """Full-speed ceiling for a loading stage.

        The GPU component carries extra headroom (×1.3 + 2): a genuine
        loading screen renders almost nothing, so its GPU usage floats
        well below this ceiling — while a *started* execution stage pins
        it immediately.  That gap is the scheduler's loading-exit signal
        even when the new stage's demand is clipped.
        """
        plan = self.library.peak_of(self.library.loading_type) * (1.0 + self.headroom)
        arr = plan.array.copy()
        arr[1] = arr[1] * 1.3 + 2.0
        plan = ResourceVector.from_array(arr)
        return (plan + self._encoder_overhead()).clip(0.0, 100.0)

    def throttled_loading(self, fraction: float) -> ResourceVector:
        """Time-stealing ceiling: loading CPU cut to ``fraction``.

        Loading progress is CPU-rate-bound, so granting ``fraction`` of
        the loading CPU stretches the stage by ``1/fraction`` — the
        §IV-C2 "extend loading time" lever.
        """
        check_fraction("fraction", fraction)
        full = self.for_loading()
        return ResourceVector(
            cpu=full.cpu * max(fraction, 0.05),
            gpu=full.gpu,
            gpu_mem=full.gpu_mem,
            ram=full.ram,
        )

    def peak_plan(self) -> ResourceVector:
        """Whole-game peak ceiling (what static baselines reserve)."""
        plan = self.library.max_peak() * (1.0 + self.headroom)
        return (plan + self._encoder_overhead()).clip(0.0, 100.0)
