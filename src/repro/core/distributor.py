"""The game distributor — Algorithm 1 (paper §IV-C1).

Decides whether a pending game may join a server that is already running
games.  The test follows the paper's pseudocode:

1. group the running tasks by (stage, cluster) and sum their current
   consumption; if the sum plus the newcomer's entry consumption already
   fits, admit;
2. otherwise roll the predictors forward ``horizon`` iterations
   (``N = Total.iteration``), take the maximum predicted co-consumption
   ``M``, and admit only when ``M + Consumption_{S_i}`` stays within the
   capacity.

The newcomer's entry consumption is its boot-loading plan — games always
start by loading (cheap on the GPU), which is what makes fine-grained
admission so much more permissive than whole-game peak reservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple


from repro.obs.metrics import CounterChild
from repro.obs.naming import ALGO1_BATCHES, ALGO1_EVALUATIONS
from repro.obs.observer import Observer
from repro.platform_.resources import ResourceVector
from repro.util.effects import effects

__all__ = [
    "RunningTaskView",
    "AdmissionDecision",
    "BatchEvaluation",
    "Distributor",
]


class RunningTaskView(Protocol):
    """What the distributor needs to know about one running session."""

    @property
    def current_allocation(self) -> ResourceVector:
        """The task's current ceiling."""
        ...

    def predicted_peaks(self, horizon: int) -> List[ResourceVector]:
        """Predicted per-step allocation peaks for the next stages."""
        ...


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of Algorithm 1.

    Attributes
    ----------
    admitted:
        The Algorithm-1 ``P``.
    reason:
        Human-readable explanation.
    predicted_peak:
        The co-consumption ``M`` + newcomer that was tested (if any).
    """

    admitted: bool
    reason: str
    predicted_peak: Optional[ResourceVector] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.admitted


class BatchEvaluation:
    """One shared Algorithm-1 pass over a *fixed* running set.

    The expensive inputs of Algorithm 1 — the running tasks' summed
    current consumption and their rolled-forward worst co-consumption
    ``M`` — depend only on the running set, not on the newcomer.  A
    batch evaluation computes each of them at most once (``M`` lazily:
    only when some candidate survives the current-fit check) and then
    answers any number of candidate ``(entry, steady)`` pairs, instead
    of re-rolling every task's predictor per request × node.

    The snapshot is only valid while the running set is unchanged:
    after an admission or release, begin a new batch via
    :meth:`Distributor.begin_batch`.  Decisions are byte-identical to
    per-candidate :meth:`Distributor.can_admit` calls — the sequential
    path delegates here with a single-use batch.
    """

    def __init__(self, distributor: "Distributor", running: Sequence[RunningTaskView]):
        self._distributor = distributor
        self._running: List[RunningTaskView] = list(running)
        self._current: Optional[ResourceVector] = None
        self._worst: Optional[ResourceVector] = None
        #: Candidates evaluated through this batch (diagnostics).
        self.evaluations = 0

    # ------------------------------------------------------------------
    @effects(hot_path=True)
    def _current_sum(self) -> ResourceVector:
        """Lines 3-9: the running tasks' summed current consumption.

        Loading tasks count at their compressible (time-stealable)
        footprint when the view provides one.
        """
        if self._current is None:
            current = ResourceVector.zeros()
            for task in self._running:
                min_alloc = getattr(task, "min_allocation", None)
                current = current + (
                    min_alloc() if callable(min_alloc) else task.current_allocation
                )
            self._current = current
        return self._current

    @effects(hot_path=True)
    def _worst_coconsumption(self) -> ResourceVector:
        """Lines 10-25: the max predicted co-consumption ``M``.

        Computed once per batch; each task's rollout is a single
        ``predicted_peaks(horizon)`` call shared by every candidate.
        """
        if self._worst is None:
            horizon = self._distributor.horizon
            per_task_peaks: List[List[ResourceVector]] = [
                task.predicted_peaks(horizon) for task in self._running
            ]
            worst = ResourceVector.zeros()
            for step in range(horizon):
                step_total = ResourceVector.zeros()
                for peaks in per_task_peaks:
                    if peaks:
                        step_total = step_total + peaks[min(step, len(peaks) - 1)]
                worst = worst.maximum(step_total)
            self._worst = worst
        return self._worst

    # ------------------------------------------------------------------
    @effects(hot_path=True)
    def evaluate(
        self,
        entry_consumption: ResourceVector,
        steady_peak: ResourceVector,
    ) -> AdmissionDecision:
        """Algorithm 1 for one candidate against the shared snapshot."""
        self.evaluations += 1
        decision = self._decide(entry_consumption, steady_peak)
        self._distributor.count_evaluation(decision.admitted)
        return decision

    @effects(hot_path=True)
    def _decide(
        self,
        entry_consumption: ResourceVector,
        steady_peak: ResourceVector,
    ) -> AdmissionDecision:
        d = self._distributor
        budget = d.capacity * (1.0 + d.overshoot_tolerance)

        current = self._current_sum()
        if not (current + entry_consumption).fits_within(d.capacity):
            return AdmissionDecision(
                False,
                "current co-consumption leaves no room even to boot",
                predicted_peak=current + entry_consumption,
            )

        if not self._running:
            ok = steady_peak.fits_within(budget)
            return AdmissionDecision(
                ok,
                "empty server" if ok else "game exceeds server capacity alone",
                predicted_peak=steady_peak,
            )

        predicted = self._worst_coconsumption() + steady_peak
        if predicted.fits_within(budget):
            return AdmissionDecision(
                True, "predicted co-consumption fits", predicted_peak=predicted
            )
        return AdmissionDecision(
            False,
            "predicted stage peaks collide beyond tolerance",
            predicted_peak=predicted,
        )


class Distributor:
    """Algorithm-1 admission control.

    Parameters
    ----------
    capacity:
        The scheduler's budget vector (capacity × utilisation cap).
    horizon:
        Prediction iterations ``N`` rolled forward per running task.
    overshoot_tolerance:
        Fractional overshoot of the *predicted* peak that is still
        admitted (§IV-D: players tolerate brief degradation; static
        policies use 0).
    """

    def __init__(
        self,
        capacity: ResourceVector,
        *,
        horizon: int = 3,
        overshoot_tolerance: float = 0.0,
    ):
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if overshoot_tolerance < 0:
            raise ValueError(
                f"overshoot_tolerance must be >= 0, got {overshoot_tolerance}"
            )
        self.capacity = capacity
        self.horizon = int(horizon)
        self.overshoot_tolerance = float(overshoot_tolerance)
        self._c_batches: Optional[CounterChild] = None
        self._c_eval_true: Optional[CounterChild] = None
        self._c_eval_false: Optional[CounterChild] = None

    # ------------------------------------------------------------------
    def attach_observer(self, obs: Observer) -> None:
        """Count Algorithm-1 work in the shared registry.

        Registers ``cocg_algo1_batches_total`` (shared snapshots opened)
        and ``cocg_algo1_evaluations_total{admitted}`` (candidate
        decisions).  Samples are stamped with the registry's clock —
        whoever drives the run keeps it current via ``obs.tick``.
        """
        self._c_batches = obs.counter(
            ALGO1_BATCHES,
            "Shared Algorithm-1 snapshots opened (begin_batch).",
        ).labels()
        evaluations = obs.counter(
            ALGO1_EVALUATIONS,
            "Algorithm-1 candidate evaluations by verdict.",
            ("admitted",),
        )
        self._c_eval_true = evaluations.labels(admitted="true")
        self._c_eval_false = evaluations.labels(admitted="false")

    @effects(hot_path=True)
    def count_evaluation(self, admitted: bool) -> None:
        """Count one candidate verdict (no-op when unobserved)."""
        child = self._c_eval_true if admitted else self._c_eval_false
        if child is not None:
            child.inc()

    # ------------------------------------------------------------------
    @effects(hot_path=True)
    def can_admit(
        self,
        entry_consumption: ResourceVector,
        steady_peak: ResourceVector,
        running: Sequence[RunningTaskView],
    ) -> AdmissionDecision:
        """Algorithm 1.

        Parameters
        ----------
        entry_consumption:
            The newcomer's consumption when it starts (boot loading).
        steady_peak:
            The newcomer's typical execution-stage peak — used against
            the *predicted* co-consumption so a game is only admitted
            where it can actually play, not merely boot.
        running:
            Views of the tasks already on the server.
        """
        # A single-candidate batch: decisions are identical to the batch
        # path *by construction*, not by parallel maintenance.
        return self.begin_batch(running).evaluate(entry_consumption, steady_peak)

    # ------------------------------------------------------------------
    @effects(hot_path=True)
    def begin_batch(self, running: Sequence[RunningTaskView]) -> BatchEvaluation:
        """Open a shared evaluation pass over a fixed running set.

        The returned :class:`BatchEvaluation` answers many candidates
        with at most one ``predicted_peaks`` rollout per running task.
        Discard it as soon as the running set changes.
        """
        if self._c_batches is not None:
            self._c_batches.inc()
        return BatchEvaluation(self, running)

    @effects(hot_path=True)
    def can_admit_batch(
        self,
        candidates: Sequence[Tuple[ResourceVector, ResourceVector]],
        running: Sequence[RunningTaskView],
    ) -> List[AdmissionDecision]:
        """Evaluate many ``(entry_consumption, steady_peak)`` candidates.

        Convenience wrapper over :meth:`begin_batch`; all candidates see
        the same running-set snapshot, so this is only valid when no
        candidate is actually admitted between evaluations.
        """
        batch = self.begin_batch(running)
        return [batch.evaluate(entry, steady) for entry, steady in candidates]
