"""The game distributor — Algorithm 1 (paper §IV-C1).

Decides whether a pending game may join a server that is already running
games.  The test follows the paper's pseudocode:

1. group the running tasks by (stage, cluster) and sum their current
   consumption; if the sum plus the newcomer's entry consumption already
   fits, admit;
2. otherwise roll the predictors forward ``horizon`` iterations
   (``N = Total.iteration``), take the maximum predicted co-consumption
   ``M``, and admit only when ``M + Consumption_{S_i}`` stays within the
   capacity.

The newcomer's entry consumption is its boot-loading plan — games always
start by loading (cheap on the GPU), which is what makes fine-grained
admission so much more permissive than whole-game peak reservation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence


from repro.platform_.resources import ResourceVector

__all__ = ["RunningTaskView", "AdmissionDecision", "Distributor"]


class RunningTaskView(Protocol):
    """What the distributor needs to know about one running session."""

    @property
    def current_allocation(self) -> ResourceVector:
        """The task's current ceiling."""
        ...

    def predicted_peaks(self, horizon: int) -> List[ResourceVector]:
        """Predicted per-step allocation peaks for the next stages."""
        ...


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of Algorithm 1.

    Attributes
    ----------
    admitted:
        The Algorithm-1 ``P``.
    reason:
        Human-readable explanation.
    predicted_peak:
        The co-consumption ``M`` + newcomer that was tested (if any).
    """

    admitted: bool
    reason: str
    predicted_peak: Optional[ResourceVector] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.admitted


class Distributor:
    """Algorithm-1 admission control.

    Parameters
    ----------
    capacity:
        The scheduler's budget vector (capacity × utilisation cap).
    horizon:
        Prediction iterations ``N`` rolled forward per running task.
    overshoot_tolerance:
        Fractional overshoot of the *predicted* peak that is still
        admitted (§IV-D: players tolerate brief degradation; static
        policies use 0).
    """

    def __init__(
        self,
        capacity: ResourceVector,
        *,
        horizon: int = 3,
        overshoot_tolerance: float = 0.0,
    ):
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if overshoot_tolerance < 0:
            raise ValueError(
                f"overshoot_tolerance must be >= 0, got {overshoot_tolerance}"
            )
        self.capacity = capacity
        self.horizon = int(horizon)
        self.overshoot_tolerance = float(overshoot_tolerance)

    # ------------------------------------------------------------------
    def can_admit(
        self,
        entry_consumption: ResourceVector,
        steady_peak: ResourceVector,
        running: Sequence[RunningTaskView],
    ) -> AdmissionDecision:
        """Algorithm 1.

        Parameters
        ----------
        entry_consumption:
            The newcomer's consumption when it starts (boot loading).
        steady_peak:
            The newcomer's typical execution-stage peak — used against
            the *predicted* co-consumption so a game is only admitted
            where it can actually play, not merely boot.
        running:
            Views of the tasks already on the server.
        """
        budget = self.capacity * (1.0 + self.overshoot_tolerance)

        # Lines 3–9: sum the running tasks' current consumption.  Loading
        # tasks are counted at their compressible (time-stealable)
        # footprint when the view provides one.
        current = ResourceVector.zeros()
        for task in running:
            min_alloc = getattr(task, "min_allocation", None)
            current = current + (min_alloc() if callable(min_alloc) else task.current_allocation)
        if not (current + entry_consumption).fits_within(self.capacity):
            return AdmissionDecision(
                False,
                "current co-consumption leaves no room even to boot",
                predicted_peak=current + entry_consumption,
            )

        if not running:
            ok = steady_peak.fits_within(budget)
            return AdmissionDecision(
                ok,
                "empty server" if ok else "game exceeds server capacity alone",
                predicted_peak=steady_peak,
            )

        # Lines 10–25: roll predictions forward and test the max.
        per_task_peaks: List[List[ResourceVector]] = [
            task.predicted_peaks(self.horizon) for task in running
        ]
        worst = ResourceVector.zeros()
        for step in range(self.horizon):
            step_total = ResourceVector.zeros()
            for peaks in per_task_peaks:
                if peaks:
                    step_total = step_total + peaks[min(step, len(peaks) - 1)]
            worst = worst.maximum(step_total)

        predicted = worst + steady_peak
        if predicted.fits_within(budget):
            return AdmissionDecision(
                True, "predicted co-consumption fits", predicted_peak=predicted
            )
        return AdmissionDecision(
            False,
            "predicted stage peaks collide beyond tolerance",
            predicted_peak=predicted,
        )
