"""The ML-based stage predictor (paper §IV-B).

Online, the predictor runs every 5 seconds and does two things:

1. **Stage judgment** — classify the latest frame against the current
   stage type: SAME (still in stage), LOADING (entered a loading
   screen), or MISMATCH (neither — the rehearsal-callback situation).
2. **Next-stage prediction** — on entering loading, feed the stage
   history to the trained model and return the predicted next execution
   stage type (with its confidence), which the allocation planner turns
   into the next ceiling.

Backends are the paper's three algorithms (DTC / RF / GBDT) on top of
the category-specific datasets of :mod:`repro.core.dataset`.  Accuracy
on the held-out 25 % (the paper's protocol) is retained as the Eq-1
``P``.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.dataset import StageDataset, StageDatasetBuilder
from repro.core.stages import StageLibrary, StageTypeId
from repro.games.category import GameCategory
from repro.mlkit.forest import RandomForestClassifier
from repro.mlkit.gbdt import GradientBoostedClassifier
from repro.mlkit.model_selection import train_test_split
from repro.mlkit.tree import DecisionTreeClassifier
from repro.util.effects import effects
from repro.util.rng import Seed, derive_seed

__all__ = [
    "BACKENDS",
    "JudgmentKind",
    "Judgment",
    "PredictorBackendError",
    "StagePredictor",
    "PredictionCostModel",
    "make_backend",
]


class PredictorBackendError(RuntimeError):
    """A model backend failed to produce a prediction.

    Raised by :meth:`StagePredictor.predict_next` when the backend is
    broken (e.g. a fault-injected failure); callers on the control path
    catch it and walk the fallback chain (next trained backend, then the
    stage-history prior) under the
    :class:`~repro.core.health.PredictorHealth` circuit breaker.
    """

BACKENDS: Tuple[str, ...] = ("dtc", "rf", "gbdt")

BackendModel = Union[
    DecisionTreeClassifier, RandomForestClassifier, GradientBoostedClassifier
]


def make_backend(name: str, seed: Seed = None) -> BackendModel:
    """Instantiate one of the paper's three model backends."""
    if name == "dtc":
        return DecisionTreeClassifier(max_depth=10, min_samples_leaf=2, seed=seed)
    if name == "rf":
        return RandomForestClassifier(
            40, max_depth=10, min_samples_leaf=2, seed=seed
        )
    if name == "gbdt":
        return GradientBoostedClassifier(
            80, learning_rate=0.12, max_depth=2, min_samples_leaf=2, seed=seed
        )
    raise ValueError(f"backend must be one of {BACKENDS}, got {name!r}")


class JudgmentKind(Enum):
    """Outcome of the 5-second stage judgment."""

    SAME = "same"
    LOADING = "loading"
    MISMATCH = "mismatch"


@dataclass(frozen=True)
class Judgment:
    """Stage judgment of one frame.

    ``matched_type`` is filled for MISMATCH: the known execution type the
    frame re-matches to (the rehearsal callback's jump target), or
    ``None`` when the frame matches no known type.
    """

    kind: JudgmentKind
    cluster: int
    matched_type: Optional[StageTypeId] = None


class StagePredictor:
    """Per-game next-stage predictor.

    Parameters
    ----------
    library:
        Profiled stage library.
    category:
        The game's Fig-7 quadrant (selects the dataset policy).
    backend:
        ``"dtc"`` (default), ``"rf"`` or ``"gbdt"``.
    history:
        Stage-history length in the features.
    seed:
        Training randomness.

    Attributes (after :meth:`train`)
    --------------------------------
    accuracy_:
        Held-out next-stage accuracy (Eq-1's ``P``).
    """

    def __init__(
        self,
        library: StageLibrary,
        category: GameCategory,
        *,
        backend: str = "dtc",
        history: int = 3,
        seed: Seed = 0,
    ):
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.library = library
        self.category = category
        self.backend = backend
        self.builder = StageDatasetBuilder(library, history=history)
        self._seed = seed if isinstance(seed, int) or seed is None else 0
        self._models: Dict[str, object] = {}
        self._fallback: Optional[object] = None
        self.accuracy_: Optional[float] = None
        #: Fault-injection switch: while True, :meth:`predict_next`
        #: raises :class:`PredictorBackendError` (see repro.faults).
        self.failure_injected: bool = False
        #: Completed :meth:`rollout` calls — the unit the serve-layer
        #: rollout cache saves; benchmarks compare it across paths.
        self.rollout_count: int = 0

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(
        self,
        corpus_segments: Sequence[Tuple[str, Sequence]],
        *,
        test_size: float = 0.25,
    ) -> float:
        """Train on profiled sessions and return held-out accuracy.

        ``corpus_segments`` is ``(player_id, segments)`` per session —
        the output of running the profiler's segmentation over the
        training corpus.
        """
        datasets = self.builder.build(corpus_segments, self.category)
        accuracies: List[Tuple[float, int]] = []
        self._models = {}
        for key, ds in sorted(datasets.items()):
            model_seed = derive_seed(self._seed, self.library.game, key, self.backend)
            model = make_backend(self.backend, seed=model_seed)
            acc, fitted = self._fit_scored(model, ds, test_size, model_seed)
            self._models[key] = fitted
            accuracies.append((acc, ds.n_samples))
        # MOBILE also trains a pooled fallback for never-seen players.
        if self.category is GameCategory.MOBILE:
            pooled = self.builder.build(corpus_segments, GameCategory.WEB)["*"]
            fb_seed = derive_seed(self._seed, self.library.game, "*fallback*", self.backend)
            fb = make_backend(self.backend, seed=fb_seed)
            _, self._fallback = self._fit_scored(fb, pooled, test_size, fb_seed)
        total = sum(n for _, n in accuracies)
        self.accuracy_ = float(sum(a * n for a, n in accuracies) / total)
        return self.accuracy_

    @staticmethod
    def _fit_scored(
        model, ds: StageDataset, test_size: float, seed: int, *, repeats: int = 5
    ):
        """Fit with repeated held-out splits when the dataset allows one.

        The paper's protocol is a random 75/25 split; with the small
        per-game datasets a single split is noisy, so the reported
        accuracy averages ``repeats`` independent splits, then the model
        is refit on everything for deployment.
        """
        classes = np.unique(ds.y)
        if ds.n_samples >= 8 and len(classes) >= 2:
            scores = []
            for r in range(repeats):
                Xtr, Xte, ytr, yte = train_test_split(
                    ds.X, ds.y, test_size=test_size, seed=seed + r, stratify=True
                )
                model.fit(Xtr, ytr)
                scores.append(model.score(Xte, yte))
            model.fit(ds.X, ds.y)
            return float(np.mean(scores)), model
        model.fit(ds.X, ds.y)
        return float(model.score(ds.X, ds.y)), model

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has completed."""
        return bool(self._models)

    def inject_failure(self, failing: bool = True) -> None:
        """Toggle the fault-injection failure mode of this backend.

        While failing, :meth:`predict_next` raises
        :class:`PredictorBackendError`; :meth:`judge` and
        :meth:`prior_prediction` stay available (they do not touch the
        trained models), which is exactly what the degradation path
        relies on.
        """
        self.failure_injected = bool(failing)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _model_for(self, player_id: Optional[str]):
        if self.category is GameCategory.MOBILE:
            if player_id is not None and player_id in self._models:
                return self._models[player_id]
            if self._fallback is not None:
                return self._fallback
            # Deterministic fallback: the first per-player model.
            return next(iter(self._models.values()))
        return self._models["*"]

    @effects(hot_path=True)
    def predict_next(
        self,
        exec_history: Sequence[StageTypeId],
        *,
        player_id: Optional[str] = None,
        group_hist: Optional[np.ndarray] = None,
    ) -> Tuple[StageTypeId, float]:
        """Predict the next execution stage type from the history so far.

        Returns ``(type, confidence)``.  Unknown history types are
        skipped; an empty usable history falls back to the library's
        most common first stage (confidence = its empirical share).
        """
        if not self.is_trained:
            raise RuntimeError("predictor is not trained; call train() first")
        if self.failure_injected:
            raise PredictorBackendError(
                f"backend {self.backend!r} failure injected"
            )
        seq = [
            idx
            for t in exec_history
            if (idx := self.builder.type_index(t)) is not None
        ]
        if self.category is GameCategory.MMO:
            if group_hist is None:
                group_hist = np.zeros(self.builder.n_types)
        else:
            group_hist = None
        if not seq:
            return self.prior_prediction()
        feats = self.builder.encode_history(seq, len(seq), group_hist=group_hist)
        model = self._model_for(player_id)
        proba = model.predict_proba(feats[None, :])[0]
        best = int(np.argmax(proba))
        label = int(model.classes_[best])
        return self.builder.types[label], float(proba[best])

    @effects(hot_path=True)
    def rollout(
        self,
        exec_history: Sequence[StageTypeId],
        steps: int,
        *,
        start: Optional[StageTypeId],
        player_id: Optional[str] = None,
    ) -> List[StageTypeId]:
        """Roll the stage chain forward ``steps`` iterations.

        This is the distributor's Algorithm-1 horizon walk: starting
        from ``start`` (the believed or predicted current stage), feed
        the growing history back into :meth:`predict_next` and collect
        the visited stage types.  A broken backend degrades each step to
        :meth:`prior_prediction` — deliberately without touching any
        circuit breaker, because admission rollouts may run once per
        queued request per round and must not flap session health.

        Returns an empty chain when ``start`` is ``None`` (no stage
        belief yet); otherwise exactly ``steps`` types.  Each completed
        call increments :attr:`rollout_count`.
        """
        if start is None:
            return []
        self.rollout_count += 1
        chain: List[StageTypeId] = []
        hist = list(exec_history)
        current = start
        for _ in range(steps):
            chain.append(current)
            hist.append(current)
            try:
                current, _conf = self.predict_next(hist, player_id=player_id)
            except PredictorBackendError:
                current, _conf = self.prior_prediction()
        return chain

    @effects(hot_path=True)
    def prior_prediction(self) -> Tuple[StageTypeId, float]:
        """Model-free prediction from the stage-history prior.

        Returns the library's most frequently observed execution type
        with its empirical share as confidence.  This is the last link
        of the degradation chain: it needs no trained backend, so it
        keeps serving while every model is broken or the circuit breaker
        is open.
        """
        stats = [
            (self.library.stats(t).occurrences, t)
            for t in self.builder.types
        ]
        total = sum(n for n, _ in stats)
        n, t = max(stats)
        return t, (n / total if total else 1.0)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def feature_names(self) -> List[str]:
        """Human-readable names of the feature vector's positions."""
        names: List[str] = []
        for h in range(self.builder.history):
            for t in self.builder.types:
                names.append(f"hist[-{h + 1}]={t!r}")
        for t in self.builder.types:
            names.append(f"count({t!r})")
        names.append("position")
        if self.category is GameCategory.MMO:
            for t in self.builder.types:
                names.append(f"group({t!r})")
        return names

    def feature_report(self, *, top: int = 8) -> List[Tuple[str, float]]:
        """Top feature importances, averaged over the trained models.

        Shows *what the predictor looks at*: the most recent stage, the
        type counts (progress through the script), or — for MMO games —
        the co-login group's context.
        """
        if not self.is_trained:
            raise RuntimeError("predictor is not trained; call train() first")
        names = self.feature_names()
        importances = []
        for model in self._models.values():
            fi = getattr(model, "feature_importances_", None)
            if fi is not None and len(fi) == len(names):
                importances.append(fi)
        if not importances:
            return []
        mean_fi = np.mean(importances, axis=0)
        order = np.argsort(mean_fi)[::-1][:top]
        return [(names[i], float(mean_fi[i])) for i in order if mean_fi[i] > 0]

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-serializable form of a *trained* predictor.

        The stage library is serialized separately (it is shared by all
        backends); pass it back to :meth:`from_dict`.
        """
        if not self.is_trained:
            raise RuntimeError("cannot serialize an untrained predictor")
        from repro.mlkit.serialize import model_to_dict

        return {
            "category": self.category.value,
            "backend": self.backend,
            "history": self.builder.history,
            "group_size": self.builder.group_size,
            "accuracy": self.accuracy_,
            "models": {key: model_to_dict(m) for key, m in self._models.items()},
            "fallback": (
                model_to_dict(self._fallback) if self._fallback is not None else None
            ),
        }

    @staticmethod
    def from_dict(data: Dict, library: StageLibrary) -> "StagePredictor":
        """Rebuild a trained predictor against a (deserialized) library."""
        from repro.mlkit.serialize import model_from_dict

        predictor = StagePredictor(
            library,
            GameCategory(data["category"]),
            backend=data["backend"],
            history=int(data["history"]),
        )
        predictor.builder.group_size = int(data["group_size"])
        predictor._models = {
            key: model_from_dict(m) for key, m in data["models"].items()
        }
        predictor._fallback = (
            model_from_dict(data["fallback"]) if data["fallback"] else None
        )
        predictor.accuracy_ = data["accuracy"]
        return predictor

    # ------------------------------------------------------------------
    # Stage judgment (the 5-second detector)
    # ------------------------------------------------------------------
    def judge(
        self, frame: np.ndarray, current_type: Optional[StageTypeId]
    ) -> Judgment:
        """Classify the latest frame against the believed current stage."""
        cluster = self.library.classify_frame(frame)
        if cluster in self.library.loading_clusters:
            return Judgment(JudgmentKind.LOADING, cluster)
        if current_type is not None and cluster in current_type:
            return Judgment(JudgmentKind.SAME, cluster)
        # Rehearsal-callback target: the most-observed known execution
        # type containing this cluster.
        candidates = [
            t
            for t in self.library.execution_types
            if t.contains(cluster)
        ]
        if candidates:
            matched = max(
                candidates, key=lambda t: self.library.stats(t).occurrences
            )
        else:
            matched = None
        return Judgment(JudgmentKind.MISMATCH, cluster, matched)


@dataclass(frozen=True)
class PredictionCostModel:
    """Wall-clock cost of one prediction cycle (paper Fig 12).

    The paper measures 3–13 s per prediction — dominated not by model
    inference (microseconds) but by collecting a stable telemetry
    window, assembling the whole-game stage history, and applying the
    resource adjustment.  The cost model scales with the game's stage-
    type count and the backend's complexity, reproducing that range.

    Parameters
    ----------
    base_seconds:
        Fixed data-collection cost.
    per_type_seconds:
        History-assembly cost per stage type.
    backend_factors:
        Relative inference/adjustment complexity per backend.
    """

    base_seconds: float = 2.0
    per_type_seconds: float = 0.9
    backend_factors: Tuple[Tuple[str, float], ...] = (
        ("dtc", 1.0),
        ("rf", 1.35),
        ("gbdt", 1.7),
    )

    def predict_seconds(self, n_stage_types: int, backend: str = "dtc") -> float:
        """Predicted latency of one prediction cycle."""
        if n_stage_types < 1:
            raise ValueError(f"n_stage_types must be >= 1, got {n_stage_types}")
        factors = dict(self.backend_factors)
        if backend not in factors:
            raise ValueError(f"unknown backend {backend!r}")
        return (
            self.base_seconds + self.per_type_seconds * n_stage_types
        ) * factors[backend]
