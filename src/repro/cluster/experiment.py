"""Fleet-scale experiment driver: Poisson arrivals over a cluster.

Open-loop requests arrive at the cluster scheduler; rejected requests
wait in a queue and are retried every detection interval ("the selected
game will continuously run requests until the distributor passes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.cluster.fleet import ClusterScheduler
from repro.games.spec import GameSpec
from repro.util.rng import Seed, derive_seed
from repro.workloads.metrics import throughput_eq2
from repro.workloads.requests import GameRequest, PoissonArrivals

__all__ = ["FleetResult", "FleetExperiment"]


@dataclass
class FleetResult:
    """Fleet-wide outcome of one run.

    Attributes
    ----------
    completed_runs:
        ``N_i`` per game, summed over nodes.
    throughput:
        Eq-2 over the fleet.
    per_node_completed:
        Completed runs per node.
    per_node_mean_gpu:
        Time-averaged GPU utilisation per node.
    fraction_of_best:
        Fleet-wide FPS / best-FPS, time-weighted.
    waiting:
        Requests still queued at the horizon.
    deferrals:
        Dispatch attempts that found no willing node.
    mean_wait_seconds:
        Mean time a *served* request waited between arrival and start.
    """

    completed_runs: Dict[str, int]
    throughput: float
    per_node_completed: Dict[str, Dict[str, int]]
    per_node_mean_gpu: Dict[str, float]
    fraction_of_best: float
    waiting: int
    deferrals: int
    mean_wait_seconds: float


class FleetExperiment:
    """Poisson arrivals over a :class:`ClusterScheduler`.

    Parameters
    ----------
    cluster:
        The fleet (already built, strategies attached).
    specs:
        Game mix for the arrival process.
    horizon:
        Simulated seconds.
    rate_per_minute:
        Expected arrivals per minute.
    seed:
        Arrival/session randomness.
    detect_interval:
        Control/retry period.
    """

    def __init__(
        self,
        cluster: ClusterScheduler,
        specs: Sequence[GameSpec],
        *,
        horizon: int = 3600,
        rate_per_minute: float = 1.0,
        seed: Seed = 0,
        detect_interval: int = 5,
    ):
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if detect_interval < 1:
            raise ValueError(f"detect_interval must be >= 1, got {detect_interval}")
        self.cluster = cluster
        self.specs = list(specs)
        self.horizon = int(horizon)
        self.detect_interval = int(detect_interval)
        self._base_seed = seed if isinstance(seed, int) or seed is None else 0
        self.arrivals = PoissonArrivals(
            self.specs,
            rate_per_minute=rate_per_minute,
            seed=derive_seed(self._base_seed, "arrivals"),
            horizon=float(horizon),
        )

    # ------------------------------------------------------------------
    def run(self) -> FleetResult:
        """Execute the run and aggregate fleet-wide results."""
        waiting: List[GameRequest] = []
        started_waits: List[float] = []
        session_seed = 0

        for t in range(self.horizon):
            waiting.extend(self.arrivals.due(float(t), float(t + 1)))
            if t % self.detect_interval == 0:
                still: List[GameRequest] = []
                for request in waiting:
                    session_seed += 1
                    node = self.cluster.dispatch(
                        request,
                        time=float(t),
                        seed=derive_seed(self._base_seed, "s", str(session_seed)),
                    )
                    if node is None:
                        still.append(request)
                    else:
                        started_waits.append(t - request.arrival)
                waiting = still
            self.cluster.tick(t)
            if (t + 1) % self.detect_interval == 0:
                self.cluster.control(float(t + 1))

        return self._aggregate(waiting, started_waits)

    # ------------------------------------------------------------------
    def _aggregate(
        self, waiting: List[GameRequest], started_waits: List[float]
    ) -> FleetResult:
        completed = self.cluster.completed_runs()
        durations = {spec.name: spec.expected_duration() for spec in self.specs}
        per_node_completed = {
            node.node_id: dict(node.completed) for node in self.cluster.nodes
        }
        per_node_mean_gpu = {}
        fob_num = 0.0
        fob_den = 0
        for node in self.cluster.nodes:
            total = node.telemetry.total_usage_matrix(self.horizon)
            per_node_mean_gpu[node.node_id] = float(total[:, 1].mean())
            for sid in node.qos.session_ids:
                report = node.qos.report(sid)
                fob_num += report.fraction_of_best * report.seconds
                fob_den += report.seconds
        return FleetResult(
            completed_runs=completed,
            throughput=throughput_eq2(
                completed, {g: durations[g] for g in completed}
            ),
            per_node_completed=per_node_completed,
            per_node_mean_gpu=per_node_mean_gpu,
            fraction_of_best=fob_num / fob_den if fob_den else float("nan"),
            waiting=len(waiting),
            deferrals=self.cluster.deferred,
            mean_wait_seconds=(
                float(np.mean(started_waits)) if started_waits else 0.0
            ),
        )
