"""Fleet-scale experiment driver: Poisson arrivals over a cluster.

Open-loop requests arrive at the cluster scheduler; rejected requests
wait in its bounded retry queue with exponential backoff ("the selected
game will continuously run requests until the distributor passes") until
they start or dead-letter.

The run is driven by a :class:`~repro.sim.engine.SimulationEngine`, so a
:class:`~repro.faults.plan.FaultPlan` can be replayed into it: fault
events fire first at their scheduled second, then control, then
dispatch, then the per-second tick — the same observable ordering as the
original plain loop.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.fleet import ClusterScheduler, DeadLetter
from repro.cluster.provisioner import Provisioner
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.games.spec import GameSpec
from repro.obs.observer import Observer
from repro.sim.engine import SimulationEngine
from repro.util.effects import shard_entry, shard_merge_point
from repro.util.rng import Seed, derive_seed
from repro.workloads.metrics import throughput_eq2
from repro.workloads.requests import GameRequest, PoissonArrivals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.recorder import TraceRecorder

__all__ = ["FleetResult", "FleetExperiment", "default_arrivals"]

# Same-second event ordering (lower = earlier): faults are visible to
# everything else at that second; control precedes dispatch precedes the
# tick, matching the original sequential loop.
_PRIO_SUBMIT = -30
_PRIO_CONTROL = -20
_PRIO_PUMP = -10
_PRIO_TICK = 10


def default_arrivals(
    specs: Sequence[GameSpec],
    *,
    rate_per_minute: float = 1.0,
    seed: Seed = 0,
    horizon: float = 3600.0,
    id_base: int = 0,
) -> PoissonArrivals:
    """The experiment's default open-loop arrival stream.

    This is the one place the ``"arrivals"`` seed namespace is minted,
    so both a plain :class:`FleetExperiment` and a
    :class:`repro.fleet.FleetOfFleets` region generating its own load
    draw from streams derived the same way (and the CG021 namespace
    stays single-owner).  ``id_base`` offsets request ids — regional
    generators pass disjoint bases so merged streams never collide.
    """
    return PoissonArrivals(
        specs,
        rate_per_minute=rate_per_minute,
        seed=derive_seed(seed, "arrivals"),
        horizon=float(horizon),
        id_base=id_base,
    )


@dataclass
class FleetResult:
    """Fleet-wide outcome of one run.

    Attributes
    ----------
    completed_runs:
        ``N_i`` per game, summed over nodes.
    throughput:
        Eq-2 over the fleet.
    per_node_completed:
        Completed runs per node.
    per_node_mean_gpu:
        Time-averaged GPU utilisation per node.
    fraction_of_best:
        Fleet-wide FPS / best-FPS, time-weighted.
    waiting:
        Requests still queued at the horizon.
    deferrals:
        Dispatch attempts that found no willing node.
    mean_wait_seconds:
        Mean time a *served* request waited between arrival and start.
    violation_fraction:
        Fleet-wide fraction of session-seconds below the QoS floor.
    degraded_seconds:
        Session-seconds spent under degraded (open-breaker) control.
    dead_letters:
        Requests the cluster gave up on.
    requeues / evictions:
        Crash-displaced requests requeued / sessions killed by faults.
    fault_events:
        Human-readable log of faults applied during the run.
    telemetry_digest:
        SHA-256 over every node's telemetry (plus the gateway's events
        and the provisioner's lifecycle log when attached) —
        byte-identical across replays of the same seeds and fault plan.
    session_accounting:
        The accountability ledger
        (:meth:`~repro.cluster.fleet.ClusterScheduler.session_accounting`).
    unaccounted_sessions:
        Ledger imbalance — the robustness contract requires 0 under any
        fault plan (every dispatched session ends completed, running,
        requeued, or accountably dead-lettered/abandoned).
    provisioner_stats:
        Lifecycle counters of the attached provisioner (empty without
        one).
    """

    completed_runs: Dict[str, int]
    throughput: float
    per_node_completed: Dict[str, Dict[str, int]]
    per_node_mean_gpu: Dict[str, float]
    fraction_of_best: float
    waiting: int
    deferrals: int
    mean_wait_seconds: float
    violation_fraction: float = 0.0
    degraded_seconds: int = 0
    dead_letters: List[DeadLetter] = field(default_factory=list)
    requeues: int = 0
    evictions: int = 0
    fault_events: List[str] = field(default_factory=list)
    telemetry_digest: str = ""
    session_accounting: Dict[str, int] = field(default_factory=dict)
    unaccounted_sessions: int = 0
    provisioner_stats: Dict[str, int] = field(default_factory=dict)


class FleetExperiment:
    """Poisson arrivals over a :class:`ClusterScheduler`.

    Parameters
    ----------
    cluster:
        The fleet (already built, strategies attached).
    specs:
        Game mix for the arrival process.
    horizon:
        Simulated seconds.
    rate_per_minute:
        Expected arrivals per minute.
    seed:
        Arrival/session randomness.
    detect_interval:
        Control/retry period.
    fault_plan:
        Optional fault schedule replayed into the run.
    provisioner:
        Optional :class:`~repro.cluster.provisioner.Provisioner`.  When
        given it is attached to the run's engine before faults are
        armed: the warm pool pre-boots at t=0, the maintenance loop
        promotes/refills on its own period, and its lifecycle digest is
        folded into :attr:`FleetResult.telemetry_digest`.
    obs:
        Optional :class:`~repro.obs.Observer` wired through the whole
        stack before the run starts: the cluster (dispatch counters,
        per-node scheduler spans, QoS, Algorithm-1 counters) and the
        fault injector (fault counters + windows).  Two runs with the
        same seed and plan produce byte-identical exports.
    arrivals:
        Optional pre-built arrival source (anything exposing a
        ``requests`` list of :class:`~repro.workloads.requests.GameRequest`).
        Default: open-loop :class:`PoissonArrivals` from the seed — a
        :class:`~repro.trace.replayer.ReplayedArrivals` or a corpus
        scenario's load generator drops in here.
    trace:
        Optional :class:`~repro.trace.TraceRecorder` (the nullable
        ``trace=`` handle, same pattern as ``obs=``).  The arrival
        stream and fault schedule are recorded up front, the gateway
        and nodes record the timeline as it happens, and the recorder
        is finalized with the run's fleet digest after aggregation.
    """

    def __init__(
        self,
        cluster: ClusterScheduler,
        specs: Sequence[GameSpec],
        *,
        horizon: int = 3600,
        rate_per_minute: float = 1.0,
        seed: Seed = 0,
        detect_interval: int = 5,
        fault_plan: Optional[FaultPlan] = None,
        provisioner: Optional["Provisioner"] = None,
        obs: Optional[Observer] = None,
        arrivals: Optional[object] = None,
        trace: Optional["TraceRecorder"] = None,
    ):
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if detect_interval < 1:
            raise ValueError(f"detect_interval must be >= 1, got {detect_interval}")
        self.cluster = cluster
        self.specs = list(specs)
        self.horizon = int(horizon)
        self.detect_interval = int(detect_interval)
        self.fault_plan = fault_plan
        self.provisioner = provisioner
        self.obs = obs
        self.trace = trace
        if obs is not None:
            cluster.attach_observer(obs)
        if trace is not None:
            cluster.attach_trace(trace)
        self._base_seed = seed if isinstance(seed, int) or seed is None else 0
        if arrivals is not None:
            if not hasattr(arrivals, "requests"):
                raise TypeError(
                    "arrivals must expose a 'requests' list, got "
                    f"{type(arrivals).__name__}"
                )
            self.arrivals = arrivals
        else:
            self.arrivals = default_arrivals(
                self.specs,
                rate_per_minute=rate_per_minute,
                seed=self._base_seed,
                horizon=float(horizon),
            )

    # ------------------------------------------------------------------
    def _session_seed(self, request: GameRequest, incarnation: int) -> int:
        return derive_seed(
            self._base_seed, "s", str(request.request_id), str(incarnation)
        )

    @shard_entry("region:fleet")
    def run(self) -> FleetResult:
        """Execute the run and aggregate fleet-wide results."""
        engine = SimulationEngine()
        started_waits: List[float] = []
        if self.trace is not None:
            # The inputs are recorded up front (arrivals + fault
            # schedule); the timeline accumulates as the run proceeds.
            for request in self.arrivals.requests:
                self.trace.record_arrival(request)
            if self.fault_plan is not None and len(self.fault_plan):
                self.trace.record_plan(self.fault_plan)
        if self.provisioner is not None:
            # Before faults arm: the injector resolves provisioner
            # fault kinds through cluster.provisioner.
            self.provisioner.attach(engine)
        injector: Optional[FaultInjector] = None
        if self.fault_plan is not None and len(self.fault_plan):
            injector = FaultInjector(
                self.fault_plan, self.cluster, engine, obs=self.obs
            )
            injector.arm()

        for request in self.arrivals.requests:
            t_sub = min(int(request.arrival), self.horizon - 1)

            # Named to stay out of the conventional run/pump/dispatch/
            # submit entry terminals: these closures execute *inside*
            # the stream FleetExperiment.run tops, they do not open one.
            def submit_arrival(engine, request=request):
                self.cluster.submit(request, time=engine.now)

            engine.at(float(t_sub), submit_arrival, priority=_PRIO_SUBMIT)

        def pump_queue(engine) -> None:
            for request in self.cluster.pump(engine.now, self._session_seed):
                started_waits.append(max(0.0, engine.now - request.arrival))

        for t in range(0, self.horizon, self.detect_interval):
            engine.at(float(t), pump_queue, priority=_PRIO_PUMP)
        for t in range(self.horizon):
            engine.at(float(t), lambda e, t=t: self.cluster.tick(t),
                      priority=_PRIO_TICK)
        for c in range(self.detect_interval, self.horizon + 1,
                       self.detect_interval):
            engine.at(float(c), lambda e: self.cluster.control(e.now),
                      priority=_PRIO_CONTROL)

        engine.run_until(float(self.horizon))
        return self._aggregate(started_waits, injector)

    # ------------------------------------------------------------------
    @shard_merge_point
    def _aggregate(
        self,
        started_waits: List[float],
        injector: Optional[FaultInjector],
    ) -> FleetResult:
        completed = self.cluster.completed_runs()
        durations = {spec.name: spec.expected_duration() for spec in self.specs}
        per_node_completed = {
            node.node_id: dict(node.completed) for node in self.cluster.nodes
        }
        per_node_mean_gpu = {}
        fob_num = 0.0
        fob_den = 0
        violation_num = 0
        degraded = 0
        digest = hashlib.sha256()
        for node in sorted(self.cluster.nodes, key=lambda n: n.node_id):
            total = node.telemetry.total_usage_matrix(self.horizon)
            per_node_mean_gpu[node.node_id] = float(total[:, 1].mean())
            for sid in node.qos.session_ids:
                report = node.qos.report(sid)
                fob_num += report.fraction_of_best * report.seconds
                fob_den += report.seconds
                violation_num += report.violation_seconds
            degraded += node.qos.total_degraded_seconds()
            digest.update(f"{node.node_id}:{node.telemetry.digest()}\n".encode())
        if self.cluster.gateway is not None:
            # Gateway verdicts (queued/shed/admitted/dead-lettered) are
            # replay-checked exactly like usage samples.
            digest.update(
                f"gateway:{self.cluster.gateway.telemetry.digest()}\n".encode()
            )
        if self.provisioner is not None:
            # Capacity history is part of the replay contract too.
            digest.update(
                f"provisioner:{self.provisioner.digest()}\n".encode()
            )
        fault_log = list(injector.applied) if injector is not None else []
        if self.trace is not None:
            # Seal the trace with the digest a replay must reproduce.
            self.trace.finalize(digest.hexdigest())
        return FleetResult(
            completed_runs=completed,
            throughput=throughput_eq2(
                completed, {g: durations[g] for g in completed}
            ),
            per_node_completed=per_node_completed,
            per_node_mean_gpu=per_node_mean_gpu,
            fraction_of_best=fob_num / fob_den if fob_den else float("nan"),
            waiting=self.cluster.queue_depth,
            deferrals=self.cluster.deferred,
            mean_wait_seconds=(
                float(np.mean(started_waits)) if started_waits else 0.0
            ),
            violation_fraction=(
                violation_num / fob_den if fob_den else 0.0
            ),
            degraded_seconds=degraded,
            dead_letters=list(self.cluster.dead_letters),
            requeues=self.cluster.requeues,
            evictions=self.cluster.evictions,
            fault_events=fault_log,
            telemetry_digest=digest.hexdigest(),
            session_accounting=self.cluster.session_accounting(),
            unaccounted_sessions=self.cluster.unaccounted_sessions(),
            provisioner_stats=(
                self.provisioner.stats()
                if self.provisioner is not None
                else {}
            ),
        )
