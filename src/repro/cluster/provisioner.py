"""Deterministic VM lifecycle: provisioning, warm pools, spot reclaim.

The paper's evaluation assumes a fixed fleet; ROADMAP item 1 makes
capacity itself dynamic.  :class:`Provisioner` owns the full node
lifecycle as simulation-engine events::

    REQUESTED → PROVISIONING → WARMING → UP → DRAINING/RECLAIM_NOTICE → DOWN

* **Seeded provision latency** — each request's boot time is drawn from
  a per-request stream (``derive_seed(seed, "prov", node_id, attempt)``),
  so the same seed provisions the same capacity at the same instants.
* **Warm pool** — ``warm_pool_size`` standby :class:`FleetNode`\\ s are
  pre-booted at attach time and kept ``warming`` (non-candidates for
  dispatch); when the UP count falls below ``target_up`` the maintenance
  loop promotes a standby instead of waiting out a cold boot.
* **Failures, retries, timeouts** — a provision attempt inside an
  injected failure window retries with capped exponential backoff up to
  ``max_retries``; a request that cannot become ready within
  ``timeout`` seconds of being requested is timed out.  Every terminal
  outcome is an explicit counter and lifecycle event — capacity is
  never silently lost any more than sessions are.
* **Spot reclamation** — :meth:`reclaim` serves a notice window during
  which the node leaves dispatch rotation but keeps its sessions
  (:meth:`ClusterScheduler.begin_reclaim`); at expiry the capacity is
  taken away and every surviving session is requeued through the
  bounded-retry path or dead-lettered with the explicit ``"reclaim"``
  reason (:meth:`ClusterScheduler.finish_reclaim`).

Every lifecycle event lands in :attr:`events` and is hashed by
:meth:`digest`, which :class:`~repro.cluster.experiment.FleetExperiment`
folds into the fleet digest — same seed + same fault plan ⇒
byte-identical capacity history.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.fleet import ClusterScheduler, FleetNode, NodeHealth
from repro.obs.naming import (
    PROVISION_BUCKETS,
    PROVISION_EVENTS,
    PROVISION_LATENCY,
    STREAM_CLUSTER,
    lifecycle_span,
)
from repro.obs.observer import Observer
from repro.sim.engine import SimulationEngine
from repro.util.rng import Seed, as_rng, derive_seed
from repro.util.validation import check_nonnegative

__all__ = [
    "LIFECYCLE_PRIORITY",
    "ProvisionerConfig",
    "LifecycleEvent",
    "Provisioner",
]

#: Engine priority of lifecycle events — after fault events (−100),
#: before same-second request submission (−30), control, dispatch and
#: tick, so capacity changes are visible to everything else at that
#: second.
LIFECYCLE_PRIORITY = -50


@dataclass(frozen=True)
class ProvisionerConfig:
    """Provisioner tuning.

    Parameters
    ----------
    warm_pool_size:
        Ready standbys the maintenance loop keeps pre-booted beyond the
        UP target (0 = cold boots only).
    target_up:
        UP nodes the provisioner maintains; ``None`` = the cluster's UP
        count when the provisioner attaches.
    latency_base / latency_jitter:
        Provision latency is ``base + Exponential(jitter)`` seconds,
        drawn from the request's own seeded stream (``jitter=0`` makes
        boots take exactly ``base`` seconds).
    warming_seconds:
        Time a freshly provisioned node spends booting game images
        before it is a promotable standby.
    max_retries:
        Provision attempts beyond the first that a request survives.
    retry_base / retry_factor / retry_cap:
        Exponential backoff between failed attempts:
        ``min(cap, base · factor^(k−1))``.
    timeout:
        Seconds after which an unfinished request is abandoned
        (``timed_out``), whatever its retry budget says.
    check_interval:
        Maintenance-loop period (promotion + refill decisions).
    max_pending:
        Bound on in-flight provision requests; excess demand is
        explicitly ``rejected`` (counted), never queued silently.
    node_prefix:
        Ids of provisioned nodes: ``<prefix><index>``.
    """

    warm_pool_size: int = 1
    target_up: Optional[int] = None
    latency_base: float = 15.0
    latency_jitter: float = 10.0
    warming_seconds: float = 5.0
    max_retries: int = 3
    retry_base: float = 5.0
    retry_factor: float = 2.0
    retry_cap: float = 60.0
    timeout: float = 300.0
    check_interval: float = 5.0
    max_pending: int = 32
    node_prefix: str = "spot-"

    def __post_init__(self) -> None:
        if self.warm_pool_size < 0:
            raise ValueError(
                f"warm_pool_size must be >= 0, got {self.warm_pool_size}"
            )
        if self.target_up is not None and self.target_up < 0:
            raise ValueError(f"target_up must be >= 0, got {self.target_up}")
        check_nonnegative("latency_base", self.latency_base)
        check_nonnegative("latency_jitter", self.latency_jitter)
        check_nonnegative("warming_seconds", self.warming_seconds)
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_base < 0 or self.retry_factor < 1 or self.retry_cap < 0:
            raise ValueError(
                "retry backoff needs base >= 0, factor >= 1, cap >= 0; got "
                f"{self.retry_base}, {self.retry_factor}, {self.retry_cap}"
            )
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.check_interval <= 0:
            raise ValueError(
                f"check_interval must be > 0, got {self.check_interval}"
            )
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")


@dataclass(frozen=True)
class LifecycleEvent:
    """One capacity-plane transition (hashed into the fleet digest)."""

    time: float
    node: str
    state: str  # requested/provisioning/retry/stalled/failed/timed-out/
    #            warming/warm/up/withdrawn/reclaim-notice/reclaimed/rejected
    detail: str = ""


@dataclass
class _ProvisionRequest:
    """In-flight boot: retry state plus the hard deadline."""

    node_id: str
    requested_at: float
    deadline: float
    attempts: int = 0


class Provisioner:
    """Owns the VM lifecycle for one cluster, on simulation time.

    Parameters
    ----------
    cluster:
        The fleet to grow/shrink.  The provisioner registers itself as
        ``cluster.provisioner`` and takes over ``capacity_target``.
    node_factory:
        ``node_factory(node_id) -> FleetNode`` — builds one backend
        node (strategy, profiles, platform, seed).  Called for warm-pool
        pre-boots and every successful provision.
    config:
        Latency/pool/retry tuning (:class:`ProvisionerConfig`).
    seed:
        Root of every provision-latency stream.
    obs:
        Optional shared :class:`~repro.obs.Observer` — lifecycle
        counters (``cluster_provision_events_total{event}``), the
        ``cluster_provision_latency_seconds`` histogram and
        ``node.<id>.lifecycle`` spans.
    """

    def __init__(
        self,
        cluster: ClusterScheduler,
        node_factory: Callable[[str], FleetNode],
        *,
        config: Optional[ProvisionerConfig] = None,
        seed: Seed = 0,
        obs: Optional[Observer] = None,
    ):
        self.cluster = cluster
        self.node_factory = node_factory
        self.config = config if config is not None else ProvisionerConfig()
        self._seed = seed if isinstance(seed, int) else 0
        self.obs = obs
        self.engine: Optional[SimulationEngine] = None
        self.target_up = (
            self.config.target_up
            if self.config.target_up is not None
            else cluster.up_count
        )
        cluster.provisioner = self
        cluster.capacity_target = self.target_up
        self.events: List[LifecycleEvent] = []
        self._next_index = 0
        self._pending: List[_ProvisionRequest] = []
        self._ready: List[str] = []  # promotable standby node ids, FIFO
        self._fail_windows: List[Tuple[float, float]] = []
        self._stall_windows: List[Tuple[float, float, float]] = []
        self._exhaust_until = -math.inf
        self.counts: Dict[str, int] = {
            "requested": 0,
            "provisioned": 0,
            "retried": 0,
            "stalled": 0,
            "failed": 0,
            "timed_out": 0,
            "rejected": 0,
            "warm_promoted": 0,
            "withdrawn": 0,
            "reclaimed": 0,
        }
        self._c_events = None
        self._h_latency = None
        if obs is not None:
            self._c_events = obs.counter(
                PROVISION_EVENTS,
                "Provisioner lifecycle events by kind.",
                ("event",),
            )
            self._h_latency = obs.histogram(
                PROVISION_LATENCY,
                "Request-to-ready provisioning latency.",
                buckets=PROVISION_BUCKETS,
            )

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _event(self, time: float, node: str, state: str, detail: str = "") -> None:
        self.events.append(LifecycleEvent(float(time), node, state, detail))

    def _count(self, event: str, time: float) -> None:
        self.counts[event] = self.counts.get(event, 0) + 1
        if self._c_events is not None:
            self.obs.tick(time)
            self._c_events.labels(event=event).inc(time=time)

    def _span(self, node_id: str, begin: float, end: float, state: str) -> None:
        if self.obs is not None:
            self.obs.record_span(
                lifecycle_span(node_id), begin, end,
                stream=STREAM_CLUSTER, state=state,
            )

    # ------------------------------------------------------------------
    # Engine wiring
    # ------------------------------------------------------------------
    def attach(self, engine: SimulationEngine) -> None:
        """Bind to the run's engine; call once, before the run starts.

        Pre-boots the warm pool at the engine's current time and starts
        the maintenance loop (promotion + refill every
        ``check_interval`` seconds, at :data:`LIFECYCLE_PRIORITY`).
        """
        if self.engine is not None:
            raise RuntimeError("provisioner is already attached")
        self.engine = engine
        now = engine.now
        for _ in range(self.config.warm_pool_size):
            self._boot_standby(now)
        engine.every(
            self.config.check_interval,
            self._maintain,
            priority=LIFECYCLE_PRIORITY,
            start_delay=0.0,
        )

    def _boot_standby(self, time: float) -> str:
        """Materialise one pre-booted standby (skips the boot latency)."""
        node_id = self._new_node_id()
        node = self.node_factory(node_id)
        node.warm(time)
        self.cluster.add_node(node)
        self._ready.append(node_id)
        self._event(time, node_id, "warm", "pre-booted standby")
        self._count("provisioned", time)
        return node_id

    def _new_node_id(self) -> str:
        node_id = f"{self.config.node_prefix}{self._next_index}"
        self._next_index += 1
        return node_id

    # ------------------------------------------------------------------
    # Provisioning
    # ------------------------------------------------------------------
    def _latency(self, node_id: str, attempt: int) -> float:
        rng = as_rng(derive_seed(self._seed, "prov", node_id, str(attempt)))
        jitter = (
            float(rng.exponential(self.config.latency_jitter))
            if self.config.latency_jitter > 0
            else 0.0
        )
        return self.config.latency_base + jitter

    def request_node(self, time: float) -> Optional[str]:
        """Ask the platform for one new node; returns its id.

        Returns ``None`` (and counts a ``rejected`` event) when
        ``max_pending`` requests are already in flight — explicit
        backpressure, not a silent queue.
        """
        if self.engine is None:
            raise RuntimeError("provisioner is not attached to an engine")
        if len(self._pending) >= self.config.max_pending:
            self._event(time, "-", "rejected", "max_pending in flight")
            self._count("rejected", time)
            return None
        node_id = self._new_node_id()
        req = _ProvisionRequest(
            node_id,
            requested_at=float(time),
            deadline=float(time) + self.config.timeout,
        )
        self._pending.append(req)
        latency = self._latency(node_id, 0)
        self._event(time, node_id, "requested", f"eta {latency:.1f}s")
        self._count("requested", time)
        self._span(node_id, time, time + latency, "provisioning")
        self.engine.at(
            time + latency,
            lambda e, r=req: self._complete(e, r),
            priority=LIFECYCLE_PRIORITY,
        )
        return node_id

    def _in_fail_window(self, time: float) -> bool:
        return any(start <= time < end for start, end in self._fail_windows)

    def _stall_at(self, time: float) -> float:
        for start, end, stall in self._stall_windows:
            if start <= time < end:
                return stall
        return 0.0

    def _complete(self, engine: SimulationEngine, req: _ProvisionRequest) -> None:
        now = engine.now
        if now > req.deadline + 1e-9:
            self._finish_request(req)
            self._event(now, req.node_id, "timed-out",
                        f"after {now - req.requested_at:.0f}s")
            self._count("timed_out", now)
            return
        stall = self._stall_at(now)
        if stall > 0:
            self._event(now, req.node_id, "stalled", f"+{stall:.0f}s")
            self._count("stalled", now)
            self._span(req.node_id, now, now + stall, "provisioning")
            engine.at(
                now + stall,
                lambda e, r=req: self._complete(e, r),
                priority=LIFECYCLE_PRIORITY,
            )
            return
        if self._in_fail_window(now):
            req.attempts += 1
            if req.attempts > self.config.max_retries:
                self._finish_request(req)
                self._event(now, req.node_id, "failed",
                            f"{req.attempts} attempts")
                self._count("failed", now)
                return
            backoff = min(
                self.config.retry_cap,
                self.config.retry_base
                * self.config.retry_factor ** (req.attempts - 1),
            )
            latency = self._latency(req.node_id, req.attempts)
            self._event(now, req.node_id, "retry",
                        f"attempt {req.attempts}, backoff {backoff:.0f}s")
            self._count("retried", now)
            self._span(
                req.node_id, now + backoff, now + backoff + latency,
                "provisioning",
            )
            engine.at(
                now + backoff + latency,
                lambda e, r=req: self._complete(e, r),
                priority=LIFECYCLE_PRIORITY,
            )
            return
        # Success: the VM exists; it warms before it is promotable.
        node = self.node_factory(req.node_id)
        node.warm(now)
        self.cluster.add_node(node)
        self._event(now, req.node_id, "warming",
                    f"ready in {self.config.warming_seconds:.0f}s")
        self._span(
            req.node_id, now, now + self.config.warming_seconds, "warming"
        )
        engine.at(
            now + self.config.warming_seconds,
            lambda e, r=req: self._warmed(e, r),
            priority=LIFECYCLE_PRIORITY,
        )

    def _warmed(self, engine: SimulationEngine, req: _ProvisionRequest) -> None:
        now = engine.now
        self._finish_request(req)
        self._ready.append(req.node_id)
        self._event(now, req.node_id, "warm",
                    f"boot took {now - req.requested_at:.1f}s")
        self._count("provisioned", now)
        if self._h_latency is not None:
            self.obs.tick(now)
            self._h_latency.observe(now - req.requested_at, time=now)

    def _finish_request(self, req: _ProvisionRequest) -> None:
        self._pending = [r for r in self._pending if r is not req]

    # ------------------------------------------------------------------
    # Maintenance: promotion + refill
    # ------------------------------------------------------------------
    def _maintain(self, engine: SimulationEngine) -> None:
        now = engine.now
        # Promote ready standbys while the fleet is under target.
        while self.cluster.up_count < self.target_up and self._ready:
            node_id = self._ready.pop(0)
            self.cluster.node(node_id).promote(now)
            self._event(now, node_id, "up", "promoted from warm pool")
            self._count("warm_promoted", now)
        # Refill: keep shortfall + warm-pool buffer covered by
        # ready-or-in-flight capacity (unless the pool is exhausted).
        if now < self._exhaust_until:
            return
        shortfall = max(0, self.target_up - self.cluster.up_count)
        want = shortfall + self.config.warm_pool_size
        have = len(self._ready) + len(self._pending)
        for _ in range(max(0, want - have)):
            if self.request_node(now) is None:
                break

    # ------------------------------------------------------------------
    # Fault surface (driven by the FaultInjector)
    # ------------------------------------------------------------------
    def inject_provision_fail(self, start: float, end: float) -> None:
        """Provision completions inside ``[start, end)`` fail (retry)."""
        self._fail_windows.append((float(start), float(end)))

    def inject_provision_stall(
        self, start: float, end: float, stall: float
    ) -> None:
        """Provision completions inside ``[start, end)`` stall ``stall`` s."""
        self._stall_windows.append((float(start), float(end), float(stall)))

    def exhaust_warm_pool(self, time: float, *, duration: float) -> int:
        """The platform takes every ready standby away for ``duration`` s.

        Models a capacity crunch: standbys are withdrawn (``down``, an
        explicit lifecycle event each) and refills are suppressed until
        ``time + duration``.  Returns the number withdrawn.
        """
        withdrawn = list(self._ready)
        self._ready.clear()
        for node_id in withdrawn:
            node = self.cluster.node(node_id)
            node.transition(
                NodeHealth.DOWN, time, "warm-pool-exhaust", node_id
            )
            self._event(time, node_id, "withdrawn", "warm pool exhausted")
            self._count("withdrawn", time)
        self._exhaust_until = max(self._exhaust_until, float(time) + duration)
        return len(withdrawn)

    def reclaim(
        self,
        node_id: str,
        time: float,
        *,
        notice: float,
        requeue: bool = True,
        fault_index: Optional[int] = None,
    ) -> bool:
        """Spot-reclaim one node: notice window, then graceful drain.

        Wraps :meth:`ClusterScheduler.begin_reclaim` /
        :meth:`~ClusterScheduler.finish_reclaim` with lifecycle events;
        the maintenance loop replaces the lost capacity (promoting a
        warm standby when one is ready).
        """
        if self.engine is None:
            raise RuntimeError("provisioner is not attached to an engine")
        if not self.cluster.begin_reclaim(
            node_id, time, notice=notice, fault_index=fault_index
        ):
            return False
        self._ready = [n for n in self._ready if n != node_id]
        self._event(time, node_id, "reclaim-notice", f"notice {notice:.0f}s")
        self._count("reclaimed", time)

        def finish(engine: SimulationEngine) -> None:
            killed = self.cluster.finish_reclaim(
                node_id, engine.now, requeue=requeue, fault_index=fault_index
            )
            self._event(
                engine.now, node_id, "reclaimed",
                f"{len(killed)} sessions displaced",
            )

        self.engine.at(time + notice, finish, priority=LIFECYCLE_PRIORITY)
        return True

    # ------------------------------------------------------------------
    def pending_states(self) -> Dict[str, str]:
        """Lifecycle state of every in-flight provision request.

        These node ids precede their :class:`FleetNode` objects (the
        request phase), so they never appear in the cluster's node list;
        :meth:`ClusterScheduler.node` merges them into its KeyError
        listing so a miss on a still-booting node is diagnosable.
        """
        return {req.node_id: "provisioning" for req in self._pending}

    @property
    def pending_count(self) -> int:
        """Provision requests currently in flight."""
        return len(self._pending)

    @property
    def ready_count(self) -> int:
        """Standbys warmed and promotable right now."""
        return len(self._ready)

    def stats(self) -> Dict[str, int]:
        """Lifecycle counters plus live pool state (benchmark artifact)."""
        out = dict(sorted(self.counts.items()))
        out["pending"] = self.pending_count
        out["ready"] = self.ready_count
        out["events"] = len(self.events)
        return out

    def digest(self) -> str:
        """SHA-256 over every lifecycle event (fleet-digest component)."""
        h = hashlib.sha256()
        for ev in self.events:
            h.update(
                f"{ev.time:.6f}|{ev.node}|{ev.state}|{ev.detail}\n".encode()
            )
        return h.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Provisioner(up={self.cluster.up_count}/{self.target_up}, "
            f"ready={self.ready_count}, pending={self.pending_count})"
        )
