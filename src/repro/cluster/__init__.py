"""The cluster scheduler: one dispatcher, many backend servers.

The paper's Fig-1 platform is "one cloud game scheduler and multiple
cloud game backend servers"; §IV-D argues CoCG scales to such fleets
because a game's stage structure is platform-invariant — one profiling
pass serves every (heterogeneous) server after a per-platform demand
rescale.

* :class:`~repro.cluster.fleet.FleetNode` — one backend server with its
  own scheduler, telemetry and QoS tracking, optionally on a non-
  reference platform (profiles are rescaled via §IV-D).
* :class:`~repro.cluster.fleet.ClusterScheduler` — the dispatcher:
  routes each request to a node by policy (first-fit / best-fit /
  round-robin); once placed, a game never migrates (cloud games cannot
  be migrated or stopped, §I).
* :class:`~repro.cluster.provisioner.Provisioner` — the capacity plane:
  owns the node lifecycle (``REQUESTED → PROVISIONING → WARMING → UP →
  DRAINING/RECLAIM_NOTICE → DOWN``) as deterministic engine events —
  seeded provision latency, warm pools, retry/timeout on failures, and
  spot reclamation with graceful session drain.
* :class:`~repro.cluster.experiment.FleetExperiment` — the fleet-scale
  driver over Poisson arrivals, optionally replaying a
  :class:`~repro.faults.plan.FaultPlan` and running a provisioner.

Resilience surface: nodes carry a :class:`~repro.cluster.fleet.NodeHealth`
state consulted by every dispatch policy, rejected requests retry with
exponential backoff in a bounded queue, exhausted retries land in
:class:`~repro.cluster.fleet.DeadLetter` records, and the scheduler's
session-accountability ledger
(:meth:`~repro.cluster.fleet.ClusterScheduler.session_accounting`)
balances to zero under any fault plan.
"""

from repro.cluster.fleet import (
    ClusterScheduler,
    DeadLetter,
    FleetNode,
    NodeHealth,
    PendingRequest,
)
from repro.cluster.provisioner import (
    LifecycleEvent,
    Provisioner,
    ProvisionerConfig,
)
from repro.cluster.experiment import FleetExperiment, FleetResult

__all__ = [
    "FleetNode",
    "ClusterScheduler",
    "NodeHealth",
    "DeadLetter",
    "PendingRequest",
    "Provisioner",
    "ProvisionerConfig",
    "LifecycleEvent",
    "FleetExperiment",
    "FleetResult",
]
